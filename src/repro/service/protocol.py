"""The service wire contract: task lifecycle, idempotency, pagination.

The daemon's API surface is deliberately small and fully described by
this module so the HTTP layer stays a thin translation:

* :class:`TaskRecord` — one admitted task and its full lifecycle
  (``queued → running → done``).  The public JSON form enforces the
  paper's semi-clairvoyant information model: the *actual* duration of a
  task appears in responses only after the task completed, exactly as
  :class:`~repro.core.strategy.SchedulerView` reveals actuals only at
  completion.
* **Idempotency keys** — an admission request may carry a client-chosen
  key; re-submitting the same key returns the original decision instead
  of admitting a second task.  This is the standard at-most-once
  admission pattern for retrying clients (see ``docs/service.md``).
* **Pagination tokens** — task listings return at most ``limit`` records
  plus an opaque ``next_page_token``; tokens encode only a cursor, so a
  listing is stable under concurrent admissions (new tasks append after
  the cursor).
"""

from __future__ import annotations

import base64
import binascii
import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "AdmissionError",
    "TaskState",
    "TaskRecord",
    "encode_page_token",
    "decode_page_token",
    "MAX_PAGE_LIMIT",
    "DEFAULT_PAGE_LIMIT",
]

#: Listing page-size cap; larger ``limit`` values are clamped, not errors.
MAX_PAGE_LIMIT = 500
#: Page size when the client does not pass ``limit``.
DEFAULT_PAGE_LIMIT = 50


class AdmissionError(ValueError):
    """A task submission the scheduler must reject (HTTP 400).

    Raised for malformed estimates (non-positive, non-finite), unknown
    fields the strict decoder refuses, or admissions after shutdown
    began.  Carries a machine-readable ``code`` so clients can branch
    without parsing prose.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class TaskState(str, enum.Enum):
    """Lifecycle of an admitted task.

    ``QUEUED`` — admitted and placed (its replica set :math:`M_j` is
    fixed) but not yet dispatched; ``RUNNING`` — dispatched to one
    machine of its replica set; ``DONE`` — completed, actual duration
    revealed.  There is no drop state: admission is the only gate, and
    an admitted task always completes (the CI smoke job asserts zero
    drops under a 1000-tenant burst).
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"


@dataclass
class TaskRecord:
    """One admitted task, mutated by the scheduler as it progresses.

    Attributes
    ----------
    tid:
        Dense task id in admission order — the service-wide arrival
        order that Phase-2 dispatch scans (List-Scheduling semantics).
    tenant:
        Client-supplied tenant label (free-form; loadgen uses
        ``tenant-<i>``).
    key:
        Idempotency key, or ``None`` when the client did not send one.
    estimate:
        The estimated processing time :math:`\\tilde p_j` the placement
        decision was based on.
    size:
        Optional memory footprint (carried through for the memory-aware
        model; not interpreted by the service's core placement families).
    group:
        Index of the machine group the task was placed on.
    machines:
        The replica set :math:`M_j` — Phase 2 may only dispatch the task
        to one of these.
    state, machine, admitted_at, started_at, finished_at, actual:
        Lifecycle fields; ``machine`` and timestamps fill in as the
        virtual clock advances, ``actual`` only at completion.
    restarts:
        Times the task was re-placed onto a surviving replica after the
        machine running it failed (degraded-mode bookkeeping; 0 on a
        healthy fleet).
    """

    tid: int
    tenant: str
    key: str | None
    estimate: float
    size: float
    group: int
    machines: tuple[int, ...]
    state: TaskState = TaskState.QUEUED
    machine: int | None = None
    admitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    actual: float | None = field(default=None, repr=False)
    restarts: int = 0

    def as_dict(self) -> dict[str, Any]:
        """The public JSON form.

        Semi-clairvoyant by construction: ``actual`` (and
        ``finished_at``) are present only once the task is ``done`` —
        a client polling a running task cannot observe its duration
        early, mirroring :class:`~repro.core.strategy.SchedulerView`.
        """
        payload: dict[str, Any] = {
            "task_id": self.tid,
            "tenant": self.tenant,
            "state": self.state.value,
            "estimate": self.estimate,
            "size": self.size,
            "group": self.group,
            "machines": list(self.machines),
            "replication": len(self.machines),
            "admitted_at": self.admitted_at,
            "restarts": self.restarts,
        }
        if self.key is not None:
            payload["idempotency_key"] = self.key
        if self.state is not TaskState.QUEUED:
            payload["machine"] = self.machine
            payload["started_at"] = self.started_at
        if self.state is TaskState.DONE:
            payload["finished_at"] = self.finished_at
            payload["actual"] = self.actual
        return payload


def encode_page_token(cursor: int) -> str:
    """Opaque pagination token for ``cursor`` (the next task id to serve).

    Base64 of a tiny prefixed payload — opaque enough that clients treat
    it as a handle (the API-design rule: never let callers fabricate or
    interpret cursors), trivial enough to stay dependency-free.
    """
    raw = f"cursor:{int(cursor)}".encode("ascii")
    return base64.urlsafe_b64encode(raw).decode("ascii")


def decode_page_token(token: str) -> int:
    """Inverse of :func:`encode_page_token`.

    Raises :class:`AdmissionError` (code ``bad_page_token``) on any
    malformed token so the HTTP layer maps it to a 400 uniformly.
    """
    try:
        raw = base64.urlsafe_b64decode(token.encode("ascii")).decode("ascii")
    except (binascii.Error, UnicodeDecodeError, UnicodeEncodeError, ValueError):
        raise AdmissionError("bad_page_token", f"malformed page token {token!r}") from None
    prefix, _, value = raw.partition(":")
    if prefix != "cursor" or not value.isdigit():
        raise AdmissionError("bad_page_token", f"malformed page token {token!r}")
    return int(value)
