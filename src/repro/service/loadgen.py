"""Synthetic-tenant load generation against the placement daemon.

``repro loadgen`` drives many concurrent tenants — each one a keep-alive
connection submitting a seeded stream of task admissions, with periodic
idempotency-key retries mixed in to exercise the dedup path the way real
retrying clients would.  The workload is generated per tenant from
``default_rng([seed, tenant_index])``, so it is identical across runs
and across concurrency levels; with ``concurrency=1`` the *admission
order* is deterministic too, and the report's ``decision_digest``
(a hash over every placement decision) is bit-stable — the property
``tests/test_loadgen.py`` pins.

Two entry points:

* :func:`run_loadgen` — drive an already-running daemon (what the CLI
  and the CI smoke job use).
* :func:`run_burst` — spin an in-process daemon on a private transport,
  run the workload, shut it down, return both reports (what tests and
  the ``service_loadgen`` perfbench scenario use).

Wang–Joshi–Wornell (arXiv 1404.1328) motivates the metrics reported
here: per-task *latency* percentiles and throughput alongside the
makespan-style totals the rest of the repo measures.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon
from repro.service.scheduler import ServiceScheduler

__all__ = ["TenantSpec", "LoadgenReport", "make_workload", "run_loadgen", "run_burst"]

#: Every ``RETRY_EVERY``-th task of each tenant is submitted twice with
#: the same idempotency key (deliberate duplicate, must dedup).
RETRY_EVERY = 7

#: Transport-level retry budget per submission: a connection reset is
#: replayed up to this many times (the idempotency key makes the replay
#: safe — at worst the daemon dedups it).
RETRY_ATTEMPTS = 3
#: Capped exponential backoff between transport retries, in seconds.
RETRY_BACKOFF_S = 0.05
RETRY_BACKOFF_CAP_S = 0.5


@dataclass(frozen=True)
class TenantSpec:
    """One synthetic tenant's scripted submissions."""

    tenant: str
    estimates: tuple[float, ...]
    keys: tuple[str, ...]


@dataclass
class LoadgenReport:
    """What one loadgen run observed; ``as_dict`` is the JSON form."""

    tenants: int
    tasks: int
    requests: int = 0
    created: int = 0
    deduplicated: int = 0
    errors: int = 0
    retries: int = 0
    wall_s: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0
    throughput_rps: float = 0.0
    decision_digest: str = ""
    final_status: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable view (stable key order for diffing)."""
        return {
            "tenants": self.tenants,
            "tasks": self.tasks,
            "requests": self.requests,
            "created": self.created,
            "deduplicated": self.deduplicated,
            "errors": self.errors,
            "retries": self.retries,
            "wall_s": self.wall_s,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "throughput_rps": self.throughput_rps,
            "decision_digest": self.decision_digest,
            "final_status": self.final_status,
        }


def make_workload(
    tenants: int,
    tasks_per_tenant: int,
    *,
    seed: int = 0,
    est_low: float = 0.5,
    est_high: float = 4.0,
) -> list[TenantSpec]:
    """Seeded synthetic workload: log-uniform estimates per tenant.

    Tenant ``i`` draws from ``default_rng([seed, i])``, so the workload
    is independent of how many tenants run and of submission
    interleaving — the determinism contract the loadgen tests pin.
    """
    if tenants < 1 or tasks_per_tenant < 1:
        raise ValueError("tenants and tasks_per_tenant must both be >= 1")
    if not (0 < est_low <= est_high):
        raise ValueError(f"need 0 < est_low <= est_high, got [{est_low}, {est_high}]")
    specs = []
    ratio = est_high / est_low
    for i in range(tenants):
        rng = np.random.default_rng([seed, i])
        estimates = tuple(
            float(est_low * ratio**u) for u in rng.random(tasks_per_tenant)
        )
        keys = tuple(f"t{i}-{j}" for j in range(tasks_per_tenant))
        specs.append(TenantSpec(tenant=f"tenant-{i}", estimates=estimates, keys=keys))
    return specs


async def _drive_tenant(
    spec: TenantSpec,
    report: LoadgenReport,
    latencies: list[float],
    decisions: list[tuple[str, str, int, float]],
    semaphore: asyncio.Semaphore,
    **client_kw: Any,
) -> None:
    """One tenant's scripted session on its own keep-alive connection.

    Transient transport failures (connection reset, broken pipe) are
    retried with capped exponential backoff: the submission carries an
    idempotency key, so a replay is at-most-once by construction — the
    daemon either admits it fresh or dedups it.  Replays count in
    ``report.retries``, *not* ``report.errors``; only protocol errors
    and an exhausted retry budget are errors.
    """
    async with semaphore:
        async with ServiceClient(**client_kw) as client:
            for j, (estimate, key) in enumerate(zip(spec.estimates, spec.keys)):
                attempts = 2 if j % RETRY_EVERY == RETRY_EVERY - 1 else 1
                for _ in range(attempts):
                    start = time.perf_counter()
                    body = None
                    for backoff in range(RETRY_ATTEMPTS + 1):
                        try:
                            body = await client.submit(spec.tenant, estimate, key=key)
                            break
                        except ServiceError:
                            report.errors += 1
                            break
                        except (ConnectionError, OSError):
                            # Stale half-open connection: drop it so the
                            # next attempt reconnects from scratch.
                            await client.close()
                            if backoff >= RETRY_ATTEMPTS:
                                report.errors += 1
                                break
                            report.retries += 1
                            await asyncio.sleep(
                                min(
                                    RETRY_BACKOFF_S * 2**backoff,
                                    RETRY_BACKOFF_CAP_S,
                                )
                            )
                    if body is None:
                        continue
                    latencies.append(time.perf_counter() - start)
                    report.requests += 1
                    if body.get("created"):
                        report.created += 1
                        decisions.append(
                            (spec.tenant, key, body["group"], estimate)
                        )
                    else:
                        report.deduplicated += 1


async def run_loadgen(
    workload: list[TenantSpec],
    *,
    host: str = "127.0.0.1",
    port: int | None = None,
    socket_path: str | None = None,
    concurrency: int = 64,
    drain: bool = False,
    shutdown: bool = False,
) -> LoadgenReport:
    """Drive ``workload`` against a running daemon; returns the report.

    ``concurrency`` caps simultaneous tenant connections (1000 tenants
    on a CI runner must not hold 1000 file descriptors at once — a
    semaphore admits ``concurrency`` sessions at a time).  With
    ``drain``/``shutdown`` the run ends by draining the daemon's queue
    (and stopping it), and ``final_status`` carries the daemon's last
    stats — the zero-drop check is ``admitted == done`` there.
    """
    client_kw: dict[str, Any] = (
        {"socket_path": socket_path} if socket_path else {"host": host, "port": port}
    )
    report = LoadgenReport(
        tenants=len(workload), tasks=sum(len(s.estimates) for s in workload)
    )
    latencies: list[float] = []
    decisions: list[tuple[str, str, int, float]] = []
    semaphore = asyncio.Semaphore(max(1, concurrency))
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _drive_tenant(spec, report, latencies, decisions, semaphore, **client_kw)
            for spec in workload
        )
    )
    report.wall_s = time.perf_counter() - started
    async with ServiceClient(**client_kw) as control:
        if shutdown:
            report.final_status = await control.shutdown()
        elif drain:
            report.final_status = await control.drain()
        else:
            report.final_status = await control.status()
    if latencies:
        arr = np.asarray(latencies)
        report.latency_p50_ms = float(np.percentile(arr, 50) * 1e3)
        report.latency_p99_ms = float(np.percentile(arr, 99) * 1e3)
    if report.wall_s > 0:
        report.throughput_rps = report.requests / report.wall_s
    digest = hashlib.sha256()
    for tenant, key, group, estimate in sorted(decisions):
        digest.update(f"{tenant}|{key}|{group}|{estimate!r};".encode("ascii"))
    report.decision_digest = digest.hexdigest()
    return report


def run_burst(
    tenants: int = 50,
    tasks_per_tenant: int = 4,
    *,
    seed: int = 0,
    strategy: str = "ls_group[k=2]",
    m: int = 8,
    alpha: float = 1.5,
    model: str = "log_uniform",
    concurrency: int = 32,
    metrics_out: str | None = None,
) -> LoadgenReport:
    """In-process end-to-end burst: daemon up, workload through, drain, down.

    The loopback-TCP fixture behind the loadgen tests and the
    ``service_loadgen`` perfbench scenario.  Synchronous on purpose —
    it owns its event loop via :func:`asyncio.run`.
    """
    workload = make_workload(tenants, tasks_per_tenant, seed=seed)

    async def _burst() -> LoadgenReport:
        scheduler = ServiceScheduler(
            strategy, m=m, alpha=alpha, model=model, seed=seed
        )
        daemon = ServiceDaemon(scheduler, port=0, metrics_out=metrics_out)
        server_task = asyncio.create_task(daemon.serve())
        await daemon.started.wait()
        try:
            return await run_loadgen(
                workload,
                port=daemon.port,
                concurrency=concurrency,
                shutdown=True,
            )
        finally:
            await server_task

    return asyncio.run(_burst())
