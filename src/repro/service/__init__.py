"""Placement-as-a-service: the online scheduling daemon.

Everything else in the repository replays finished instances offline; the
paper's Phase 2 is inherently *online* — replica choices must be
dispatched as machine-completion events stream in.  This package is the
long-running service that actually runs it:

* :mod:`repro.service.protocol` — the wire contract: task records and
  their lifecycle (``queued → running → done``), idempotency-key
  semantics, opaque pagination tokens, and the JSON request/response
  shapes (see ``docs/service.md`` for the endpoint reference).
* :mod:`repro.service.placement` — Phase 1, made incremental.  A
  registry spec (``ls_group[k=2]``, ``lpt_no_choice``,
  ``lpt_no_restriction``...) selects the replication structure through
  the same capability system grids use; admission assigns each arriving
  task to the least-estimated-loaded machine group, which is exactly the
  paper's List-Scheduling Phase 1 applied in arrival order.
* :mod:`repro.service.scheduler` — the deterministic core.  Admission
  (idempotent), queueing, and Phase-2 dispatch driven by a virtual-time
  :class:`~repro.simulation.events.EventQueue` with the event kernel's
  same-instant semantics: a completion at time *t* is revealed before
  any dispatch decision at *t*.  On a batch of admissions the core's
  trace is bit-identical to :class:`~repro.simulation.kernel.EventKernel`
  (tests assert it).
* :mod:`repro.service.http` / :mod:`repro.service.daemon` — the asyncio
  shell: a dependency-free HTTP/1.1 server over TCP or a unix socket
  exposing admission/queue/status endpoints, live OpenMetrics at
  ``/metrics``, SLO evaluation at ``/v1/slo``, and graceful
  queue-draining shutdown.  All telemetry flows through the existing
  :mod:`repro.obs` tracer.
* :mod:`repro.service.client` / :mod:`repro.service.loadgen` — the
  asyncio client and the synthetic-tenant load generator
  (``repro loadgen``): thousands of concurrent tenants, seeded and
  reproducible, reporting latency percentiles and throughput (also a
  perfbench scenario, ``service_loadgen``).

Quickstart::

    repro serve --m 8 --strategy "ls_group[k=2]" --socket /tmp/repro.sock
    repro loadgen --socket /tmp/repro.sock --tenants 1000 --drain --shutdown
"""

from repro.service.loadgen import LoadgenReport, TenantSpec, make_workload, run_loadgen
from repro.service.placement import OnlinePlacer
from repro.service.protocol import (
    AdmissionError,
    TaskRecord,
    TaskState,
    decode_page_token,
    encode_page_token,
)
from repro.service.scheduler import ServiceScheduler

__all__ = [
    "AdmissionError",
    "TaskRecord",
    "TaskState",
    "OnlinePlacer",
    "ServiceScheduler",
    "LoadgenReport",
    "TenantSpec",
    "make_workload",
    "run_loadgen",
    "encode_page_token",
    "decode_page_token",
]
