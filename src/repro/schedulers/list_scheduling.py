"""Graham's List Scheduling (LS) — offline assignment form.

LS takes the tasks one at a time, in a given order, and assigns each to the
machine with the smallest current load.  Graham (1966) proved it is a
``(2 - 1/m)``-approximation for makespan on identical machines, and the
paper leans on two of its structural properties:

* **greedy bound** — when a task is placed, every machine's load is at
  least the chosen machine's load, so
  ``C_max <= sum(p)/m + (m-1)/m * p_last`` (used in Th. 3 and Th. 4);
* **balance bound** — final loads of any two machines differ by at most
  the largest task (used for the Phase-1 group balance in Th. 4).

This module implements the *offline/assignment* view of LS: given
processing times (estimated or actual), return which machine each task
goes to and the resulting loads.  The *online/event-driven* view — where
"least loaded" means "first machine to become idle" and actual durations
are revealed over time — is :mod:`repro.simulation`; with all tasks
released at time 0 the two views coincide on the produced assignment when
fed the same durations, a fact the integration tests check.

A binary heap keeps each assignment ``O(n log m)``.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro._validation import check_machine_count, check_times

__all__ = ["AssignmentResult", "list_schedule", "balance_gap", "greedy_assign_heap"]


@dataclass(frozen=True)
class AssignmentResult:
    """Output of an offline assignment algorithm.

    Attributes
    ----------
    assignment:
        ``assignment[j]`` is the machine of the ``j``-th task *in the order
        the algorithm received them* (callers who permuted the input must
        un-permute; :func:`repro.schedulers.lpt.lpt_schedule` does this).
    loads:
        Final load (sum of given processing times) of each machine.
    order:
        The order in which tasks were considered (indices into the caller's
        time array).
    """

    assignment: tuple[int, ...]
    loads: tuple[float, ...]
    order: tuple[int, ...]

    @property
    def makespan(self) -> float:
        """Maximum machine load."""
        return max(self.loads)

    @property
    def m(self) -> int:
        return len(self.loads)

    def machine_tasks(self) -> list[list[int]]:
        """Task indices grouped per machine, in assignment order."""
        per_machine: list[list[int]] = [[] for _ in range(self.m)]
        for j, i in zip(self.order, self.assignment):
            per_machine[i].append(j)
        return per_machine


def greedy_assign_heap(
    times: Sequence[float],
    order: Sequence[int],
    m: int,
    *,
    initial_loads: Sequence[float] | None = None,
) -> AssignmentResult:
    """Assign tasks (taken in ``order``) greedily to the least-loaded machine.

    This is the common core of LS and LPT.  Ties on load are broken by the
    smallest machine id, matching the deterministic tie-breaking used
    throughout the library (and required for reproducible experiments).

    Parameters
    ----------
    times:
        Processing time of each task (indexed by task id).
    order:
        The order in which tasks are taken; a permutation of a subset of
        ``range(len(times))``.
    m:
        Number of machines.
    initial_loads:
        Pre-existing load per machine (defaults to all-zero); lets callers
        schedule on a partially filled system, which ABO's Phase 2 needs.
    """
    check_machine_count(m)
    if initial_loads is None:
        start = [0.0] * m
    else:
        if len(initial_loads) != m:
            raise ValueError(f"initial_loads must have length {m}, got {len(initial_loads)}")
        start = [float(x) for x in initial_loads]
        for i, x in enumerate(start):
            if math.isnan(x) or math.isinf(x) or x < 0:
                raise ValueError(f"initial_loads[{i}] must be finite and >= 0, got {x}")
    heap: list[tuple[float, int]] = [(start[i], i) for i in range(m)]
    heapq.heapify(heap)
    loads = list(start)
    assignment: list[int] = []
    for j in order:
        load, i = heapq.heappop(heap)
        assignment.append(i)
        new_load = load + float(times[j])
        loads[i] = new_load
        heapq.heappush(heap, (new_load, i))
    return AssignmentResult(tuple(assignment), tuple(loads), tuple(order))


def list_schedule(
    times: Sequence[float],
    m: int,
    *,
    order: Sequence[int] | None = None,
    initial_loads: Sequence[float] | None = None,
) -> AssignmentResult:
    """Graham's List Scheduling on identical machines.

    Tasks are taken in ``order`` (input order by default) and each goes to
    the machine with the smallest current load.

    Returns an :class:`AssignmentResult` whose ``assignment`` is aligned
    with ``order``.

    Examples
    --------
    >>> r = list_schedule([3.0, 2.0, 2.0], m=2)
    >>> r.assignment
    (0, 1, 1)
    >>> r.makespan
    4.0
    """
    ts = check_times(times)
    if order is None:
        order = list(range(len(ts)))
    else:
        order = [int(j) for j in order]
        seen: set[int] = set()
        for j in order:
            if not 0 <= j < len(ts):
                raise ValueError(f"order contains {j}, outside 0..{len(ts) - 1}")
            if j in seen:
                raise ValueError(f"order repeats task {j}")
            seen.add(j)
    return greedy_assign_heap(ts, order, m, initial_loads=initial_loads)


def balance_gap(loads: Sequence[float]) -> float:
    """Max pairwise load difference ``max_i load_i - min_i load_i``.

    For any List-Scheduling output this is at most the largest task — the
    balance property Theorem 4's Phase-1 argument uses.
    """
    if not loads:
        raise ValueError("loads must be non-empty")
    return max(loads) - min(loads)
