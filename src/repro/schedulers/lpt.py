"""Largest Processing Time first (LPT).

LPT sorts tasks by non-increasing processing time and then list-schedules
them.  Graham (1969) proved the offline approximation ratio
``4/3 - 1/(3m)``.  The paper uses LPT twice:

* **LPT-No Choice** places task *data* with LPT on the estimates (Phase 1,
  Th. 2);
* **LPT-No Restriction** dispatches tasks online in LPT order of the
  estimates (Phase 2, Th. 3).

Besides the scheduler itself this module exposes the two structural facts
Theorem 2's proof relies on, so tests can check them directly:

* ``C̃_max <= (sum p̃ + (m-1) p̃_l) / m`` where ``l`` is the last task on
  the critical machine (:func:`critical_task`), and
* ``sum p̃ - p̃_l >= m (C̃_max - p̃_l)`` (every machine is loaded to at
  least ``C̃_max - p̃_l`` when ``l`` starts).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro._validation import check_machine_count, check_times
from repro.schedulers.list_scheduling import AssignmentResult, greedy_assign_heap

__all__ = ["lpt_schedule", "lpt_order", "critical_task", "lpt_assignment_by_task"]


def lpt_order(times: Sequence[float]) -> list[int]:
    """Indices sorted by non-increasing time, ties broken by smaller index."""
    ts = check_times(times)
    return sorted(range(len(ts)), key=lambda j: (-ts[j], j))


def lpt_schedule(times: Sequence[float], m: int) -> AssignmentResult:
    """LPT on identical machines.

    Examples
    --------
    >>> r = lpt_schedule([2.0, 3.0, 2.0, 2.0], m=2)
    >>> r.makespan
    5.0
    """
    ts = check_times(times)
    check_machine_count(m)
    return greedy_assign_heap(ts, lpt_order(ts), m)


def lpt_assignment_by_task(times: Sequence[float], m: int) -> list[int]:
    """LPT assignment re-indexed by task id (``result[j]`` = machine of ``j``)."""
    res = lpt_schedule(times, m)
    by_task = [0] * len(times)
    for pos, j in enumerate(res.order):
        by_task[j] = res.assignment[pos]
    return by_task


def critical_task(result: AssignmentResult, times: Sequence[float]) -> int:
    """The task ``l`` that *reaches* the makespan.

    Within an assignment result, this is the last task (in the scheduling
    order) placed on a machine whose final load equals the makespan.  The
    proofs of Theorems 2 and 3 reason about this task's processing time.
    """
    makespan = result.makespan
    critical_machines = {i for i, load in enumerate(result.loads) if load == makespan}
    last: int | None = None
    for pos, j in enumerate(result.order):
        if result.assignment[pos] in critical_machines:
            last = j
    if last is None:  # pragma: no cover — non-empty schedules always have one
        raise ValueError("no critical task found (empty schedule?)")
    return last
