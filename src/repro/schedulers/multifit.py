"""MULTIFIT (Coffman, Garey & Johnson 1978).

MULTIFIT binary-searches a makespan deadline ``C`` and asks whether
First-Fit-Decreasing (FFD) packs all tasks into ``m`` bins of capacity
``C``.  With enough iterations it is a ``13/11``-approximation — better
than LPT — at the cost of more work per instance.

The paper does not use MULTIFIT directly, but the dual-approximation
framework (:mod:`repro.schedulers.dual_approx`) and the optional
"π₁ = a better makespan schedule" knob of the memory-aware algorithms do:
SABO/ABO are parameterized by a ρ₁-approximate makespan scheduler, and
sweeping ρ₁ ∈ {LPT, MULTIFIT, dual-approx} is one of our ablations.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro._validation import check_machine_count, check_positive_int, check_times
from repro.schedulers.list_scheduling import AssignmentResult
from repro.schedulers.lower_bounds import lp_bound
from repro.schedulers.lpt import lpt_schedule

__all__ = ["ffd_pack", "multifit_schedule", "MULTIFIT_RATIO"]

#: Proven worst-case ratio of MULTIFIT with sufficiently many iterations.
MULTIFIT_RATIO = 13.0 / 11.0


def ffd_pack(times: Sequence[float], m: int, capacity: float) -> list[int] | None:
    """First-Fit-Decreasing into ``m`` bins of ``capacity``.

    Returns ``assignment[j] = bin of task j`` (task-id indexed) on success,
    or ``None`` if some task does not fit.  Tasks are considered in
    non-increasing size order; each goes to the *first* bin with room.
    """
    ts = check_times(times)
    check_machine_count(m)
    if capacity <= 0:
        return None
    order = sorted(range(len(ts)), key=lambda j: (-ts[j], j))
    loads = [0.0] * m
    assignment = [-1] * len(ts)
    # Tiny relative slack so capacities derived from sums of the same floats
    # (e.g. capacity == exact optimum) are not rejected by round-off.
    eps = 1e-12 * max(capacity, 1.0)
    for j in order:
        placed = False
        for i in range(m):
            if loads[i] + ts[j] <= capacity + eps:
                loads[i] += ts[j]
                assignment[j] = i
                placed = True
                break
        if not placed:
            return None
    return assignment


def multifit_schedule(
    times: Sequence[float],
    m: int,
    *,
    iterations: int = 40,
) -> AssignmentResult:
    """MULTIFIT: binary search on the FFD deadline.

    The search window is the classical
    ``[max(lp_bound, ...), lpt_makespan]``: FFD always succeeds at the LPT
    makespan, and no packing can beat the LP bound.  After the binary
    search, the best *feasible* deadline's packing is returned.  Falls back
    to the LPT schedule if (numerically) no tighter packing was found.

    ``iterations = 40`` drives the window below any practical float
    resolution; the ratio guarantee only needs ~10.
    """
    ts = check_times(times)
    check_machine_count(m)
    check_positive_int(iterations, "iterations")

    lpt_res = lpt_schedule(ts, m)
    lo = lp_bound(ts, m)
    hi = lpt_res.makespan
    best_assignment: list[int] | None = None

    for _ in range(iterations):
        if hi - lo <= 1e-15 * max(hi, 1.0):
            break
        mid = 0.5 * (lo + hi)
        packed = ffd_pack(ts, m, mid)
        if packed is None:
            lo = mid
        else:
            hi = mid
            best_assignment = packed

    if best_assignment is None:
        return lpt_res

    loads = [0.0] * m
    for j, i in enumerate(best_assignment):
        loads[i] += ts[j]
    result = AssignmentResult(
        tuple(best_assignment), tuple(loads), tuple(range(len(ts)))
    )
    # FFD at a loose deadline can still be worse than LPT; keep the better.
    return result if result.makespan <= lpt_res.makespan else lpt_res
