"""Naive baseline schedulers.

These exist to anchor the empirical comparisons: any sensible strategy
should beat them, and several tests use them as sanity references (e.g.
round-robin's makespan upper-bounds nothing but is feasible; random
assignment gives the null model of "placement without thought").

All baselines return the same :class:`~repro.schedulers.list_scheduling.
AssignmentResult` shape as the real schedulers so the harness can treat
them uniformly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._validation import check_machine_count, check_times
from repro.core.model import Instance
from repro.core.placement import Placement, single_machine_placement
from repro.core.strategy import FixedOrderPolicy, OnlinePolicy, TwoPhaseStrategy
from repro.registry import Capabilities, Choice, Int, register_strategy
from repro.schedulers.list_scheduling import AssignmentResult, greedy_assign_heap

__all__ = [
    "round_robin_schedule",
    "random_schedule",
    "spt_schedule",
    "single_machine_pile",
    "PinnedBaseline",
]


def round_robin_schedule(times: Sequence[float], m: int) -> AssignmentResult:
    """Task ``j`` goes to machine ``j mod m`` — placement with no load logic."""
    ts = check_times(times)
    check_machine_count(m)
    assignment = tuple(j % m for j in range(len(ts)))
    loads = [0.0] * m
    for j, i in enumerate(assignment):
        loads[i] += ts[j]
    return AssignmentResult(assignment, tuple(loads), tuple(range(len(ts))))


def random_schedule(
    times: Sequence[float],
    m: int,
    seed: int | np.random.Generator | None = 0,
) -> AssignmentResult:
    """Uniformly random machine per task (deterministic given ``seed``)."""
    ts = check_times(times)
    check_machine_count(m)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    assignment = tuple(int(i) for i in rng.integers(0, m, size=len(ts)))
    loads = [0.0] * m
    for j, i in enumerate(assignment):
        loads[i] += ts[j]
    return AssignmentResult(assignment, tuple(loads), tuple(range(len(ts))))


def spt_schedule(times: Sequence[float], m: int) -> AssignmentResult:
    """Shortest Processing Time first, then greedy least-loaded.

    SPT is optimal for total completion time but has the same worst-case
    makespan ratio as plain list scheduling; it serves as the "wrong
    ordering" ablation against LPT.
    """
    ts = check_times(times)
    check_machine_count(m)
    order = sorted(range(len(ts)), key=lambda j: (ts[j], j))
    return greedy_assign_heap(ts, order, m)


_BASELINE_KINDS = ("round_robin", "random", "spt", "single_pile")


@register_strategy(
    "baseline",
    params=(
        Choice(
            "kind",
            values=_BASELINE_KINDS,
            doc="which naive scheduler pins the tasks",
        ),
        Int("seed", default=0, doc="seed for kind=random"),
    ),
    family="schedulers",
    theorem="no bound — empirical anchors",
    capabilities=Capabilities(replication_factor="none", supports_batch=True),
)
class PinnedBaseline(TwoPhaseStrategy):
    """Two-phase wrapper over the naive baseline schedulers.

    Phase 1 pins every task to the machine the chosen baseline assigns it
    (no replication); Phase 2 dispatches each machine's own queue in input
    order.  This lets the anchors run through the same simulation harness
    and capability queries as the real strategies.

    Parameters
    ----------
    kind:
        ``"round_robin"``, ``"random"``, ``"spt"`` or ``"single_pile"``.
    seed:
        Sampling seed, used only by ``kind="random"``.
    """

    def __init__(self, kind: str, seed: int = 0) -> None:
        if kind not in _BASELINE_KINDS:
            raise ValueError(
                f"kind must be one of {', '.join(_BASELINE_KINDS)}, got {kind!r}"
            )
        self.kind = kind
        self.seed = int(seed)
        suffix = f",seed={self.seed}" if self.seed else ""
        self.name = f"baseline[{kind}{suffix}]"

    def _assignment(self, instance: Instance) -> tuple[int, ...]:
        times = list(instance.estimates)
        if self.kind == "round_robin":
            result = round_robin_schedule(times, instance.m)
        elif self.kind == "random":
            result = random_schedule(times, instance.m, seed=self.seed)
        elif self.kind == "spt":
            result = spt_schedule(times, instance.m)
        else:
            result = single_machine_pile(times, instance.m)
        # AssignmentResult.assignment is positional over result.order.
        by_task = [0] * instance.n
        for pos, j in enumerate(result.order):
            by_task[j] = result.assignment[pos]
        return tuple(by_task)

    def place(self, instance: Instance) -> Placement:
        return single_machine_placement(
            instance,
            self._assignment(instance),
            meta={"strategy": self.name, "kind": self.kind},
        )

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        return FixedOrderPolicy(instance.input_order())


def single_machine_pile(times: Sequence[float], m: int) -> AssignmentResult:
    """Everything on machine 0 — the degenerate worst feasible schedule.

    Useful as an upper anchor: every strategy's makespan must be ≤ this,
    and the ratio harness uses it to verify ratio computations on known
    extremes.
    """
    ts = check_times(times)
    check_machine_count(m)
    assignment = tuple(0 for _ in ts)
    loads = [float(sum(ts))] + [0.0] * (m - 1)
    return AssignmentResult(assignment, tuple(loads), tuple(range(len(ts))))
