"""Naive baseline schedulers.

These exist to anchor the empirical comparisons: any sensible strategy
should beat them, and several tests use them as sanity references (e.g.
round-robin's makespan upper-bounds nothing but is feasible; random
assignment gives the null model of "placement without thought").

All baselines return the same :class:`~repro.schedulers.list_scheduling.
AssignmentResult` shape as the real schedulers so the harness can treat
them uniformly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._validation import check_machine_count, check_times
from repro.schedulers.list_scheduling import AssignmentResult, greedy_assign_heap

__all__ = [
    "round_robin_schedule",
    "random_schedule",
    "spt_schedule",
    "single_machine_pile",
]


def round_robin_schedule(times: Sequence[float], m: int) -> AssignmentResult:
    """Task ``j`` goes to machine ``j mod m`` — placement with no load logic."""
    ts = check_times(times)
    check_machine_count(m)
    assignment = tuple(j % m for j in range(len(ts)))
    loads = [0.0] * m
    for j, i in enumerate(assignment):
        loads[i] += ts[j]
    return AssignmentResult(assignment, tuple(loads), tuple(range(len(ts))))


def random_schedule(
    times: Sequence[float],
    m: int,
    seed: int | np.random.Generator | None = 0,
) -> AssignmentResult:
    """Uniformly random machine per task (deterministic given ``seed``)."""
    ts = check_times(times)
    check_machine_count(m)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    assignment = tuple(int(i) for i in rng.integers(0, m, size=len(ts)))
    loads = [0.0] * m
    for j, i in enumerate(assignment):
        loads[i] += ts[j]
    return AssignmentResult(assignment, tuple(loads), tuple(range(len(ts))))


def spt_schedule(times: Sequence[float], m: int) -> AssignmentResult:
    """Shortest Processing Time first, then greedy least-loaded.

    SPT is optimal for total completion time but has the same worst-case
    makespan ratio as plain list scheduling; it serves as the "wrong
    ordering" ablation against LPT.
    """
    ts = check_times(times)
    check_machine_count(m)
    order = sorted(range(len(ts)), key=lambda j: (ts[j], j))
    return greedy_assign_heap(ts, order, m)


def single_machine_pile(times: Sequence[float], m: int) -> AssignmentResult:
    """Everything on machine 0 — the degenerate worst feasible schedule.

    Useful as an upper anchor: every strategy's makespan must be ≤ this,
    and the ratio harness uses it to verify ratio computations on known
    extremes.
    """
    ts = check_times(times)
    check_machine_count(m)
    assignment = tuple(0 for _ in ts)
    loads = [float(sum(ts))] + [0.0] * (m - 1)
    return AssignmentResult(assignment, tuple(loads), tuple(range(len(ts))))
