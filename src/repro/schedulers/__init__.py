"""Classical scheduling substrate: LS, LPT, MULTIFIT, dual approximation."""

from repro.schedulers.baselines import (
    PinnedBaseline,
    random_schedule,
    round_robin_schedule,
    single_machine_pile,
    spt_schedule,
)
from repro.schedulers.dual_approx import dual_approx_schedule, dual_feasible_schedule
from repro.schedulers.list_scheduling import AssignmentResult, balance_gap, list_schedule
from repro.schedulers.lower_bounds import (
    average_load_bound,
    combined_lower_bound,
    kth_group_bound,
    lp_bound,
    max_task_bound,
    pair_bound,
)
from repro.schedulers.lpt import critical_task, lpt_assignment_by_task, lpt_order, lpt_schedule
from repro.schedulers.multifit import MULTIFIT_RATIO, ffd_pack, multifit_schedule

__all__ = [
    "AssignmentResult",
    "list_schedule",
    "balance_gap",
    "lpt_schedule",
    "lpt_order",
    "lpt_assignment_by_task",
    "critical_task",
    "multifit_schedule",
    "ffd_pack",
    "MULTIFIT_RATIO",
    "dual_approx_schedule",
    "dual_feasible_schedule",
    "average_load_bound",
    "max_task_bound",
    "pair_bound",
    "kth_group_bound",
    "lp_bound",
    "combined_lower_bound",
    "round_robin_schedule",
    "random_schedule",
    "spt_schedule",
    "single_machine_pile",
    "PinnedBaseline",
]
