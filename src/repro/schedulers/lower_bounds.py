"""Lower bounds on the optimal makespan :math:`C^*_{max}`.

The paper's ratio proofs repeatedly bound the optimum from below; the
experiment harness needs the same bounds to *measure* competitive ratios on
instances too large for the exact solver (dividing by a lower bound can
only over-estimate a ratio, so a measured ratio below the guarantee remains
a sound check).

Bounds implemented (all classical):

``average_load``
    :math:`\\sum_j p_j / m` — work conservation.
``max_task``
    :math:`\\max_j p_j` — the longest task must run somewhere.
``pair_bound``
    If more than :math:`m` tasks exist, some machine runs two of the
    :math:`m+1` largest, so :math:`C^* \\ge p_{(m)} + p_{(m+1)}` (sorted
    non-increasing, 1-indexed).  This generalizes the two-task argument in
    Lemma 1 of the paper.
``kth_group_bound``
    Generalization: some machine runs :math:`q+1` of the :math:`qm+1`
    largest tasks, so :math:`C^* \\ge \\sum_{r=0}^{q} p_{(rm+1)}` is *not*
    valid in that exact form; the valid form used here is
    :math:`C^* \\ge (q+1) \\cdot p_{(qm+1)}` for every :math:`q \\ge 0`.
``lp_bound``
    The max of ``average_load`` and ``max_task`` — the standard LP
    relaxation value for :math:`P||C_{max}`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro._validation import check_machine_count, check_times

__all__ = [
    "average_load_bound",
    "max_task_bound",
    "pair_bound",
    "kth_group_bound",
    "lp_bound",
    "combined_lower_bound",
]


def average_load_bound(times: Sequence[float], m: int) -> float:
    """:math:`\\sum_j p_j / m`."""
    ts = check_times(times)
    check_machine_count(m)
    return sum(ts) / m


def max_task_bound(times: Sequence[float]) -> float:
    """:math:`\\max_j p_j`."""
    return max(check_times(times))


def pair_bound(times: Sequence[float], m: int) -> float:
    """:math:`p_{(m)} + p_{(m+1)}` when :math:`n > m`, else 0.

    With more than ``m`` tasks, by pigeonhole some machine receives two of
    the ``m+1`` largest; those two are each at least the ``(m+1)``-th
    largest and one is at least the ``m``-th largest.
    """
    ts = sorted(check_times(times), reverse=True)
    check_machine_count(m)
    if len(ts) <= m:
        return 0.0
    return ts[m - 1] + ts[m]


def kth_group_bound(times: Sequence[float], m: int) -> float:
    """:math:`\\max_{q \\ge 1} (q+1) \\cdot p_{(qm+1)}`.

    For every ``q``, the ``qm+1`` largest tasks cannot fit on ``m``
    machines with at most ``q`` of them each, so some machine runs ``q+1``
    tasks that are all at least :math:`p_{(qm+1)}`.
    """
    ts = sorted(check_times(times), reverse=True)
    check_machine_count(m)
    best = 0.0
    q = 1
    while q * m < len(ts):
        best = max(best, (q + 1) * ts[q * m])
        q += 1
    return best


def lp_bound(times: Sequence[float], m: int) -> float:
    """``max(average_load, max_task)`` — the LP relaxation of P||Cmax."""
    return max(average_load_bound(times, m), max_task_bound(times))


def combined_lower_bound(times: Sequence[float], m: int) -> float:
    """The best of all implemented bounds.

    This is the denominator the experiment harness uses when the exact
    optimum is out of reach.  It is always ≤ :math:`C^*_{max}`, so
    measured ratios computed against it are ≥ the true competitive ratio.
    """
    return max(
        average_load_bound(times, m),
        max_task_bound(times),
        pair_bound(times, m),
        kth_group_bound(times, m),
    )
