"""Dual approximation for :math:`P||C_{max}` (Hochbaum & Shmoys 1987).

The paper notes that "one can even obtain an arbitrarily good approximation
algorithm for this problem ... with a dual approximation algorithm".  A
dual ε-approximation, given a deadline ``d``, either proves no schedule of
makespan ``d`` exists or produces one of makespan at most ``(1+ε)d``;
binary-searching ``d`` yields a ``(1+ε)``-approximation for the makespan.

Our dual procedure is the textbook one:

* tasks larger than ``ε·d`` are "big"; after rounding their sizes down to
  powers of ``(1+ε)`` (geometric rounding), there are only
  ``O(log(1/ε)/ε)`` distinct big sizes and at most ``floor(1/ε)`` big
  tasks per machine, so machine *configurations* can be enumerated and a
  feasibility check done by dynamic programming over multisets of big
  tasks;
* small tasks are then greedily added — if they do not fit within
  ``(1+ε)d``, ``d`` was infeasible.

The DP is exponential in ``1/ε`` (as it must be), so this scheduler is
practical for the moderate ε (0.1–0.5) used as the high-quality π₁ option
of the memory-aware algorithms, and doubles as an independent near-optimal
reference in the test suite.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence
from functools import lru_cache

from repro._validation import check_machine_count, check_positive_float, check_times
from repro.schedulers.list_scheduling import AssignmentResult
from repro.schedulers.lower_bounds import lp_bound
from repro.schedulers.lpt import lpt_schedule

__all__ = ["dual_feasible_schedule", "dual_approx_schedule"]


def _big_configurations(
    sizes: tuple[float, ...], counts: tuple[int, ...], capacity: float
) -> list[tuple[int, ...]]:
    """All multiplicity vectors of big tasks fitting in ``capacity``.

    Enumerated by DFS over the distinct (rounded) sizes; the number of big
    tasks per machine is at most ``capacity / min_size``, which the caller
    guarantees is ``O(1/ε)``.
    """
    configs: list[tuple[int, ...]] = []
    cur = [0] * len(sizes)

    def rec(idx: int, remaining: float) -> None:
        if idx == len(sizes):
            configs.append(tuple(cur))
            return
        max_count = min(counts[idx], int(remaining / sizes[idx] + 1e-12))
        for c in range(max_count + 1):
            cur[idx] = c
            rec(idx + 1, remaining - c * sizes[idx])
        cur[idx] = 0

    rec(0, capacity)
    return configs


def dual_feasible_schedule(
    times: Sequence[float], m: int, deadline: float, eps: float
) -> list[int] | None:
    """Dual test: schedule with makespan ≤ ``(1+2ε)·deadline`` or ``None``.

    Returns an assignment (task-id indexed) if one exists with the relaxed
    deadline, or ``None`` as a certificate that no schedule fits within
    ``deadline`` itself.  (The relaxation is ``2ε`` rather than ``ε``
    because we round big sizes *and* pack small tasks greedily; the overall
    binary search still converges to ``(1+O(ε))·OPT``.)
    """
    ts = check_times(times)
    check_machine_count(m)
    check_positive_float(eps, "eps")
    check_positive_float(deadline, "deadline")

    if max(ts) > deadline * (1.0 + 1e-12):
        return None
    if sum(ts) > m * deadline * (1.0 + 1e-12):
        return None

    threshold = eps * deadline
    big_ids = [j for j, t in enumerate(ts) if t > threshold]
    small_ids = [j for j, t in enumerate(ts) if t <= threshold]

    # Geometric rounding of big sizes (round *down*, so feasibility at the
    # rounded sizes is necessary for true feasibility at `deadline`).
    def round_down(t: float) -> float:
        if t <= threshold:
            return t
        k = math.floor(math.log(t / threshold, 1.0 + eps))
        v = threshold * (1.0 + eps) ** k
        while v * (1.0 + eps) <= t * (1.0 + 1e-12):
            v *= 1.0 + eps
        return v

    rounded = {j: round_down(ts[j]) for j in big_ids}
    size_counter = Counter(rounded.values())
    distinct = tuple(sorted(size_counter))
    counts = tuple(size_counter[s] for s in distinct)

    if big_ids:
        configs = _big_configurations(distinct, counts, deadline)

        @lru_cache(maxsize=None)
        def feasible(remaining: tuple[int, ...], machines_left: int) -> tuple[int, ...] | None:
            """Return the config used on one machine, or None if infeasible."""
            if all(c == 0 for c in remaining):
                return tuple(0 for _ in remaining)
            if machines_left == 0:
                return None
            for cfg in configs:
                if all(c <= r for c, r in zip(cfg, remaining)):
                    if any(cfg):
                        nxt = tuple(r - c for r, c in zip(remaining, cfg))
                        if feasible(nxt, machines_left - 1) is not None:
                            return cfg
            return None

        remaining = counts
        machine_cfgs: list[tuple[int, ...]] = []
        for used in range(m):
            cfg = feasible(remaining, m - used)
            if cfg is None:
                feasible.cache_clear()
                return None
            machine_cfgs.append(cfg)
            remaining = tuple(r - c for r, c in zip(remaining, cfg))
            if all(c == 0 for c in remaining):
                machine_cfgs.extend([tuple(0 for _ in distinct)] * (m - used - 1))
                break
        feasible.cache_clear()

        # Materialize: hand actual big tasks (which exceed their rounded
        # size by < factor (1+eps)) to machines per configuration.
        pools: dict[float, list[int]] = {}
        for j in big_ids:
            pools.setdefault(rounded[j], []).append(j)
        for pool in pools.values():
            pool.sort(key=lambda j: -ts[j])
        assignment = [-1] * len(ts)
        loads = [0.0] * m
        for i, cfg in enumerate(machine_cfgs):
            for s, c in zip(distinct, cfg):
                for _ in range(c):
                    j = pools[s].pop()
                    assignment[j] = i
                    loads[i] += ts[j]
    else:
        assignment = [-1] * len(ts)
        loads = [0.0] * m

    # Greedy small tasks within (1 + 2eps) * deadline.
    cap = (1.0 + 2.0 * eps) * deadline
    small_ids.sort(key=lambda j: -ts[j])
    for j in small_ids:
        i = min(range(m), key=lambda i: (loads[i], i))
        if loads[i] + ts[j] > cap * (1.0 + 1e-12):
            return None
        assignment[j] = i
        loads[i] += ts[j]
    return assignment


def dual_approx_schedule(
    times: Sequence[float],
    m: int,
    *,
    eps: float = 0.2,
    iterations: int = 40,
) -> AssignmentResult:
    """``(1+O(ε))``-approximate makespan via binary search on the dual test.

    The window is ``[lp_bound, lpt_makespan]``; each accepted deadline's
    schedule is kept, and the best schedule found (or LPT, if better) is
    returned.
    """
    ts = check_times(times)
    check_machine_count(m)
    check_positive_float(eps, "eps")

    lpt_res = lpt_schedule(ts, m)
    lo = lp_bound(ts, m)
    hi = lpt_res.makespan
    best: list[int] | None = None

    for _ in range(iterations):
        if hi - lo <= 1e-14 * max(hi, 1.0):
            break
        mid = 0.5 * (lo + hi)
        sched = dual_feasible_schedule(ts, m, mid, eps)
        if sched is None:
            lo = mid
        else:
            hi = mid
            best = sched

    if best is None:
        return lpt_res
    loads = [0.0] * m
    for j, i in enumerate(best):
        loads[i] += ts[j]
    result = AssignmentResult(tuple(best), tuple(loads), tuple(range(len(ts))))
    return result if result.makespan <= lpt_res.makespan else lpt_res
