"""Estimate refinement across iterations (adaptive-α extension).

The paper motivates replication with *iterative* applications ("the
application will iterate over the data multiple times, e.g. in an
iterative solver") — but iteration also means feedback: after one pass the
scheduler has *observed* every task's actual duration and can refine its
estimates.  Refinement shrinks the effective uncertainty factor, moving
the system leftward on the paper's α-axis, where less replication is
needed for the same guarantee.

This module implements the loop:

* :class:`EstimateRefiner` — geometric (log-space) exponential smoothing
  of estimates from observed durations, the right averaging for a
  multiplicative error model, plus an empirical effective-α tracker;
* :class:`IterativeSession` — runs a strategy over ``T`` iterations of the
  same task set under a *persistent-bias + per-iteration-noise*
  realization model (task ``j``'s true mean duration is ``p̃_j · f_j``
  with a fixed hidden bias ``f_j``; each iteration adds fresh noise).
  With refinement on, estimates converge to the true means and only the
  noise remains; with refinement off, the full bias is paid every
  iteration.

Bench E10 measures the effect; ``examples/out_of_core_solver.py`` shows
the unrefined loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._validation import check_fraction, check_positive_int
from repro.core.model import Instance, make_instance
from repro.core.placement import Placement
from repro.core.strategy import OnlinePolicy, TwoPhaseStrategy
from repro.analysis.ratios import run_strategy
from repro.registry import Float, StrategyRef, register_strategy
from repro.schedulers.lower_bounds import combined_lower_bound
from repro.uncertainty.realization import Realization, factors_realization

__all__ = [
    "EstimateRefiner",
    "IterationResult",
    "IterativeSession",
    "AdaptiveRefinement",
]


class EstimateRefiner:
    """Geometric exponential smoothing of processing-time estimates.

    After observing actual duration ``p`` for a task currently estimated
    at ``p̃``, the new estimate is ``p̃^(1-eta) · p^eta`` — exponential
    smoothing in log space, which is unbiased for multiplicative error.

    ``effective_alpha()`` reports the smallest α consistent with the last
    observation of every task (``max_j max(p_j/p̃_j, p̃_j/p_j)``) — what a
    scheduler would use as its uncertainty factor going forward.
    """

    def __init__(self, instance: Instance, *, eta: float = 0.5) -> None:
        self.eta = check_fraction(eta, "eta")
        self._estimates = list(instance.estimates)
        self._sizes = list(instance.sizes)
        self._m = instance.m
        self._name = instance.name
        self._last_misses: list[float] = [1.0] * instance.n

    @property
    def estimates(self) -> list[float]:
        return list(self._estimates)

    def observe(self, realization: Realization) -> None:
        """Fold one iteration's observed durations into the estimates.

        The miss factors are recorded against the *pre-update* estimates —
        they describe how wrong the scheduler was this iteration.
        """
        for j, actual in enumerate(realization.actuals):
            old = self._estimates[j]
            miss = max(actual / old, old / actual)
            self._last_misses[j] = miss
            if self.eta > 0.0:
                self._estimates[j] = old ** (1.0 - self.eta) * actual**self.eta

    def effective_alpha(self) -> float:
        """Smallest α consistent with the most recent observations."""
        return max(self._last_misses)

    def refined_instance(self, *, alpha: float | None = None) -> Instance:
        """An instance carrying the refined estimates.

        ``alpha`` defaults to the observed effective α (with a small safety
        margin so fresh noise of the same magnitude stays in-band).
        """
        a = alpha if alpha is not None else min(10.0, 1.05 * self.effective_alpha())
        return make_instance(
            self._estimates,
            self._m,
            max(a, 1.0),
            sizes=self._sizes,
            name=self._name + "+refined",
        )


def _refined_capabilities(strategy: "AdaptiveRefinement"):
    """The wrapper is exactly as capable as the strategy it wraps."""
    from repro.registry import capabilities_of

    return capabilities_of(strategy.base)


@register_strategy(
    "refined",
    params=(
        StrategyRef("base", doc="the wrapped strategy, as a nested spec"),
        Float(
            "eta",
            ge=0.0,
            le=1.0,
            default=0.5,
            omit_default=False,
            doc="log-space smoothing rate fed to the refiner",
        ),
    ),
    family="adaptive",
    theorem="§8 iterative extension (bench E10)",
    instance_capabilities=_refined_capabilities,
)
class AdaptiveRefinement(TwoPhaseStrategy):
    """A strategy wrapper that re-places on refinement-corrected estimates.

    Wraps any base strategy; between iterations the caller feeds observed
    realizations through :meth:`observe`, and the next :meth:`place` runs
    the base strategy on the refined estimates (the returned placement is
    re-expressed over the *original* instance, so the engine's identity
    checks still hold).  Before any observation the wrapper is exactly the
    base strategy.

    Parameters
    ----------
    base:
        The wrapped :class:`~repro.core.strategy.TwoPhaseStrategy`.
    eta:
        Smoothing rate handed to :class:`EstimateRefiner`.
    """

    def __init__(self, base: TwoPhaseStrategy, eta: float = 0.5) -> None:
        self.base = base
        self.eta = check_fraction(eta, "eta")
        self.name = f"refined[{base.name},eta={self.eta:g}]"
        self._refiner: EstimateRefiner | None = None
        self._refined_cache: dict[int, Instance] = {}

    def observe(self, realization: Realization) -> None:
        """Fold one iteration's observed durations into the estimates."""
        if self._refiner is None:
            self._refiner = EstimateRefiner(realization.instance, eta=self.eta)
        self._refiner.observe(realization)
        self._refined_cache.clear()

    def _effective(self, instance: Instance) -> Instance:
        if self._refiner is None:
            return instance
        key = id(instance)
        if key not in self._refined_cache:
            self._refined_cache[key] = self._refiner.refined_instance()
        refined = self._refined_cache[key]
        if refined.n != instance.n or refined.m != instance.m:
            raise ValueError(
                "AdaptiveRefinement observed realizations of a different "
                f"instance shape ({refined.n}x{refined.m} vs "
                f"{instance.n}x{instance.m})"
            )
        return refined

    def place(self, instance: Instance) -> Placement:
        refined = self._effective(instance)
        inner = self.base.place(refined)
        if refined is instance:
            return inner
        meta = dict(inner.meta)
        meta["strategy"] = self.name
        meta["refined_alpha"] = refined.alpha
        return Placement(instance, inner.machine_sets, meta=meta)

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        refined = self._effective(instance)
        if refined is instance:
            return self.base.make_policy(instance, placement)
        inner = Placement(refined, placement.machine_sets, meta=dict(placement.meta))
        return self.base.make_policy(refined, inner)


@dataclass(frozen=True)
class IterationResult:
    """One iteration's outcome."""

    iteration: int
    makespan: float
    ratio_vs_lb: float
    effective_alpha: float


class IterativeSession:
    """Run a strategy over repeated iterations of one task set.

    Realization model: actual duration of task ``j`` in iteration ``t`` is
    ``p̃_j · f_j · ε_{j,t}`` where

    * ``f_j`` — hidden persistent bias, log-uniform within the
      ``bias_fraction`` share of the log-band (the part of the error a
      learner *can* remove), fixed across iterations;
    * ``ε_{j,t}`` — fresh noise, log-uniform within the remaining share
      (irreducible run-to-run variation).

    The product always stays inside the original α-band.

    Parameters
    ----------
    instance:
        The task set (its α defines the total uncertainty budget).
    strategy:
        Any :class:`~repro.core.strategy.TwoPhaseStrategy`; Phase 1 is
        re-run each iteration on the (possibly refined) estimates —
        re-placement cost is the application's concern, as in the paper.
    bias_fraction:
        Share of the log-band taken by the learnable persistent bias.
    seed:
        Drives both the bias draw and the per-iteration noise.
    """

    def __init__(
        self,
        instance: Instance,
        strategy: TwoPhaseStrategy,
        *,
        bias_fraction: float = 0.7,
        seed: int = 0,
    ) -> None:
        self.instance = instance
        self.strategy = strategy
        self.bias_fraction = check_fraction(bias_fraction, "bias_fraction")
        self._rng = np.random.default_rng(seed)
        log_a = math.log(instance.alpha)
        self._bias = np.exp(
            self._rng.uniform(
                -self.bias_fraction * log_a, self.bias_fraction * log_a, size=instance.n
            )
        )
        self._noise_span = (1.0 - self.bias_fraction) * log_a

    def _draw_realization(self, base: Instance) -> Realization:
        """One iteration's actuals, expressed against ``base``'s estimates.

        The *true* durations are ``original_estimate · bias · noise``; the
        returned realization converts them to factors on the (possibly
        refined) current estimates and clips to base's α-band, which is
        exactly what a real system would observe.
        """
        noise = np.exp(
            self._rng.uniform(-self._noise_span, self._noise_span, size=base.n)
        )
        true_durations = np.asarray(self.instance.estimates) * self._bias * noise
        factors = true_durations / np.asarray(base.estimates)
        lo, hi = 1.0 / base.alpha, base.alpha
        factors = np.clip(factors, lo, hi)
        return factors_realization(base, factors.tolist(), label="iterative")

    def run(self, iterations: int, *, refine: bool = True, eta: float = 0.5) -> list[IterationResult]:
        """Run ``iterations`` passes; returns the per-iteration results."""
        check_positive_int(iterations, "iterations")
        current = self.instance
        refiner = EstimateRefiner(self.instance, eta=eta if refine else 0.0)
        results: list[IterationResult] = []
        for t in range(iterations):
            realization = self._draw_realization(current)
            outcome = run_strategy(self.strategy, current, realization, validate=False)
            lb = combined_lower_bound(list(realization.actuals), current.m)
            refiner.observe(realization)
            results.append(
                IterationResult(
                    iteration=t,
                    makespan=outcome.makespan,
                    ratio_vs_lb=outcome.makespan / lb,
                    effective_alpha=refiner.effective_alpha(),
                )
            )
            if refine:
                current = refiner.refined_instance()
        return results
