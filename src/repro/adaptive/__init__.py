"""Adaptive estimates: refine p̃ from observed durations across iterations."""

from repro.adaptive.refinement import (
    AdaptiveRefinement,
    EstimateRefiner,
    IterationResult,
    IterativeSession,
)

__all__ = [
    "EstimateRefiner",
    "IterativeSession",
    "IterationResult",
    "AdaptiveRefinement",
]
