"""Workloads with memory sizes, for the memory-aware model (Section 6).

The SABO/ABO algorithms act on the *joint* distribution of estimated time
and memory size, so the interesting axes are correlation (big tasks have
big data?) and skew.  Three canonical couplings:

``independent_sizes``
    Size and time independent — the split threshold separates tasks
    essentially at random.
``correlated_sizes``
    Size ∝ time (with noise) — the out-of-core linear-algebra case where
    runtime scales with the data; the threshold then orders tasks by a
    single scalar, and SABO/ABO degenerate gracefully.
``anticorrelated_sizes``
    Size ∝ 1/time — compute-bound small-data tasks vs. IO-bound big-data
    tasks; the regime where ABO's selective replication shines (it
    replicates exactly the small-data, long-running tasks).
``planted_two_class``
    An explicit two-class instance (time-heavy small tasks + memory-heavy
    quick tasks) with known ideal split, used by unit tests to check the
    SBO threshold picks the planted classes.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive_float, check_positive_int
from repro.core.model import Instance
from repro.workloads.generators import uniform_instance

__all__ = [
    "independent_sizes",
    "correlated_sizes",
    "anticorrelated_sizes",
    "planted_two_class",
    "MEMORY_WORKLOADS",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def independent_sizes(
    n: int,
    m: int,
    alpha: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    *,
    size_lo: float = 1.0,
    size_hi: float = 10.0,
) -> Instance:
    """Uniform times and independently uniform sizes."""
    rng = _rng(seed)
    base = uniform_instance(n, m, alpha, rng)
    sizes = rng.uniform(size_lo, size_hi, size=n)
    inst = base.with_sizes(sizes.tolist())
    return Instance(inst.tasks, m, alpha, name=f"mem_independent(n={n},m={m})")


def correlated_sizes(
    n: int,
    m: int,
    alpha: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    *,
    bytes_per_second: float = 2.0,
    noise: float = 0.2,
) -> Instance:
    """Size proportional to estimated time, with lognormal-ish noise."""
    check_positive_float(bytes_per_second, "bytes_per_second")
    rng = _rng(seed)
    base = uniform_instance(n, m, alpha, rng)
    mult = np.exp(rng.uniform(-noise, noise, size=n))
    sizes = [bytes_per_second * t.estimate * float(mu) for t, mu in zip(base.tasks, mult)]
    inst = base.with_sizes(sizes)
    return Instance(inst.tasks, m, alpha, name=f"mem_correlated(n={n},m={m})")


def anticorrelated_sizes(
    n: int,
    m: int,
    alpha: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    *,
    budget: float = 20.0,
    noise: float = 0.2,
) -> Instance:
    """Size inversely proportional to estimated time.

    ``size ≈ budget / estimate`` — long tasks carry little data (worth
    replicating), short tasks carry much (pin them).
    """
    check_positive_float(budget, "budget")
    rng = _rng(seed)
    base = uniform_instance(n, m, alpha, rng)
    mult = np.exp(rng.uniform(-noise, noise, size=n))
    sizes = [budget / t.estimate * float(mu) for t, mu in zip(base.tasks, mult)]
    inst = base.with_sizes(sizes)
    return Instance(inst.tasks, m, alpha, name=f"mem_anticorrelated(n={n},m={m})")


def planted_two_class(
    n_time: int,
    n_mem: int,
    m: int,
    alpha: float = 1.0,
    *,
    time_heavy: float = 10.0,
    time_light: float = 1.0,
    size_heavy: float = 10.0,
    size_light: float = 1.0,
) -> Instance:
    """Deterministic two-class instance with a planted ideal split.

    ``n_time`` tasks are (time=time_heavy, size=size_light) — the class
    SABO/ABO should route to π₁ / replicate — and ``n_mem`` tasks are
    (time=time_light, size=size_heavy) — the class to pin via π₂.  The
    first ``n_time`` task ids are the time class.
    """
    check_positive_int(n_time, "n_time")
    check_positive_int(n_mem, "n_mem")
    if time_heavy <= time_light:
        raise ValueError("time_heavy must exceed time_light for a planted split")
    if size_heavy <= size_light:
        raise ValueError("size_heavy must exceed size_light for a planted split")
    estimates = [time_heavy] * n_time + [time_light] * n_mem
    sizes = [size_light] * n_time + [size_heavy] * n_mem
    from repro.core.model import make_instance

    return make_instance(
        estimates,
        m,
        alpha,
        sizes=sizes,
        name=f"planted_two_class({n_time}+{n_mem},m={m})",
    )


#: Seedable memory workload families by name.
MEMORY_WORKLOADS = {
    "independent": independent_sizes,
    "correlated": correlated_sizes,
    "anticorrelated": anticorrelated_sizes,
}
