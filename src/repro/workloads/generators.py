"""Synthetic workload generators.

The paper motivates its model with out-of-core sparse linear algebra and
Hadoop-style clusters; absent the authors' traces (none are published —
the paper has no experimental section), these generators produce the
synthetic families our empirical benches sweep.  All are deterministic
given a seed and return :class:`~repro.core.model.Instance` objects
(estimates only; the realization layer perturbs them separately).

Families
--------
``uniform_instance``
    Estimates uniform on ``[lo, hi]`` — the bland default.
``exponential_instance``
    Exponential-tailed estimates (scale ``mean``), clipped away from 0.
``bounded_pareto_instance``
    Heavy-tailed (bounded Pareto) — a few huge tasks dominate, the classic
    hard case for makespan scheduling.
``bimodal_instance``
    Short/long mixture — models the "many tiny + some big kernels" shape
    of sparse solvers.
``identical_instance``
    All-unit estimates, the Theorem-1 adversary's instance.
``staircase_instance``
    Deterministic distinct estimates ``n, n-1, ..., 1`` — useful for
    reproducible worked examples (Figure 2's style).
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    check_alpha,
    check_machine_count,
    check_positive_float,
    check_positive_int,
)
from repro.core.model import Instance, make_instance

__all__ = [
    "uniform_instance",
    "exponential_instance",
    "bounded_pareto_instance",
    "bimodal_instance",
    "identical_instance",
    "staircase_instance",
    "WORKLOAD_FAMILIES",
    "generate",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform_instance(
    n: int,
    m: int,
    alpha: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    *,
    lo: float = 1.0,
    hi: float = 10.0,
) -> Instance:
    """Estimates uniform on ``[lo, hi]``."""
    check_positive_int(n, "n")
    check_positive_float(lo, "lo")
    if hi < lo:
        raise ValueError(f"hi must be >= lo, got lo={lo}, hi={hi}")
    rng = _rng(seed)
    ests = rng.uniform(lo, hi, size=n)
    return make_instance(ests.tolist(), m, alpha, name=f"uniform(n={n},m={m})")


def exponential_instance(
    n: int,
    m: int,
    alpha: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    *,
    mean: float = 5.0,
    floor: float = 0.05,
) -> Instance:
    """Exponential-tailed estimates with a positive floor."""
    check_positive_int(n, "n")
    check_positive_float(mean, "mean")
    check_positive_float(floor, "floor")
    rng = _rng(seed)
    ests = np.maximum(rng.exponential(mean, size=n), floor)
    return make_instance(ests.tolist(), m, alpha, name=f"exponential(n={n},m={m})")


def bounded_pareto_instance(
    n: int,
    m: int,
    alpha: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    *,
    shape: float = 1.1,
    lo: float = 1.0,
    hi: float = 1000.0,
) -> Instance:
    """Bounded-Pareto estimates on ``[lo, hi]`` with tail index ``shape``.

    Inverse-CDF sampling of the bounded Pareto: heavy tail, hard instances
    — a handful of tasks carry most of the work.
    """
    check_positive_int(n, "n")
    check_positive_float(shape, "shape")
    check_positive_float(lo, "lo")
    if hi <= lo:
        raise ValueError(f"hi must be > lo, got lo={lo}, hi={hi}")
    rng = _rng(seed)
    u = rng.random(n)
    a = shape
    l_a, h_a = lo**a, hi**a
    ests = (-(u * h_a - u * l_a - h_a) / (h_a * l_a)) ** (-1.0 / a)
    return make_instance(ests.tolist(), m, alpha, name=f"bounded_pareto(n={n},m={m})")


def bimodal_instance(
    n: int,
    m: int,
    alpha: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    *,
    short: float = 1.0,
    long: float = 20.0,
    p_long: float = 0.2,
    jitter: float = 0.1,
) -> Instance:
    """Short/long task mixture with multiplicative jitter."""
    check_positive_int(n, "n")
    check_positive_float(short, "short")
    check_positive_float(long, "long")
    if not 0.0 <= p_long <= 1.0:
        raise ValueError(f"p_long must be in [0, 1], got {p_long}")
    rng = _rng(seed)
    base = np.where(rng.random(n) < p_long, long, short)
    ests = base * np.exp(rng.uniform(-jitter, jitter, size=n))
    return make_instance(ests.tolist(), m, alpha, name=f"bimodal(n={n},m={m})")


def identical_instance(n: int, m: int, alpha: float = 1.0) -> Instance:
    """All-unit estimates — the Theorem-1 adversary's shape."""
    check_positive_int(n, "n")
    return make_instance([1.0] * n, m, alpha, name=f"identical(n={n},m={m})")


def staircase_instance(n: int, m: int, alpha: float = 1.0) -> Instance:
    """Deterministic estimates ``n, n-1, ..., 1`` (distinct, reproducible)."""
    check_positive_int(n, "n")
    return make_instance([float(n - j) for j in range(n)], m, alpha, name=f"staircase(n={n},m={m})")


#: Seedable workload families by name, for the experiment harness.
WORKLOAD_FAMILIES = {
    "uniform": uniform_instance,
    "exponential": exponential_instance,
    "bounded_pareto": bounded_pareto_instance,
    "bimodal": bimodal_instance,
}


def generate(
    family: str,
    n: int,
    m: int,
    alpha: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    **kwargs: float,
) -> Instance:
    """Generate an instance from a named family.

    ``family`` may also be ``"identical"`` or ``"staircase"`` (both
    deterministic; the seed is ignored for them).
    """
    check_machine_count(m)
    check_alpha(alpha)
    if family == "identical":
        return identical_instance(n, m, alpha)
    if family == "staircase":
        return staircase_instance(n, m, alpha)
    try:
        fn = WORKLOAD_FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown workload family {family!r}; known: "
            f"{sorted(WORKLOAD_FAMILIES) + ['identical', 'staircase']}"
        ) from None
    return fn(n, m, alpha, seed, **kwargs)
