"""Named experiment suites: fixed parameter grids for the benches.

A suite is a reproducible list of (instance, description) pairs.  Benches
and integration tests iterate suites rather than inventing parameters
inline, so every reported number can be regenerated from a suite name and
a seed.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.core.model import Instance
from repro.workloads.generators import generate
from repro.workloads.memory_workloads import MEMORY_WORKLOADS

__all__ = ["SuiteCase", "small_exact_suite", "medium_suite", "memory_suite", "paper_figure3_machines"]


@dataclass(frozen=True)
class SuiteCase:
    """One suite entry: the instance plus the generation recipe."""

    instance: Instance
    family: str
    n: int
    m: int
    alpha: float
    seed: int


def small_exact_suite(*, alphas: tuple[float, ...] = (1.1, 1.5, 2.0), seeds: int = 3) -> Iterator[SuiteCase]:
    """Instances small enough for the exact optimum (ratio tests, bench E1).

    Grid: families × n ∈ {8, 12, 16} × m ∈ {2, 3, 4} × alphas × seeds,
    skipping degenerate n <= m cases.
    """
    for family in ("uniform", "exponential", "bounded_pareto", "bimodal", "identical"):
        for n in (8, 12, 16):
            for m in (2, 3, 4):
                if n <= m:
                    continue
                for alpha in alphas:
                    for seed in range(seeds):
                        inst = generate(family, n, m, alpha, seed)
                        yield SuiteCase(inst, family, n, m, alpha, seed)


def medium_suite(*, alphas: tuple[float, ...] = (1.1, 1.5, 2.0), seeds: int = 2) -> Iterator[SuiteCase]:
    """Larger instances measured against lower bounds (bench E1 at scale).

    Grid: families × n ∈ {60, 200} × m ∈ {6, 10, 30} × alphas × seeds.
    ``m = 30`` exposes the group sweep (divisors 1,2,3,5,6,10,15,30).
    """
    for family in ("uniform", "exponential", "bounded_pareto", "bimodal"):
        for n in (60, 200):
            for m in (6, 10, 30):
                for alpha in alphas:
                    for seed in range(seeds):
                        inst = generate(family, n, m, alpha, seed)
                        yield SuiteCase(inst, family, n, m, alpha, seed)


def memory_suite(*, alphas: tuple[float, ...] = (1.414, 1.732), seeds: int = 2) -> Iterator[SuiteCase]:
    """Memory-aware instances for the SABO/ABO benches (Figure 6, E4).

    α values match the paper's Figure-6 parameterizations (α² = 2, 3).
    """
    for family, fn in sorted(MEMORY_WORKLOADS.items()):
        for n in (20, 50):
            for m in (5,):  # Figure 6 uses m = 5
                for alpha in alphas:
                    for seed in range(seeds):
                        inst = fn(n, m, alpha, seed)
                        yield SuiteCase(inst, f"mem_{family}", n, m, alpha, seed)


def paper_figure3_machines() -> int:
    """The machine count of Figure 3: m = 210 (divisor-rich: 2·3·5·7)."""
    return 210
