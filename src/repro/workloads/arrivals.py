"""Arrival-trace workloads: release times for the online extension.

The paper's model releases everything at time 0, but the engine supports
release times, and real clusters see batches arrive over time.  These
generators produce ``(Instance, release_times)`` pairs mimicking common
arrival patterns so the release-time extension can be exercised with
realistic shapes:

``poisson_arrivals``
    Exponential inter-arrival times with a configurable duty factor
    (mean arrival rate relative to service capacity).
``batched_arrivals``
    Work arrives in waves of ``batch_size`` tasks every ``period`` —
    the shape of periodic ETL/iteration pipelines.
``front_loaded_arrivals``
    All tasks known at t=0 except a trailing fraction that arrives late —
    models stragglers joining a mostly-offline batch.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_fraction, check_positive_float, check_positive_int
from repro.core.model import Instance
from repro.workloads.generators import uniform_instance

__all__ = ["poisson_arrivals", "batched_arrivals", "front_loaded_arrivals"]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def poisson_arrivals(
    n: int,
    m: int,
    alpha: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    *,
    duty: float = 0.8,
) -> tuple[Instance, list[float]]:
    """Poisson arrivals at ``duty`` × the cluster's estimated service rate.

    ``duty < 1`` keeps the system stable (arrivals slower than service);
    ``duty > 1`` back-logs it, degenerating toward the all-at-zero model.
    """
    check_positive_float(duty, "duty")
    rng = _rng(seed)
    inst = uniform_instance(n, m, alpha, rng)
    mean_service = inst.total_estimate / inst.n
    rate = duty * m / mean_service
    gaps = rng.exponential(1.0 / rate, size=n)
    releases = np.cumsum(gaps)
    releases[0] = 0.0  # first task available immediately
    return inst, [float(r) for r in releases]


def batched_arrivals(
    n: int,
    m: int,
    alpha: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    *,
    batch_size: int = 10,
    period: float = 20.0,
) -> tuple[Instance, list[float]]:
    """Waves of ``batch_size`` tasks every ``period`` time units."""
    check_positive_int(batch_size, "batch_size")
    check_positive_float(period, "period")
    inst = uniform_instance(n, m, alpha, _rng(seed))
    releases = [float((j // batch_size) * period) for j in range(n)]
    return inst, releases


def front_loaded_arrivals(
    n: int,
    m: int,
    alpha: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    *,
    late_fraction: float = 0.2,
    late_time: float = 30.0,
) -> tuple[Instance, list[float]]:
    """Most tasks at t=0; the last ``late_fraction`` of them at ``late_time``."""
    check_fraction(late_fraction, "late_fraction")
    check_positive_float(late_time, "late_time")
    inst = uniform_instance(n, m, alpha, _rng(seed))
    cutoff = int(round((1.0 - late_fraction) * n))
    releases = [0.0 if j < cutoff else late_time for j in range(n)]
    return inst, releases
