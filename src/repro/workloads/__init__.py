"""Synthetic workload generators and named experiment suites."""

from repro.workloads.arrivals import (
    batched_arrivals,
    front_loaded_arrivals,
    poisson_arrivals,
)
from repro.workloads.generators import (
    WORKLOAD_FAMILIES,
    bimodal_instance,
    bounded_pareto_instance,
    exponential_instance,
    generate,
    identical_instance,
    staircase_instance,
    uniform_instance,
)
from repro.workloads.memory_workloads import (
    MEMORY_WORKLOADS,
    anticorrelated_sizes,
    correlated_sizes,
    independent_sizes,
    planted_two_class,
)
from repro.workloads.suites import (
    SuiteCase,
    medium_suite,
    memory_suite,
    paper_figure3_machines,
    small_exact_suite,
)

__all__ = [
    "poisson_arrivals",
    "batched_arrivals",
    "front_loaded_arrivals",
    "uniform_instance",
    "exponential_instance",
    "bounded_pareto_instance",
    "bimodal_instance",
    "identical_instance",
    "staircase_instance",
    "generate",
    "WORKLOAD_FAMILIES",
    "independent_sizes",
    "correlated_sizes",
    "anticorrelated_sizes",
    "planted_two_class",
    "MEMORY_WORKLOADS",
    "SuiteCase",
    "small_exact_suite",
    "medium_suite",
    "memory_suite",
    "paper_figure3_machines",
]
