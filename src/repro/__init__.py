"""repro — Replicated Data Placement for Uncertain Scheduling.

A full reproduction of Chaubey & Saule, *Replicated Data Placement for
Uncertain Scheduling* (IPPS 2015): scheduling independent tasks on
identical machines when processing times are known only up to a
multiplicative factor α, and replicating task *data* across machines to
recover runtime flexibility.

Quickstart
----------
>>> import repro
>>> inst = repro.uniform_instance(n=40, m=6, alpha=1.5, seed=1)
>>> real = repro.sample_realization(inst, "log_uniform", seed=2)
>>> rec = repro.measured_ratio(repro.LSGroup(k=2), inst, real)
>>> rec.ratio <= repro.ub_ls_group(inst.alpha, inst.m, 2)
True

Layers
------
* :mod:`repro.core` — model, placements, the paper's strategies, bounds,
  adversaries, tradeoff analysis;
* :mod:`repro.schedulers` — classical LS/LPT/MULTIFIT/dual-approximation
  substrate;
* :mod:`repro.exact` — exact clairvoyant optimum (the ratio denominator);
* :mod:`repro.simulation` — discrete-event semi-clairvoyant executor;
* :mod:`repro.uncertainty` — the α-band, adversarial and stochastic
  realizations;
* :mod:`repro.memory` — the memory-aware model (SBO/SABO/ABO);
* :mod:`repro.workloads` — synthetic workload generators and suites;
* :mod:`repro.faults` — unified fault injection: crash-stop /
  crash-recover / degraded-speed / correlated fault plans and seeded
  generators;
* :mod:`repro.registry` — the declarative strategy-plugin registry:
  typed spec parsing, canonical round-tripping, capability flags;
* :mod:`repro.analysis` — experiment harness, stats, tables, plots;
* :mod:`repro.obs` — structured observability: spans, metrics, run
  provenance (no-op unless enabled).
"""

from repro.adaptive import AdaptiveRefinement, EstimateRefiner, IterativeSession
from repro.analysis import (
    ExperimentGrid,
    ExperimentRecord,
    FaultRunRecord,
    Series,
    Summary,
    availability_curve,
    format_markdown_table,
    format_table,
    inflation_summary,
    measured_ratio,
    render_plot,
    run_fault_grid,
    run_grid,
    run_strategy,
    run_under_faults,
    summarize,
    survival_rate,
    write_csv,
)
from repro.core import (
    FixedOrderPolicy,
    Instance,
    Placement,
    Task,
    TwoPhaseStrategy,
    everywhere_placement,
    group_placement,
    make_instance,
    single_machine_placement,
)
from repro.core.adversary import (
    exhaustive_worst_case,
    greedy_worst_case,
    theorem1_instance,
    theorem1_realization,
)
from repro.core.bounds import (
    divisors,
    lb_no_replication,
    lb_no_replication_limit,
    ub_graham_ls,
    ub_lpt_classic,
    ub_lpt_no_choice,
    ub_lpt_no_restriction,
    ub_lpt_no_restriction_raw,
    ub_ls_group,
)
from repro.core.strategies import (
    BudgetedReplication,
    LPTGroup,
    LPTNoChoice,
    LPTNoRestriction,
    LSGroup,
    NonClairvoyantLS,
    OverlappingWindows,
    SelectiveReplication,
    full_sweep,
    make_strategy,
    strategy_names,
)
from repro.core.tradeoff import ratio_replication_series, tradeoff_findings
from repro.exact import optimal_makespan
from repro.faults import (
    CorrelatedFailure,
    CrashRecover,
    CrashStop,
    DegradedInterval,
    FaultModel,
    FaultPlan,
    RackFailure,
    RandomCrashes,
    StragglerSlowdowns,
    merge_plans,
)
from repro.hetero import (
    HeteroUncertainty,
    RiskAwareReplication,
    hetero_realization,
    hetero_workload,
)
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    RunManifest,
    Tracer,
    get_tracer,
    observed,
)
from repro.registry import (
    Capabilities,
    CapabilityError,
    canonical_spec,
    capabilities_of,
    describe_strategy,
    select_strategies,
    strategy_entries,
)
from repro.robust import RobustPinnedPlacement
from repro.schedulers import PinnedBaseline
from repro.memory import (
    ABO,
    SABO,
    abo_curve,
    impossibility_curve,
    memory_lower_bound,
    pareto_front,
    sabo_curve,
    sbo_split,
)
from repro.simulation import ScheduleTrace, SimulationError, render_gantt, simulate
from repro.theory import ProofCheck, verify_all
from repro.uncertainty import (
    Realization,
    UncertaintyBand,
    band_from_interval,
    factors_realization,
    sample_realization,
    truthful_realization,
)
from repro.workloads import (
    bimodal_instance,
    bounded_pareto_instance,
    exponential_instance,
    generate,
    identical_instance,
    planted_two_class,
    staircase_instance,
    uniform_instance,
)

__version__ = "1.0.0"

__all__ = [
    # model
    "Task",
    "Instance",
    "make_instance",
    "Placement",
    "single_machine_placement",
    "everywhere_placement",
    "group_placement",
    "TwoPhaseStrategy",
    "FixedOrderPolicy",
    # strategies
    "LPTNoChoice",
    "LPTNoRestriction",
    "LSGroup",
    "LPTGroup",
    "SelectiveReplication",
    "BudgetedReplication",
    "OverlappingWindows",
    "NonClairvoyantLS",
    "PinnedBaseline",
    "AdaptiveRefinement",
    "make_strategy",
    "strategy_names",
    "full_sweep",
    # registry
    "Capabilities",
    "CapabilityError",
    "describe_strategy",
    "canonical_spec",
    "capabilities_of",
    "select_strategies",
    "strategy_entries",
    # bounds
    "lb_no_replication",
    "lb_no_replication_limit",
    "ub_lpt_no_choice",
    "ub_lpt_no_restriction",
    "ub_lpt_no_restriction_raw",
    "ub_graham_ls",
    "ub_lpt_classic",
    "ub_ls_group",
    "divisors",
    # tradeoff
    "ratio_replication_series",
    "tradeoff_findings",
    # adversary
    "theorem1_instance",
    "theorem1_realization",
    "exhaustive_worst_case",
    "greedy_worst_case",
    # exact
    "optimal_makespan",
    # simulation
    "simulate",
    "SimulationError",
    "ScheduleTrace",
    "render_gantt",
    # theory
    "verify_all",
    "ProofCheck",
    # adaptive
    "EstimateRefiner",
    "IterativeSession",
    # heterogeneous uncertainty
    "HeteroUncertainty",
    "hetero_realization",
    "hetero_workload",
    "RiskAwareReplication",
    "RobustPinnedPlacement",
    # uncertainty
    "UncertaintyBand",
    "band_from_interval",
    "Realization",
    "truthful_realization",
    "factors_realization",
    "sample_realization",
    # memory
    "SABO",
    "ABO",
    "sbo_split",
    "sabo_curve",
    "abo_curve",
    "impossibility_curve",
    "pareto_front",
    "memory_lower_bound",
    # workloads
    "uniform_instance",
    "exponential_instance",
    "bounded_pareto_instance",
    "bimodal_instance",
    "identical_instance",
    "staircase_instance",
    "planted_two_class",
    "generate",
    # observability
    "Tracer",
    "get_tracer",
    "observed",
    "MetricsRegistry",
    "MemorySink",
    "JsonlSink",
    "RunManifest",
    # analysis
    "run_strategy",
    "measured_ratio",
    "run_grid",
    "ExperimentGrid",
    "ExperimentRecord",
    "summarize",
    "Summary",
    "format_table",
    "format_markdown_table",
    "Series",
    "render_plot",
    "write_csv",
    # faults + robustness
    "FaultPlan",
    "CrashStop",
    "CrashRecover",
    "DegradedInterval",
    "CorrelatedFailure",
    "merge_plans",
    "FaultModel",
    "RandomCrashes",
    "RackFailure",
    "StragglerSlowdowns",
    "FaultRunRecord",
    "run_under_faults",
    "run_fault_grid",
    "survival_rate",
    "inflation_summary",
    "availability_curve",
]
