"""The chaos soak harness: sustained load + scheduled faults + verdicts.

A soak run answers the operational question the paper's theorems only
bound: *when a rack actually dies mid-traffic, what does the service
do?*  The harness drives a seeded arrival stream against a
:class:`~repro.service.scheduler.ServiceScheduler` while a
:class:`ChaosSchedule` injects topology-aware failures, and reports:

* the **availability curve** — fraction of placement groups with at
  least one live machine, sampled on a fixed grid (the CSV artifact);
* **makespan inflation** — the chaos arm's makespan against a no-fault
  control arm running the *identical* workload (same seeds, same
  actuals), and against the capacity lower bound :math:`T^\\* =
  \\min\\{T : \\int_0^T \\mathrm{up}(t)\\,dt \\ge W\\}` (no scheduler can
  finish total work :math:`W` sooner on the surviving capacity);
* **replica diversity** of the placement groups over the fleet tree
  (:func:`~repro.chaos.topology.diversity_score`) — the quantity that
  decides how much a rack-sized blast radius can take out;
* an **SLO verdict** via :mod:`repro.obs.slo` over the run's scalars.

Two modes.  :func:`run_soak` is pure virtual time — deterministic by
construction (same config ⇒ byte-identical curve CSV and decision
digest, pinned by ``tests/test_chaos_soak.py``).  :func:`run_soak_live`
spins the real asyncio daemon on a socket and drives it over HTTP in
wall time (chaos via ``POST /v1/chaos``, sampling via ``GET
/v1/health``) — the CI smoke's end-to-end path; its decision digest is
still seed-stable, but sample timing follows the wall clock.

Artifacts land wherever the caller points ``write_artifacts`` —
``<prefix>_curve.csv`` and ``<prefix>_report.json``, each with a
``*.manifest.json`` provenance sidecar.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.analysis.csvio import write_csv
from repro.chaos.policy import Bulkhead, CircuitBreaker, HealthTracker
from repro.chaos.topology import FleetTopology, diversity_score
from repro.faults.plan import FaultPlan
from repro.obs import evaluate_slo, get_tracer, run_manifest
from repro.service.protocol import AdmissionError
from repro.service.scheduler import DURATION_MODELS, ServiceScheduler

__all__ = [
    "ChaosAction",
    "ChaosSchedule",
    "SoakConfig",
    "SoakReport",
    "capacity_bound",
    "run_soak",
    "run_soak_live",
]

#: Seed stream tag for the arrival process, far from the scheduler's
#: ``(seed, tid)`` duration keys so the two never collide.
_ARRIVAL_STREAM = 1_000_003


@dataclass(frozen=True)
class ChaosAction:
    """One scheduled correlated failure: *these machines, at this instant*.

    ``downtime`` is shared by the group; ``math.inf`` means permanent
    (only an explicit recovery brings the machines back).  ``label``
    names the blast radius for reports (``"rack-2"``, ``"cascade"``).
    """

    at: float
    machines: tuple[int, ...]
    downtime: float = math.inf
    label: str = "failure"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"action time must be >= 0, got {self.at}")
        if not self.machines:
            raise ValueError("action must name at least one machine")
        if not self.downtime > 0:
            raise ValueError(f"downtime must be > 0, got {self.downtime}")

    def as_dict(self) -> dict[str, Any]:
        """JSON form for manifests and reports."""
        return {
            "at": self.at,
            "machines": list(self.machines),
            "downtime": None if math.isinf(self.downtime) else self.downtime,
            "label": self.label,
        }


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered set of :class:`ChaosAction`\\ s over one soak run.

    Build with the topology-aware constructors (:meth:`rack`,
    :meth:`zone`, :meth:`cascade`, :meth:`flap`), bridge from a sampled
    :class:`~repro.faults.plan.FaultPlan` (:meth:`from_plan`), or parse
    the CLI grammar (:meth:`parse`).  Schedules compose with
    :meth:`merge`; actions are kept sorted by time.
    """

    actions: tuple[ChaosAction, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.actions, key=lambda a: (a.at, a.machines)))
        object.__setattr__(self, "actions", ordered)

    def merge(self, other: "ChaosSchedule") -> "ChaosSchedule":
        """The union of two schedules (overlaps are the scheduler's to union)."""
        return ChaosSchedule(self.actions + other.actions)

    def as_dicts(self) -> list[dict[str, Any]]:
        """JSON form for manifests and reports."""
        return [a.as_dict() for a in self.actions]

    # -- constructors ------------------------------------------------------
    @classmethod
    def rack(
        cls,
        topology: FleetTopology,
        rack: int = 0,
        *,
        at: float = 0.0,
        downtime: float = math.inf,
    ) -> "ChaosSchedule":
        """One whole rack fails together."""
        return cls(
            (ChaosAction(at, topology.rack_members(rack), downtime, f"rack-{rack}"),)
        )

    @classmethod
    def zone(
        cls,
        topology: FleetTopology,
        zone: int = 0,
        *,
        at: float = 0.0,
        downtime: float = math.inf,
    ) -> "ChaosSchedule":
        """One whole zone fails together."""
        return cls(
            (ChaosAction(at, topology.zone_members(zone), downtime, f"zone-{zone}"),)
        )

    @classmethod
    def cascade(
        cls,
        topology: FleetTopology,
        *,
        at: float = 0.0,
        lag: float = 2.0,
        racks: int = 2,
        first: int = 0,
        downtime: float = math.inf,
    ) -> "ChaosSchedule":
        """Racks fall in sequence starting at ``first``, one every ``lag``."""
        if not 1 <= racks <= topology.racks:
            raise ValueError(f"racks must be in 1..{topology.racks}, got {racks}")
        if lag < 0:
            raise ValueError(f"lag must be >= 0, got {lag}")
        actions = []
        for step in range(racks):
            rack = (first + step) % topology.racks
            actions.append(
                ChaosAction(
                    at + step * lag,
                    topology.rack_members(rack),
                    downtime,
                    f"cascade-rack-{rack}",
                )
            )
        return cls(tuple(actions))

    @classmethod
    def flap(
        cls,
        topology: FleetTopology,
        *,
        machines: int = 1,
        at: float = 0.0,
        period: float = 4.0,
        down: float = 1.0,
        cycles: int = 3,
    ) -> "ChaosSchedule":
        """The first ``machines`` ids crash/rejoin on a cycle (health-policy bait)."""
        if not 1 <= machines <= topology.m:
            raise ValueError(f"machines must be in 1..{topology.m}, got {machines}")
        if not 0 < down < period:
            raise ValueError(f"need 0 < down < period, got {down}/{period}")
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        actions = []
        for machine in range(machines):
            for cycle in range(cycles):
                actions.append(
                    ChaosAction(
                        at + cycle * period, (machine,), down, f"flap-{machine}"
                    )
                )
        return cls(tuple(actions))

    @classmethod
    def from_plan(cls, plan: FaultPlan, *, label: str = "plan") -> "ChaosSchedule":
        """Bridge a (possibly sampled) kernel fault plan into the service world."""
        return cls(
            tuple(
                ChaosAction(at, (machine,), downtime, label)
                for at, machine, downtime in plan.crashes()
            )
        )

    @classmethod
    def parse(cls, spec: str, topology: FleetTopology) -> "ChaosSchedule":
        """The CLI grammar: ``kind:key=value,...``.

        Kinds and their keys (all values numeric; ``downtime`` omitted
        means permanent)::

            none
            rack:at=8,downtime=10[,rack=0]
            zone:at=8,downtime=10[,zone=0]
            cascade:at=8,lag=2,racks=2[,first=0][,downtime=10]
            flap:at=1,period=4,down=1[,machines=1][,cycles=3]

        Deterministic by construction — no sampling, so the same spec
        always yields the same schedule.
        """
        kind, _, raw = spec.partition(":")
        kind = kind.strip().lower()
        params: dict[str, float] = {}
        if raw.strip():
            for item in raw.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                if not sep or not key:
                    raise ValueError(f"malformed chaos parameter {item!r} in {spec!r}")
                try:
                    params[key] = float(value)
                except ValueError:
                    raise ValueError(
                        f"chaos parameter {key!r} must be numeric, got {value!r}"
                    ) from None
        known: dict[str, tuple[str, ...]] = {
            "none": (),
            "rack": ("at", "downtime", "rack"),
            "zone": ("at", "downtime", "zone"),
            "cascade": ("at", "downtime", "lag", "racks", "first"),
            "flap": ("at", "period", "down", "machines", "cycles"),
        }
        if kind not in known:
            raise ValueError(
                f"unknown chaos kind {kind!r} (known: {', '.join(sorted(known))})"
            )
        unknown = set(params) - set(known[kind])
        if unknown:
            raise ValueError(
                f"unknown parameters {sorted(unknown)} for chaos kind {kind!r}"
            )
        at = params.get("at", 0.0)
        downtime = params.get("downtime", math.inf)
        if kind == "none":
            return cls()
        if kind == "rack":
            return cls.rack(
                topology, int(params.get("rack", 0)), at=at, downtime=downtime
            )
        if kind == "zone":
            return cls.zone(
                topology, int(params.get("zone", 0)), at=at, downtime=downtime
            )
        if kind == "cascade":
            return cls.cascade(
                topology,
                at=at,
                lag=params.get("lag", 2.0),
                racks=int(params.get("racks", 2)),
                first=int(params.get("first", 0)),
                downtime=downtime,
            )
        return cls.flap(
            topology,
            machines=int(params.get("machines", 1)),
            at=at,
            period=params.get("period", 4.0),
            down=params.get("down", 1.0),
            cycles=int(params.get("cycles", 3)),
        )


@dataclass(frozen=True)
class SoakConfig:
    """Everything one soak run depends on — frozen, so runs are replayable.

    ``duration`` bounds the *arrival window* in virtual seconds (the run
    itself continues until the queue drains); ``rate`` is the mean
    Poisson arrival rate; estimates are log-uniform on ``[est_low,
    est_high]``, the stochastic suite's default shape.  ``objectives``
    are :mod:`repro.obs.slo` lines evaluated over the run's scalars
    (``min_availability``, ``tasks_done``, ``stranded``, ``shed``,
    ``replaced``, ``restarts``, ``inflation``, ...).
    """

    topology: FleetTopology = FleetTopology()
    strategy: str = "ls_group[k=2]"
    alpha: float = 1.5
    model: str = "log_uniform"
    seed: int = 0
    duration: float = 30.0
    rate: float = 4.0
    est_low: float = 0.5
    est_high: float = 4.0
    tenants: int = 8
    sample_every: float = 1.0
    schedule: ChaosSchedule = ChaosSchedule()
    objectives: tuple[str, ...] = (
        "min_availability >= 0.5",
        "stranded == 0",
        "tasks_done >= 1",
    )

    def __post_init__(self) -> None:
        if self.model not in DURATION_MODELS:
            raise ValueError(f"unknown duration model {self.model!r}")
        if not self.duration > 0 or not self.rate > 0:
            raise ValueError("duration and rate must both be > 0")
        if not (0 < self.est_low <= self.est_high):
            raise ValueError(
                f"need 0 < est_low <= est_high, got [{self.est_low}, {self.est_high}]"
            )
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if not self.sample_every > 0:
            raise ValueError(f"sample_every must be > 0, got {self.sample_every}")
        for action in self.schedule.actions:
            for machine in action.machines:
                if not 0 <= machine < self.topology.m:
                    raise ValueError(
                        f"chaos action targets machine {machine} outside the "
                        f"{self.topology.m}-machine fleet"
                    )

    def as_dict(self) -> dict[str, Any]:
        """JSON form for manifests and reports."""
        return {
            "topology": self.topology.as_dict(),
            "strategy": self.strategy,
            "alpha": self.alpha,
            "model": self.model,
            "seed": self.seed,
            "duration": self.duration,
            "rate": self.rate,
            "est_low": self.est_low,
            "est_high": self.est_high,
            "tenants": self.tenants,
            "sample_every": self.sample_every,
            "chaos": self.schedule.as_dicts(),
            "objectives": list(self.objectives),
        }


@dataclass
class SoakReport:
    """One soak run's full result set; ``write_artifacts`` persists it."""

    config: dict[str, Any]
    samples: list[dict[str, Any]]
    summary: dict[str, Any]
    digest: str
    slo: Any
    live: bool = False
    transitions: list[dict[str, Any]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """The SLO verdict (all objectives met)."""
        return bool(self.slo.passed)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable view (non-finite floats become ``null``)."""
        return _json_safe(
            {
                "config": self.config,
                "live": self.live,
                "summary": self.summary,
                "decision_digest": self.digest,
                "slo": self.slo.as_dict(),
                "transitions": self.transitions,
                "samples": self.samples,
            }
        )

    def write_artifacts(self, out_prefix: str | Path) -> dict[str, str]:
        """Write ``<prefix>_curve.csv`` and ``<prefix>_report.json`` + sidecars.

        Each file gets a ``*.manifest.json`` provenance sidecar (the
        repo-wide bench convention), and the curve rows are exactly
        :attr:`samples` — byte-identical across same-seed virtual runs.
        """
        prefix = Path(out_prefix)
        prefix.parent.mkdir(parents=True, exist_ok=True)
        curve = Path(f"{prefix}_curve.csv")
        write_csv(curve, self.samples)
        report = Path(f"{prefix}_report.json")
        report.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        params = _json_safe(
            {
                "config": self.config,
                "summary": self.summary,
                "decision_digest": self.digest,
                "live": self.live,
            }
        )
        for path in (curve, report):
            run_manifest("chaos", path.name, params=params).write(
                path.with_suffix(".manifest.json")
            )
        return {"curve": str(curve), "report": str(report)}


def capacity_bound(m: int, schedule: ChaosSchedule, work: float) -> float:
    """The capacity lower bound :math:`T^\\*` for total work on a faulty fleet.

    No scheduler can finish ``work`` machine-seconds before the integral
    of live-machine count catches up with it: :math:`T^\\* = \\min\\{T :
    \\int_0^T (m - \\mathrm{down}(t))\\,dt \\ge W\\}`.  Outage windows come
    from the schedule (per-machine unions, exactly the scheduler's
    ``down_until`` discipline); returns ``math.inf`` when the fleet dies
    permanently with work remaining.
    """
    if work <= 0:
        return 0.0
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    per_machine: dict[int, list[tuple[float, float]]] = {}
    for action in schedule.actions:
        end = action.at + action.downtime
        for machine in action.machines:
            per_machine.setdefault(machine, []).append((action.at, end))
    deltas: list[tuple[float, int]] = []
    for intervals in per_machine.values():
        intervals.sort()
        merged: list[list[float]] = []
        for start, end in intervals:
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        for start, end in merged:
            deltas.append((start, +1))
            if math.isfinite(end):
                deltas.append((end, -1))
    deltas.sort()
    t, done, down, i = 0.0, 0.0, 0, 0
    while True:
        rate = m - down
        t_next = deltas[i][0] if i < len(deltas) else math.inf
        if rate > 0:
            need = (work - done) / rate
            if t + need <= t_next:
                return t + need
            done += rate * (t_next - t)
        elif t_next == math.inf:
            return math.inf
        t = t_next
        while i < len(deltas) and deltas[i][0] == t:
            down += deltas[i][1]
            i += 1


def _make_arrivals(config: SoakConfig) -> list[tuple[float, str, float, str]]:
    """The seeded Poisson arrival stream: ``(t, tenant, estimate, key)``.

    One generator keyed ``[seed, _ARRIVAL_STREAM]`` draws inter-arrival
    gaps and estimates in lockstep, so the stream is a pure function of
    the config — the first half of the determinism contract (durations
    are the scheduler's ``(seed, tid)`` draws, the second half).
    """
    rng = np.random.default_rng([config.seed, _ARRIVAL_STREAM])
    ratio = config.est_high / config.est_low
    arrivals: list[tuple[float, str, float, str]] = []
    t, i = 0.0, 0
    while True:
        t += float(rng.exponential(1.0 / config.rate))
        if t > config.duration:
            return arrivals
        estimate = float(config.est_low * ratio ** rng.random())
        arrivals.append((t, f"tenant-{i % config.tenants}", estimate, f"soak-{i}"))
        i += 1


def _sample_row(t: float, sched: ServiceScheduler) -> dict[str, Any]:
    return {
        "t": round(t, 9),
        "availability": sched.availability(),
        "machines_down": len(sched.down),
        "degraded_groups": len(sched.degraded_groups()),
        "queued": sched.queued,
        "running": len(sched.busy),
        "done": sched.completed,
        "admitted": len(sched.records),
        "shed": sched.shed,
        "replaced": sched.replaced,
    }


def _run_virtual(
    config: SoakConfig,
    arrivals: list[tuple[float, str, float, str]],
    schedule: ChaosSchedule,
) -> tuple[ServiceScheduler, list[dict[str, Any]]]:
    """One virtual-time arm: inject, admit, pump, sample, drain."""
    sched = ServiceScheduler(
        config.strategy,
        m=config.topology.m,
        alpha=config.alpha,
        model=config.model,
        seed=config.seed,
        health=HealthTracker(),
    )
    for action in schedule.actions:
        sched.inject_failure(action.machines, at=action.at, downtime=action.downtime)
    samples: list[dict[str, Any]] = []
    grid = {"next": 0.0}

    def emit_until(t: float) -> None:
        # Sample points strictly before t see the state after every event
        # strictly before them — piecewise-constant sampling with the
        # same same-instant discipline as the event queue.
        while grid["next"] < t - 1e-12:
            samples.append(_sample_row(grid["next"], sched))
            grid["next"] += config.sample_every

    def pump(until: float) -> None:
        while sched.queue and sched.queue.peek().time <= until:
            emit_until(sched.queue.peek().time)
            sched.step()

    for t, tenant, estimate, key in arrivals:
        pump(t)
        emit_until(t)
        sched.clock = max(sched.clock, t)
        try:
            sched.admit(tenant, estimate, key=key)
        except AdmissionError as exc:
            if exc.code != "degraded":
                raise
    sched.begin_drain()
    pump(math.inf)
    emit_until(sched.clock)
    samples.append(_sample_row(sched.clock, sched))
    return sched, samples


def _decision_digest(sched: ServiceScheduler) -> str:
    """SHA-256 over every placement decision, in admission order."""
    digest = hashlib.sha256()
    for r in sched.records:
        digest.update(
            f"{r.tid}|{r.tenant}|{r.key}|{r.group}|{r.estimate!r}|{r.machines};".encode(
                "ascii"
            )
        )
    return digest.hexdigest()


def _assemble(
    config: SoakConfig,
    sched: ServiceScheduler,
    samples: list[dict[str, Any]],
    control: ServiceScheduler,
    *,
    live: bool,
    extra_summary: dict[str, Any] | None = None,
) -> SoakReport:
    """Fold one run (plus its control arm) into a :class:`SoakReport`."""
    work = sum(r.actual for r in control.records if r.actual is not None)
    control_makespan = control.clock
    makespan = sched.clock
    bound = capacity_bound(config.topology.m, config.schedule, work)
    inflation = makespan / control_makespan if control_makespan > 0 else math.nan
    availabilities = [row["availability"] for row in samples]
    stranded = sched.queued + len(sched.busy)
    restarts = sum(r.restarts for r in sched.records)
    summary: dict[str, Any] = {
        "makespan": makespan,
        "control_makespan": control_makespan,
        "inflation": inflation,
        "capacity_bound": bound,
        "bound_inflation": bound / control_makespan if control_makespan > 0 else math.nan,
        "inflation_vs_bound": makespan / bound if bound > 0 else math.nan,
        "work": work,
        "tasks_admitted": len(sched.records),
        "tasks_done": sched.completed,
        "deduplicated": sched.deduplicated,
        "stranded": stranded,
        "shed": sched.shed,
        "replaced": sched.replaced,
        "restarts": restarts,
        "machine_failures": sched.machine_failures,
        "machine_recoveries": sched.machine_recoveries,
        "min_availability": min(availabilities) if availabilities else math.nan,
        "mean_availability": (
            sum(availabilities) / len(availabilities) if availabilities else math.nan
        ),
        "diversity_rack": diversity_score(
            config.topology, sched.placer.groups, level="rack"
        ),
        "diversity_zone": diversity_score(
            config.topology, sched.placer.groups, level="zone"
        ),
        "policy": sched.health.counts() if sched.health is not None else {},
    }
    if extra_summary:
        summary.update(extra_summary)
    extras = {
        key: float(value)
        for key, value in summary.items()
        if isinstance(value, (int, float)) and math.isfinite(float(value))
    }
    slo = evaluate_slo(list(config.objectives), extras=extras)
    transitions = (
        [t.as_dict() for t in sched.health.transitions]
        if sched.health is not None
        else []
    )
    return SoakReport(
        config=config.as_dict(),
        samples=samples,
        summary=summary,
        digest=_decision_digest(sched),
        slo=slo,
        live=live,
        transitions=transitions,
    )


def run_soak(config: SoakConfig) -> SoakReport:
    """Run one virtual-time soak: chaos arm + no-fault control arm.

    Fully deterministic: the arrival stream, duration draws, fault
    schedule and sampling grid are all pure functions of ``config``, so
    two runs with the same config produce byte-identical curve rows and
    the same decision digest.
    """
    tracer = get_tracer()
    if tracer.enabled:
        tracer.manifest(run_manifest("chaos", "soak", params=config.as_dict()))
    arrivals = _make_arrivals(config)
    with tracer.span("chaos.soak", arrivals=len(arrivals)):
        sched, samples = _run_virtual(config, arrivals, config.schedule)
    control, _ = _run_virtual(
        replace(config, schedule=ChaosSchedule()), arrivals, ChaosSchedule()
    )
    return _assemble(config, sched, samples, control, live=False)


def run_soak_live(
    config: SoakConfig,
    *,
    socket_path: str | None = None,
    port: int | None = None,
    pace: float = 1.0,
    bulkhead_capacity: int | None = None,
    breaker: bool = False,
) -> SoakReport:
    """Run one soak end-to-end through the real daemon (wall-clock pacing).

    Spins an in-process :class:`~repro.service.daemon.ServiceDaemon` on
    ``socket_path`` (or loopback TCP), submits the same seeded arrival
    stream over HTTP, posts chaos actions to ``POST /v1/chaos`` when
    their (virtual) time comes, and samples ``GET /v1/health`` on the
    grid.  ``pace`` is virtual seconds per wall second — the whole run
    takes about ``duration / pace`` wall seconds plus drain.  The
    decision digest stays seed-stable; sample *timing* follows the wall
    clock, which is the documented difference from :func:`run_soak`.
    """
    if pace <= 0:
        raise ValueError(f"pace must be > 0, got {pace}")
    return asyncio.run(
        _soak_live(config, socket_path, port, pace, bulkhead_capacity, breaker)
    )


async def _soak_live(
    config: SoakConfig,
    socket_path: str | None,
    port: int | None,
    pace: float,
    bulkhead_capacity: int | None,
    breaker: bool,
) -> SoakReport:
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.daemon import ServiceDaemon

    sched = ServiceScheduler(
        config.strategy,
        m=config.topology.m,
        alpha=config.alpha,
        model=config.model,
        seed=config.seed,
        health=HealthTracker(),
    )
    daemon = ServiceDaemon(
        sched,
        port=None if socket_path else (port if port is not None else 0),
        socket_path=socket_path,
        pace=pace,
        breaker=CircuitBreaker() if breaker else None,
        bulkhead=Bulkhead(bulkhead_capacity) if bulkhead_capacity else None,
    )
    server = asyncio.create_task(daemon.serve())
    await daemon.started.wait()
    arrivals = _make_arrivals(config)
    pending = list(config.schedule.actions)
    samples: list[dict[str, Any]] = []
    errors = 0
    shed_client = 0
    client_kw: dict[str, Any] = (
        {"socket_path": socket_path} if socket_path else {"port": daemon.port}
    )
    loop = asyncio.get_running_loop()
    try:
        async with ServiceClient(**client_kw) as client:
            start = loop.time()
            next_sample = 0.0
            idx = 0
            horizon = config.duration / pace
            while True:
                now = loop.time() - start
                while pending and pending[0].at / pace <= now:
                    action = pending.pop(0)
                    downtime = (
                        None if math.isinf(action.downtime) else action.downtime
                    )
                    try:
                        await client.chaos(
                            fail=list(action.machines), downtime=downtime
                        )
                    except (ServiceError, ConnectionError, OSError):
                        errors += 1
                while idx < len(arrivals) and arrivals[idx][0] / pace <= now:
                    _, tenant, estimate, key = arrivals[idx]
                    idx += 1
                    try:
                        await client.submit(tenant, estimate, key=key)
                    except ServiceError as exc:
                        if exc.code in ("degraded", "overloaded", "breaker_open"):
                            shed_client += 1
                        else:
                            errors += 1
                    except (ConnectionError, OSError):
                        errors += 1
                if now >= next_sample:
                    try:
                        health = await client.health()
                        samples.append(
                            {
                                "t": round(health["clock"], 9),
                                "availability": health["availability"],
                                "machines_down": len(health["down"]),
                                "degraded_groups": len(health["degraded_groups"]),
                                "queued": health["queued"],
                                "running": health["running"],
                                "done": health["done"],
                                "admitted": health["admitted"],
                                "shed": health["shed"],
                                "replaced": health["replaced"],
                            }
                        )
                    except (ServiceError, ConnectionError, OSError):
                        errors += 1
                    next_sample += config.sample_every / pace
                if idx >= len(arrivals) and not pending and now >= horizon:
                    break
                await asyncio.sleep(0.02)
            await client.shutdown()
    finally:
        daemon.stop()
        await server
    samples.append(_sample_row(sched.clock, sched))
    control, _ = _run_virtual(
        replace(config, schedule=ChaosSchedule()), arrivals, ChaosSchedule()
    )
    return _assemble(
        config,
        sched,
        samples,
        control,
        live=True,
        extra_summary={"errors": errors, "shed_client": shed_client},
    )


def _json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats with ``None`` (strict JSON)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value
