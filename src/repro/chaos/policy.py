"""Health policies, circuit breakers, and bulkheads for the service.

The declarative state machine follows DIRAC's ResourceStatusSystem
idiom: an entity (a machine, a rack) moves through **healthy → suspect →
quarantined → recovered → healthy**, transitions are decided by a frozen
:class:`HealthPolicy` (thresholds, cooldowns), and *actions* — arbitrary
callables — fire on state entry, so operational reactions (stop
dispatching to a flapper, page someone, lift a quarantine) are plugged
in declaratively instead of scattered through the scheduler.  All time
is the caller's: every observation carries an explicit ``at`` timestamp,
so the tracker runs identically in virtual soak time and wall time.

The admission-path guards are the two classic resilience patterns:

* :class:`CircuitBreaker` — closed → open after a failure burst, then
  half-open probes after a cooldown; while open, admissions shed
  immediately instead of piling onto a struggling scheduler;
* :class:`Bulkhead` — a hard cap on in-flight work, so one tenant's
  flood cannot exhaust the whole daemon (load shedding with a 503, not
  an OOM).

Both are clock-explicit and allocation-free on the hot path; the daemon
wires them in front of :meth:`~repro.service.scheduler.ServiceScheduler.
admit` (see ``docs/chaos.md`` for the grammar and wiring).
"""

from __future__ import annotations

import enum
import math
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.obs import get_tracer

__all__ = [
    "HealthState",
    "HealthPolicy",
    "HealthTracker",
    "Transition",
    "BreakerState",
    "CircuitBreaker",
    "Bulkhead",
]


class HealthState(str, enum.Enum):
    """The four health states an entity moves through.

    ``RECOVERED`` is probation: the entity came back from quarantine but
    must string together successes before it counts as ``HEALTHY`` again
    — one failure sends it straight back to ``QUARANTINED``.
    """

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"
    RECOVERED = "recovered"


@dataclass(frozen=True)
class Transition:
    """One state change: who, from, to, when, and why."""

    entity: Hashable
    old: HealthState
    new: HealthState
    at: float
    reason: str

    def as_dict(self) -> dict[str, Any]:
        """JSON form for reports and traces."""
        return {
            "entity": str(self.entity),
            "old": self.old.value,
            "new": self.new.value,
            "at": self.at,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class HealthPolicy:
    """The declarative thresholds driving :class:`HealthTracker`.

    Parameters
    ----------
    suspect_after:
        Consecutive failures that turn ``HEALTHY`` into ``SUSPECT``.
    quarantine_after:
        Consecutive failures *while suspect* that escalate to
        ``QUARANTINED`` (state entry resets the counters, so the total
        run of failures to quarantine is ``suspect_after +
        quarantine_after``).
    probation_after:
        Seconds an entity sits in ``QUARANTINED`` before
        :meth:`HealthTracker.tick` paroles it to ``RECOVERED``.
    recover_after:
        Consecutive successes that promote ``SUSPECT`` or ``RECOVERED``
        back to ``HEALTHY``.
    """

    suspect_after: int = 1
    quarantine_after: int = 3
    probation_after: float = 10.0
    recover_after: int = 2

    def __post_init__(self) -> None:
        if self.suspect_after < 1 or self.recover_after < 1 or self.quarantine_after < 1:
            raise ValueError(
                "suspect_after, quarantine_after and recover_after must all be >= 1"
            )
        if not self.probation_after > 0:
            raise ValueError("probation_after must be > 0")


class _EntityHealth:
    """Mutable per-entity counters (internal to the tracker)."""

    __slots__ = ("state", "failures", "successes", "since")

    def __init__(self) -> None:
        self.state = HealthState.HEALTHY
        self.failures = 0
        self.successes = 0
        self.since = 0.0


Action = Callable[[Transition], None]


class HealthTracker:
    """Drives the state machine over observations; fires actions on entry.

    Parameters
    ----------
    policy:
        The :class:`HealthPolicy` thresholds.
    actions:
        Optional ``{HealthState: [callable, ...]}`` mapping; each
        callable receives the :class:`Transition` when an entity *enters*
        that state.  Exceptions from actions propagate — a broken action
        is a bug, not a health event.

    The tracker never invents time: :meth:`observe_success`,
    :meth:`observe_failure` and :meth:`tick` all take ``at`` explicitly,
    which is what keeps soak runs deterministic.
    """

    def __init__(
        self,
        policy: HealthPolicy | None = None,
        *,
        actions: Mapping[HealthState, list[Action]] | None = None,
    ) -> None:
        self.policy = policy or HealthPolicy()
        self.actions: dict[HealthState, list[Action]] = {
            state: list((actions or {}).get(state, ())) for state in HealthState
        }
        self.transitions: list[Transition] = []
        self._entities: dict[Hashable, _EntityHealth] = {}

    def on_enter(self, state: HealthState, action: Action) -> None:
        """Register ``action`` to fire whenever an entity enters ``state``."""
        self.actions[state].append(action)

    # -- observations ------------------------------------------------------
    def observe_failure(self, entity: Hashable, at: float, *, reason: str = "failure") -> HealthState:
        """Record one failure for ``entity`` at time ``at``; returns its state."""
        health = self._entities.setdefault(entity, _EntityHealth())
        health.failures += 1
        health.successes = 0
        policy = self.policy
        if health.state is HealthState.HEALTHY and health.failures >= policy.suspect_after:
            self._move(entity, health, HealthState.SUSPECT, at, reason)
        if (
            health.state is HealthState.SUSPECT
            and health.failures >= policy.quarantine_after
        ):
            self._move(entity, health, HealthState.QUARANTINED, at, reason)
        elif health.state is HealthState.RECOVERED:
            self._move(entity, health, HealthState.QUARANTINED, at, f"{reason} during probation")
        elif health.state is HealthState.QUARANTINED:
            health.since = at  # extend the quarantine window
        return health.state

    def observe_success(self, entity: Hashable, at: float) -> HealthState:
        """Record one success for ``entity`` at time ``at``; returns its state."""
        health = self._entities.setdefault(entity, _EntityHealth())
        health.successes += 1
        health.failures = 0
        if (
            health.state in (HealthState.SUSPECT, HealthState.RECOVERED)
            and health.successes >= self.policy.recover_after
        ):
            self._move(entity, health, HealthState.HEALTHY, at, "recovered")
        return health.state

    def observe_completion(self, entity: Hashable, at: float) -> HealthState:
        """Workload progress on ``entity`` — a success only during probation.

        Completions by a ``SUSPECT`` machine do not erase crash history
        (finishing a task is not evidence a machine stopped crashing —
        that is what lets a flapper accumulate to quarantine), but a
        ``RECOVERED`` machine's completions are exactly the probation
        evidence the policy wants.
        """
        health = self._entities.get(entity)
        if health is not None and health.state is HealthState.RECOVERED:
            return self.observe_success(entity, at)
        return health.state if health else HealthState.HEALTHY

    def tick(self, at: float) -> list[Transition]:
        """Advance time-based transitions (quarantine → probation) up to ``at``."""
        paroled: list[Transition] = []
        for entity, health in self._entities.items():
            if (
                health.state is HealthState.QUARANTINED
                and at - health.since >= self.policy.probation_after
            ):
                self._move(entity, health, HealthState.RECOVERED, at, "probation")
                paroled.append(self.transitions[-1])
        return paroled

    def _move(
        self,
        entity: Hashable,
        health: _EntityHealth,
        new: HealthState,
        at: float,
        reason: str,
    ) -> None:
        transition = Transition(entity, health.state, new, at, reason)
        health.state = new
        health.since = at
        health.failures = 0
        health.successes = 0
        self.transitions.append(transition)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("policy.transitions")
            tracer.event(
                "policy.transition",
                entity=str(entity),
                old=transition.old.value,
                new=new.value,
                t=at,
            )
            tracer.registry.gauge("policy.quarantined").set(
                float(sum(1 for h in self._entities.values() if h.state is HealthState.QUARANTINED))
            )
        for action in self.actions[new]:
            action(transition)

    # -- queries -----------------------------------------------------------
    def state(self, entity: Hashable) -> HealthState:
        """Current state of ``entity`` (unknown entities are healthy)."""
        health = self._entities.get(entity)
        return health.state if health else HealthState.HEALTHY

    def states(self) -> dict[Hashable, HealthState]:
        """Every tracked entity's current state."""
        return {entity: h.state for entity, h in self._entities.items()}

    def counts(self) -> dict[str, int]:
        """Entity count per state (report material)."""
        out = {state.value: 0 for state in HealthState}
        for health in self._entities.values():
            out[health.state.value] += 1
        return out


class BreakerState(str, enum.Enum):
    """Circuit-breaker states: closed (normal), open (shedding), half-open."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Consecutive-failure circuit breaker with explicit clocks.

    ``allow(now)`` gates the protected call: ``True`` in ``CLOSED``,
    ``False`` in ``OPEN`` until ``cooldown`` has elapsed, then up to
    ``half_open_probes`` trial calls in ``HALF_OPEN``.  A probe success
    closes the breaker; any failure reopens it and restarts the
    cooldown.  All methods take ``now`` explicitly so the breaker works
    in virtual soak time and wall time alike.
    """

    failure_threshold: int = 5
    cooldown: float = 5.0
    half_open_probes: int = 1
    state: BreakerState = BreakerState.CLOSED
    opened: int = 0
    rejected: int = 0
    _failures: int = field(default=0, repr=False)
    _opened_at: float = field(default=-math.inf, repr=False)
    _probes: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1 or self.half_open_probes < 1:
            raise ValueError("failure_threshold and half_open_probes must be >= 1")
        if not self.cooldown > 0:
            raise ValueError("cooldown must be > 0")

    def allow(self, now: float) -> bool:
        """Whether a call may proceed at time ``now`` (counts rejections)."""
        if self.state is BreakerState.OPEN:
            if now - self._opened_at >= self.cooldown:
                self.state = BreakerState.HALF_OPEN
                self._probes = 0
            else:
                self.rejected += 1
                return False
        if self.state is BreakerState.HALF_OPEN:
            if self._probes >= self.half_open_probes:
                self.rejected += 1
                return False
            self._probes += 1
        return True

    def record_success(self, now: float) -> None:
        """A protected call succeeded at ``now``."""
        self._failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.CLOSED
        del now  # accepted for symmetry; closing needs no timestamp

    def record_failure(self, now: float) -> None:
        """A protected call failed at ``now``; may trip the breaker."""
        self._failures += 1
        if self.state is BreakerState.HALF_OPEN or (
            self.state is BreakerState.CLOSED
            and self._failures >= self.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self._opened_at = now
            self._failures = 0
            self.opened += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.count("policy.breaker_opened")

    def as_dict(self) -> dict[str, Any]:
        """JSON form for status endpoints and reports."""
        return {
            "state": self.state.value,
            "opened": self.opened,
            "rejected": self.rejected,
            "failure_threshold": self.failure_threshold,
            "cooldown": self.cooldown,
        }


@dataclass
class Bulkhead:
    """A hard in-flight capacity cap: acquire before work, release after.

    The isolation pattern: the daemon sizes one bulkhead for its
    admission queue, so a flood sheds with a 503 once ``capacity`` tasks
    are in flight instead of growing the queue without bound.
    """

    capacity: int
    in_flight: int = 0
    rejected: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"bulkhead capacity must be >= 1, got {self.capacity}")

    def try_acquire(self) -> bool:
        """Take one slot if available; ``False`` (and a counter) if full."""
        if self.in_flight >= self.capacity:
            self._reject()
            return False
        self.in_flight += 1
        return True

    def check(self, in_flight: int) -> bool:
        """Decision-only form for externally-tracked occupancy.

        The daemon's queue depth already lives in the scheduler, so the
        bulkhead only has to answer "is there room?" — ``False`` counts a
        rejection exactly like :meth:`try_acquire`.
        """
        self.in_flight = int(in_flight)
        if in_flight >= self.capacity:
            self._reject()
            return False
        return True

    def _reject(self) -> None:
        self.rejected += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("policy.bulkhead_rejected")

    def release(self) -> None:
        """Return one slot (completion or failure of the admitted work)."""
        if self.in_flight <= 0:
            raise RuntimeError("bulkhead release without a matching acquire")
        self.in_flight -= 1

    def as_dict(self) -> dict[str, Any]:
        """JSON form for status endpoints and reports."""
        return {
            "capacity": self.capacity,
            "in_flight": self.in_flight,
            "rejected": self.rejected,
        }
