"""The fleet tree and the correlated faults that follow its edges.

:class:`FleetTopology` arranges machine ids ``0..m-1`` into a three-level
tree — machines → racks → zones with configurable fan-out — the smallest
structure that distinguishes the failure modes the paper's independence
assumption cannot express: a rack shares a top-of-rack switch and a power
feed, a zone shares cooling and a supply substation, so real outages take
*subtrees*, not uniform samples.

Placement groups :math:`M_j` (contiguous machine ranges, see
:class:`~repro.service.placement.OnlinePlacer`) are mapped onto the tree
so replica diversity is measurable: :func:`diversity_score` reports how
well a placement's replica sets spread over racks, which is exactly what
decides survival under a rack-sized blast radius.

The fault generators extend :mod:`repro.faults` with topology-aware
shapes — all frozen, all seeded through the caller's generator, so
scenario sets stay reproducible by construction:

* :func:`rack_failure_plan` / :func:`zone_failure_plan` — deterministic
  blast-radius plans for a named subtree;
* :class:`ZoneOutage` — a sampled whole-zone loss;
* :class:`CascadingRackFailure` — rack :math:`r` fails, then its
  neighbours follow at a fixed lag (the correlated cascade a shared
  cooling loop produces);
* :class:`FlappingMachines` — machines that crash and rejoin on a cycle,
  the pathological input for health policies (quarantine exists to stop
  flappers from eating restarts).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.faults.models import FaultModel
from repro.faults.plan import CorrelatedFailure, CrashRecover, Fault, FaultPlan

__all__ = [
    "FleetTopology",
    "diversity_score",
    "rack_failure_plan",
    "zone_failure_plan",
    "ZoneOutage",
    "CascadingRackFailure",
    "FlappingMachines",
]


@dataclass(frozen=True)
class FleetTopology:
    """A machines → racks → zones tree over machine ids ``0..m-1``.

    Machine ids are assigned depth-first: rack ``r`` holds the contiguous
    block ``[r*machines_per_rack, (r+1)*machines_per_rack)`` and zone
    ``z`` holds ``racks_per_zone`` consecutive racks.  Contiguity matches
    the service's placement groups (also contiguous ranges), so mapping a
    group onto the tree is pure arithmetic.

    Parameters
    ----------
    zones:
        Number of zones (≥ 1).
    racks_per_zone:
        Racks per zone (≥ 1).
    machines_per_rack:
        Machines per rack (≥ 1).
    """

    zones: int = 1
    racks_per_zone: int = 4
    machines_per_rack: int = 2

    def __post_init__(self) -> None:
        if self.zones < 1 or self.racks_per_zone < 1 or self.machines_per_rack < 1:
            raise ValueError(
                "zones, racks_per_zone and machines_per_rack must all be >= 1, "
                f"got {self.zones}/{self.racks_per_zone}/{self.machines_per_rack}"
            )

    # -- shape -------------------------------------------------------------
    @property
    def racks(self) -> int:
        """Total rack count."""
        return self.zones * self.racks_per_zone

    @property
    def m(self) -> int:
        """Total machine count."""
        return self.racks * self.machines_per_rack

    # -- tree lookups ------------------------------------------------------
    def rack_of(self, machine: int) -> int:
        """The rack holding ``machine``."""
        self._check_machine(machine)
        return machine // self.machines_per_rack

    def zone_of(self, machine: int) -> int:
        """The zone holding ``machine``."""
        return self.rack_of(machine) // self.racks_per_zone

    def rack_members(self, rack: int) -> tuple[int, ...]:
        """Machine ids in ``rack`` (contiguous, ascending)."""
        if not 0 <= rack < self.racks:
            raise ValueError(f"rack {rack} outside 0..{self.racks - 1}")
        lo = rack * self.machines_per_rack
        return tuple(range(lo, lo + self.machines_per_rack))

    def zone_members(self, zone: int) -> tuple[int, ...]:
        """Machine ids in ``zone`` (contiguous, ascending)."""
        if not 0 <= zone < self.zones:
            raise ValueError(f"zone {zone} outside 0..{self.zones - 1}")
        lo = zone * self.racks_per_zone * self.machines_per_rack
        return tuple(range(lo, lo + self.racks_per_zone * self.machines_per_rack))

    def _check_machine(self, machine: int) -> None:
        if not 0 <= machine < self.m:
            raise ValueError(f"machine {machine} outside 0..{self.m - 1}")

    # -- diversity ---------------------------------------------------------
    def racks_spanned(self, machines: Iterable[int]) -> int:
        """Distinct racks a replica set touches."""
        return len({self.rack_of(i) for i in machines})

    def zones_spanned(self, machines: Iterable[int]) -> int:
        """Distinct zones a replica set touches."""
        return len({self.zone_of(i) for i in machines})

    def describe(self) -> str:
        """One-line human summary for labels and manifests."""
        return (
            f"{self.zones} zone(s) x {self.racks_per_zone} rack(s) x "
            f"{self.machines_per_rack} machine(s) = {self.m} machines"
        )

    def as_dict(self) -> dict[str, int]:
        """JSON form for manifests and reports."""
        return {
            "zones": self.zones,
            "racks_per_zone": self.racks_per_zone,
            "machines_per_rack": self.machines_per_rack,
            "racks": self.racks,
            "machines": self.m,
        }


def diversity_score(
    topology: FleetTopology, groups: Iterable[tuple[int, ...]], *, level: str = "rack"
) -> float:
    """Mean replica diversity of placement groups over the tree, in [0, 1].

    For one group :math:`M_j` the diversity at a level (``"rack"`` or
    ``"zone"``) is ``(spanned - 1) / (ceiling - 1)`` where ``ceiling`` is
    the most subtrees ``|M_j|`` replicas could possibly touch — 1.0 means
    maximally spread, 0.0 means every replica shares one failure domain
    (a single-replica group scores 0: it has nothing to spread).  The
    mean over groups is the placement's score; it is the quantity a
    rack-sized blast radius tests, and the soak report carries it beside
    the availability curve.
    """
    if level not in ("rack", "zone"):
        raise ValueError(f"level must be 'rack' or 'zone', got {level!r}")
    spanned_of = topology.racks_spanned if level == "rack" else topology.zones_spanned
    domains = topology.racks if level == "rack" else topology.zones
    scores = []
    for group in groups:
        members = tuple(group)
        if not members:
            raise ValueError("placement group is empty")
        ceiling = min(len(members), domains)
        if ceiling <= 1:
            scores.append(0.0)
            continue
        scores.append((spanned_of(members) - 1) / (ceiling - 1))
    if not scores:
        raise ValueError("no placement groups to score")
    return float(sum(scores) / len(scores))


def rack_failure_plan(
    topology: FleetTopology,
    rack: int,
    *,
    at: float = 0.0,
    downtime: float = math.inf,
) -> FaultPlan:
    """Deterministic blast-radius plan: every machine in ``rack`` fails at ``at``."""
    return FaultPlan.of(CorrelatedFailure(topology.rack_members(rack), float(at), float(downtime)))


def zone_failure_plan(
    topology: FleetTopology,
    zone: int,
    *,
    at: float = 0.0,
    downtime: float = math.inf,
) -> FaultPlan:
    """Deterministic blast-radius plan: every machine in ``zone`` fails at ``at``."""
    return FaultPlan.of(CorrelatedFailure(topology.zone_members(zone), float(at), float(downtime)))


class _TopologyFaultModel(FaultModel, abc.ABC):
    """Shared base for seeded generators that sample over a fleet tree."""


@dataclass(frozen=True)
class ZoneOutage(_TopologyFaultModel):
    """A whole zone fails together at a uniform random time.

    The largest blast radius the tree expresses: every rack in the drawn
    zone goes down at once, with a shared downtime (``None`` = permanent,
    scalar = fixed, ``(lo, hi)`` = one uniform draw per sample).
    """

    topology: FleetTopology
    window: tuple[float, float] = (0.0, 15.0)
    downtime: float | tuple[float, float] | None = None

    def sample(self, rng: np.random.Generator) -> FaultPlan:
        """Draw one zone-loss scenario from ``rng``."""
        zone = int(rng.integers(0, self.topology.zones))
        at = float(rng.uniform(self.window[0], self.window[1]))
        return zone_failure_plan(
            self.topology, zone, at=at, downtime=_draw_downtime(self.downtime, rng)
        )


@dataclass(frozen=True)
class CascadingRackFailure(_TopologyFaultModel):
    """Racks fail in sequence: one seed rack, then neighbours at a lag.

    Models a shared-infrastructure cascade (cooling loop, power bus): the
    seed rack fails at a uniform time in ``window``, and each of the next
    ``size - 1`` racks (wrapping around the rack ring) follows ``lag``
    later.  One :class:`~repro.faults.plan.CorrelatedFailure` per rack
    keeps the correlation visible in provenance output.
    """

    topology: FleetTopology
    size: int = 2
    lag: float = 2.0
    window: tuple[float, float] = (0.0, 10.0)
    downtime: float | tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.size <= self.topology.racks:
            raise ValueError(
                f"cascade size must be in 1..{self.topology.racks}, got {self.size}"
            )
        if self.lag < 0:
            raise ValueError(f"cascade lag must be >= 0, got {self.lag}")

    def sample(self, rng: np.random.Generator) -> FaultPlan:
        """Draw one cascade scenario from ``rng``."""
        first = int(rng.integers(0, self.topology.racks))
        at = float(rng.uniform(self.window[0], self.window[1]))
        downtime = _draw_downtime(self.downtime, rng)
        faults: list[Fault] = []
        for step in range(self.size):
            rack = (first + step) % self.topology.racks
            faults.append(
                CorrelatedFailure(
                    self.topology.rack_members(rack), at + step * self.lag, downtime
                )
            )
        return FaultPlan(tuple(faults))


@dataclass(frozen=True)
class FlappingMachines(_TopologyFaultModel):
    """Machines that crash and rejoin on a cycle — the health policy's nemesis.

    ``count`` distinct machines are drawn; each one crashes at its phase
    offset and repeats every ``period`` (staying down ``down_time`` per
    cycle, ``cycles`` times).  Every restart it causes re-runs a task
    from scratch, so unquarantined flappers waste work linearly in cycle
    count.
    """

    topology: FleetTopology
    count: int = 1
    first: tuple[float, float] = (0.0, 5.0)
    period: float = 4.0
    down_time: float = 1.0
    cycles: int = 3

    def __post_init__(self) -> None:
        if not 1 <= self.count <= self.topology.m:
            raise ValueError(
                f"count must be in 1..{self.topology.m}, got {self.count}"
            )
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles}")
        if not 0 < self.down_time < self.period:
            raise ValueError(
                f"need 0 < down_time < period, got {self.down_time}/{self.period}"
            )

    def sample(self, rng: np.random.Generator) -> FaultPlan:
        """Draw one flapping scenario from ``rng``."""
        machines = rng.choice(self.topology.m, size=self.count, replace=False)
        faults: list[Fault] = []
        for machine in machines:
            phase = float(rng.uniform(self.first[0], self.first[1]))
            for cycle in range(self.cycles):
                faults.append(
                    CrashRecover(
                        int(machine), phase + cycle * self.period, self.down_time
                    )
                )
        return FaultPlan(tuple(faults))


def _draw_downtime(
    downtime: float | tuple[float, float] | None, rng: np.random.Generator
) -> float:
    """Resolve the shared downtime convention (None / scalar / range)."""
    if downtime is None:
        return math.inf
    if isinstance(downtime, tuple):
        return float(rng.uniform(downtime[0], downtime[1]))
    return float(downtime)
