"""Fleet-scale chaos engineering for the placement service.

The paper proves its replication guarantee against *independent* machine
failures; this package measures how much of it survives *correlated*
ones.  Three layers:

* :mod:`repro.chaos.topology` — the fleet tree (machines → racks →
  zones), replica-diversity scoring of placement groups :math:`M_j`
  against it, and topology-aware fault generators (rack/zone blast
  radius, cascades, flapping) extending :mod:`repro.faults`;
* :mod:`repro.chaos.policy` — the health-policy engine (declarative
  healthy → suspect → quarantined → recovered state machine with
  policy-driven actions) plus the circuit-breaker and bulkhead guards
  for the service's admission path;
* :mod:`repro.chaos.soak` — the soak harness behind ``repro soak``:
  sustained load against :mod:`repro.service` while a chaos schedule
  injects faults, emitting availability curves, makespan inflation vs.
  the capacity bound, diversity scores, and an SLO verdict.

``docs/chaos.md`` is the operator guide; the determinism contract (same
seed → byte-identical availability curve and decision digest) is pinned
by ``tests/test_chaos_soak.py``.
"""

from repro.chaos.policy import (
    Bulkhead,
    CircuitBreaker,
    HealthPolicy,
    HealthState,
    HealthTracker,
)
from repro.chaos.soak import ChaosAction, ChaosSchedule, SoakConfig, SoakReport, run_soak
from repro.chaos.topology import (
    CascadingRackFailure,
    FleetTopology,
    FlappingMachines,
    ZoneOutage,
    diversity_score,
    rack_failure_plan,
    zone_failure_plan,
)

__all__ = [
    "FleetTopology",
    "diversity_score",
    "rack_failure_plan",
    "zone_failure_plan",
    "ZoneOutage",
    "CascadingRackFailure",
    "FlappingMachines",
    "HealthState",
    "HealthPolicy",
    "HealthTracker",
    "CircuitBreaker",
    "Bulkhead",
    "ChaosAction",
    "ChaosSchedule",
    "SoakConfig",
    "SoakReport",
    "run_soak",
]
