"""Core: the paper's model, placements, strategies, bounds and adversaries."""

from repro.core.model import Instance, Task, make_instance
from repro.core.placement import (
    Placement,
    everywhere_placement,
    group_placement,
    single_machine_placement,
)
from repro.core.strategy import (
    FixedOrderPolicy,
    OnlinePolicy,
    PlacementStrategy,
    SchedulerView,
    TwoPhaseStrategy,
)

__all__ = [
    "Instance",
    "Task",
    "make_instance",
    "Placement",
    "single_machine_placement",
    "everywhere_placement",
    "group_placement",
    "SchedulerView",
    "OnlinePolicy",
    "PlacementStrategy",
    "TwoPhaseStrategy",
    "FixedOrderPolicy",
]
