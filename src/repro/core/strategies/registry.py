"""Strategy registry: build any paper strategy from a string spec.

The CLI, the experiment harness and several benches refer to strategies by
name (``"lpt_no_choice"``, ``"ls_group[k=3]"``...).  This module parses
those specs and also enumerates the full strategy sweep for a given ``m``
(all divisors as group counts), which is what Figure 3 and bench E1 run.
"""

from __future__ import annotations

import re

from repro.core.bounds import divisors
from repro.core.model import Instance
from repro.core.placement import Placement
from repro.core.strategies.lpt_no_choice import LPTNoChoice
from repro.core.strategies.lpt_no_restriction import LPTNoRestriction
from repro.core.strategies.ls_group import LPTGroup, LSGroup
from repro.core.strategies.nonclairvoyant import NonClairvoyantLS
from repro.core.strategies.overlapping import OverlappingWindows
from repro.core.strategies.selective import BudgetedReplication, SelectiveReplication
from repro.core.strategy import TwoPhaseStrategy
from repro.obs.tracer import get_tracer

__all__ = [
    "make_strategy",
    "strategy_names",
    "full_sweep",
    "build_placement",
    "STRATEGY_FACTORIES",
]

_GROUP_RE = re.compile(r"^(ls_group|lpt_group)\[k=(\d+)\]$")
_SELECTIVE_RE = re.compile(r"^selective\[(\d*\.?\d+)(?:,(work|count))?\]$")
_BUDGETED_RE = re.compile(r"^budgeted\[B=(\d+)\]$")
_OVERLAP_RE = re.compile(r"^overlap_windows\[k=(\d+),w=(\d+)\]$")

#: Parameter-free strategies constructible by bare name.
STRATEGY_FACTORIES = {
    "lpt_no_choice": LPTNoChoice,
    "lpt_no_restriction": LPTNoRestriction,
    "nonclairvoyant_ls": NonClairvoyantLS,
}


def make_strategy(spec: str) -> TwoPhaseStrategy:
    """Build a strategy from a spec string.

    Accepted forms: ``"lpt_no_choice"``, ``"lpt_no_restriction"``,
    ``"nonclairvoyant_ls"``, ``"ls_group[k=K]"``, ``"lpt_group[k=K]"``,
    ``"selective[F]"`` / ``"selective[F,work]"``, ``"budgeted[B=N]"``,
    ``"overlap_windows[k=K,w=W]"``.
    """
    if spec in STRATEGY_FACTORIES:
        return STRATEGY_FACTORIES[spec]()
    match = _GROUP_RE.match(spec)
    if match:
        cls = LSGroup if match.group(1) == "ls_group" else LPTGroup
        return cls(int(match.group(2)))
    match = _SELECTIVE_RE.match(spec)
    if match:
        return SelectiveReplication(float(match.group(1)), by_work=match.group(2) == "work")
    match = _BUDGETED_RE.match(spec)
    if match:
        return BudgetedReplication(int(match.group(1)))
    match = _OVERLAP_RE.match(spec)
    if match:
        return OverlappingWindows(int(match.group(1)), int(match.group(2)))
    raise ValueError(
        f"unknown strategy spec {spec!r}; expected one of "
        f"{sorted(STRATEGY_FACTORIES)}, 'ls_group[k=K]', 'lpt_group[k=K]', "
        f"'selective[F]', 'budgeted[B=N]' or 'overlap_windows[k=K,w=W]'"
    )


def strategy_names(m: int, *, include_ablation: bool = False) -> list[str]:
    """All strategy specs applicable to ``m`` machines.

    The group strategies appear once per divisor of ``m`` (the paper's
    Figure-3 sweep).
    """
    names = ["lpt_no_choice", "lpt_no_restriction"]
    names += [f"ls_group[k={k}]" for k in divisors(m)]
    if include_ablation:
        names += [f"lpt_group[k={k}]" for k in divisors(m)]
    return names


def full_sweep(m: int, *, include_ablation: bool = False) -> list[TwoPhaseStrategy]:
    """Instantiate every strategy applicable to ``m`` machines."""
    return [make_strategy(s) for s in strategy_names(m, include_ablation=include_ablation)]


def build_placement(strategy: TwoPhaseStrategy, instance: Instance) -> Placement:
    """Run Phase 1 (``strategy.place``) under an observability span.

    The canonical instrumented entry point for placement builds: the
    experiment harness and :func:`repro.analysis.ratios.run_strategy` route
    through here so every Phase-1 build shows up as a ``phase1`` span with
    a ``phase1.placements`` counter, at zero cost when tracing is off.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return strategy.place(instance)
    with tracer.span(
        "phase1", strategy=strategy.name, n=instance.n, m=instance.m
    ) as span:
        placement = strategy.place(instance)
        span.set(
            replication=placement.max_replication(),
            total_replicas=placement.total_replicas(),
        )
    tracer.count("phase1.placements")
    return placement
