"""Back-compat shims over :mod:`repro.registry` (the old spec parser).

The CLI, the experiment harness and several benches historically imported
:func:`make_strategy` / :func:`strategy_names` / :func:`full_sweep` from
here.  The actual parsing and enumeration now live in the declarative
plugin registry (:mod:`repro.registry`); this module forwards to it so
every existing import keeps working and every documented spec string
parses identically.

:func:`build_placement` — the instrumented Phase-1 entry point — still
lives here; it is an execution concern, not a registration one.
"""

from __future__ import annotations

from repro.core.model import Instance
from repro.core.placement import Placement
from repro.core.strategy import TwoPhaseStrategy
from repro.obs.tracer import get_tracer
from repro.registry import full_sweep, make_strategy, strategy_names

__all__ = [
    "make_strategy",
    "strategy_names",
    "full_sweep",
    "build_placement",
    "STRATEGY_FACTORIES",
]


class _FactoryView(dict):
    """Read-only live view of the registry's parameter-free strategies.

    Kept for back compatibility with code that consulted
    ``STRATEGY_FACTORIES`` to check bare-name specs; populated lazily so
    importing this module does not force every strategy family to load.
    """

    def _ensure(self) -> None:
        if not super().__len__():
            from repro.registry import strategy_entries

            for entry in strategy_entries():
                if not any(p.required for p in entry.params):
                    super().__setitem__(entry.name, entry.cls)

    def __getitem__(self, key):
        self._ensure()
        return super().__getitem__(key)

    def __contains__(self, key) -> bool:
        self._ensure()
        return super().__contains__(key)

    def __iter__(self):
        self._ensure()
        return super().__iter__()

    def __len__(self) -> int:
        self._ensure()
        return super().__len__()

    def keys(self):
        self._ensure()
        return super().keys()

    def items(self):
        self._ensure()
        return super().items()

    def values(self):
        self._ensure()
        return super().values()


#: Strategies constructible by bare name (all parameters defaulted).
STRATEGY_FACTORIES = _FactoryView()


def build_placement(strategy: TwoPhaseStrategy, instance: Instance) -> Placement:
    """Run Phase 1 (``strategy.place``) under an observability span.

    The canonical instrumented entry point for placement builds: the
    experiment harness and :func:`repro.analysis.ratios.run_strategy` route
    through here so every Phase-1 build shows up as a ``phase1`` span with
    a ``phase1.placements`` counter, at zero cost when tracing is off.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return strategy.place(instance)
    with tracer.span(
        "phase1", strategy=strategy.name, n=instance.n, m=instance.m
    ) as span:
        placement = strategy.place(instance)
        span.set(
            replication=placement.max_replication(),
            total_replicas=placement.total_replicas(),
        )
    tracer.count("phase1.placements")
    return placement
