"""Non-clairvoyant baseline — the α → ∞ limit of the problem.

The paper's conclusion observes that as α grows "the problem converges to
the non-clairvoyant online problem": estimates carry no information, and
the best known strategy is Graham's List Scheduling in an arbitrary order
(still ``2 − 1/m`` competitive, estimate-free).  This baseline anchors the
E6 regime study: the α at which the estimate-aware strategies stop beating
it is the practical edge of the paper's model.

:class:`NonClairvoyantLS`
    Replicates everywhere (it needs runtime flexibility just like
    Strategy 2) and dispatches in a fixed *estimate-independent* order —
    task-id order by default, or a seeded shuffle — so its behaviour is a
    true "we know nothing" reference.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import Instance
from repro.core.placement import Placement, everywhere_placement
from repro.core.strategy import FixedOrderPolicy, OnlinePolicy, TwoPhaseStrategy
from repro.registry import Capabilities, Int, register_strategy

__all__ = ["NonClairvoyantLS"]


@register_strategy(
    "nonclairvoyant_ls",
    params=(
        Int(
            "shuffle",
            attr="seed",
            default=None,
            doc="optional seed for a random dispatch order (default: task-id order)",
        ),
    ),
    family="core",
    theorem="Graham LS bound 2−1/m (α→∞ limit)",
    capabilities=Capabilities(replication_factor="full", supports_batch=True),
)
class NonClairvoyantLS(TwoPhaseStrategy):
    """Estimate-blind online List Scheduling over full replication.

    Parameters
    ----------
    seed:
        If given, dispatch order is a seeded random permutation; otherwise
        task-id (arrival) order.  Either way, estimates are never read.
    """

    def __init__(self, seed: int | None = None) -> None:
        self.seed = seed
        suffix = f"[shuffle={seed}]" if seed is not None else ""
        self.name = f"nonclairvoyant_ls{suffix}"

    def place(self, instance: Instance) -> Placement:
        return everywhere_placement(instance, meta={"strategy": self.name})

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        order = list(range(instance.n))
        if self.seed is not None:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(order)
        return FixedOrderPolicy(order)

    def guarantee(self, instance: Instance) -> float:
        """Graham's bound ``2 − 1/m`` — independent of α, as befits a
        strategy that ignores the estimates."""
        from repro.core.bounds import ub_graham_ls

        return ub_graham_ls(instance.m)
