"""Overlapping-group replication — "more general replication policies".

The paper's conclusion notes that "while replicating data using groups of
machines proved effective, more general replication policies can certainly
lead to better guarantees."  This module implements the most natural
generalization: **overlapping groups**, where each task's replica set is a
window of machines and consecutive windows share machines.  Unlike
disjoint groups, load can *flow* between windows at runtime — a hot window
sheds work to its neighbors through the shared machines — at the same
per-task replication ``|M_j| = w``.

:class:`OverlappingWindows`
    ``k`` windows of width ``w = m/k · overlap`` laid out with constant
    stride ``m/k`` (so ``overlap = 1`` reproduces disjoint LS-Group
    windows, ``overlap = 2`` makes every machine serve two windows).
    Phase 1 distributes tasks to windows by List Scheduling on estimates;
    Phase 2 is the usual fixed-order online dispatch, which automatically
    exploits the overlap (an idle shared machine takes work from either
    window).

No guarantee is proven here — the point is the empirical question the
paper raises, measured in bench E5: does overlap beat disjoint groups at
equal replication?
"""

from __future__ import annotations

from repro._validation import check_group_count, check_positive_int
from repro.core.model import Instance
from repro.core.placement import Placement
from repro.core.strategy import FixedOrderPolicy, OnlinePolicy, TwoPhaseStrategy
from repro.registry import Capabilities, Int, register_strategy
from repro.schedulers.list_scheduling import greedy_assign_heap

__all__ = ["OverlappingWindows", "window_machines"]


def window_machines(m: int, k: int, overlap: int) -> list[frozenset[int]]:
    """The ``k`` windows: window ``g`` covers ``overlap * m/k`` machines
    starting at ``g * m/k`` (wrapping around)."""
    check_group_count(k, m)
    check_positive_int(overlap, "overlap")
    if overlap > k:
        raise ValueError(f"overlap must be <= k (window would wrap fully), got {overlap} > {k}")
    stride = m // k
    width = stride * overlap
    return [
        frozenset((g * stride + off) % m for off in range(width)) for g in range(k)
    ]


@register_strategy(
    "overlap_windows",
    params=(
        Int("k", ge=1, doc="number of windows; must divide m"),
        Int(
            "w",
            attr="overlap",
            ge=1,
            default=2,
            omit_default=False,
            doc="strides per window: |M_j| = w·m/k",
        ),
    ),
    family="core",
    theorem="conclusion: 'more general replication policies' (bench E5)",
    capabilities=Capabilities(replication_factor="group", supports_batch=True),
)
class OverlappingWindows(TwoPhaseStrategy):
    """Group replication with overlapping machine windows.

    Parameters
    ----------
    k:
        Number of windows; must divide the instance's ``m``.
    overlap:
        How many strides each window spans: ``|M_j| = overlap * m/k``.
        ``overlap = 1`` is exactly LS-Group.
    """

    def __init__(self, k: int, overlap: int = 2) -> None:
        self.k = check_positive_int(k, "k")
        self.overlap = check_positive_int(overlap, "overlap")
        self.name = f"overlap_windows[k={self.k},w={self.overlap}]"

    def place(self, instance: Instance) -> Placement:
        windows = window_machines(instance.m, self.k, self.overlap)
        result = greedy_assign_heap(
            instance.estimates, instance.input_order(), self.k
        )
        window_of_task = [0] * instance.n
        for pos, j in enumerate(result.order):
            window_of_task[j] = result.assignment[pos]
        sets = tuple(windows[window_of_task[j]] for j in range(instance.n))
        return Placement(
            instance,
            sets,
            meta={
                "strategy": self.name,
                "window_of_task": tuple(window_of_task),
                "windows": tuple(tuple(sorted(w)) for w in windows),
            },
        )

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        return FixedOrderPolicy(instance.input_order())
