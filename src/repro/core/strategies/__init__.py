"""The paper's replication strategies, ablations and future-work extensions."""

from repro.core.strategies.lpt_no_choice import LPTNoChoice
from repro.core.strategies.lpt_no_restriction import LPTNoRestriction
from repro.core.strategies.ls_group import LPTGroup, LSGroup, equal_groups
from repro.core.strategies.nonclairvoyant import NonClairvoyantLS
from repro.core.strategies.overlapping import OverlappingWindows, window_machines
from repro.core.strategies.registry import (
    build_placement,
    full_sweep,
    make_strategy,
    strategy_names,
)
from repro.core.strategies.selective import BudgetedReplication, SelectiveReplication

__all__ = [
    "LPTNoChoice",
    "LPTNoRestriction",
    "LSGroup",
    "LPTGroup",
    "equal_groups",
    "SelectiveReplication",
    "BudgetedReplication",
    "OverlappingWindows",
    "window_machines",
    "NonClairvoyantLS",
    "make_strategy",
    "strategy_names",
    "full_sweep",
    "build_placement",
]
