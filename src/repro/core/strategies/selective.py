"""Selective replication — the paper's future-work cost model, implemented.

The conclusion of the paper proposes: "A more realistic model would
introduce a cost of replicating a task (either global or per machine).
This would allow to replicate only some critical tasks and limit memory
usage."  These strategies realize that idea in two flavors:

:class:`SelectiveReplication`
    Replicate the *critical* (largest-estimate) tasks everywhere and pin
    the rest with LPT.  Criticality is a fraction of the task count or of
    the total estimated work.  Intuition: uncertainty hurts most when a
    long task is pinned to an already-loaded machine; short tasks are
    cheap to absorb anywhere.  One replica budget knob, smooth between
    LPT-No Choice (fraction 0) and LPT-No Restriction (fraction 1).

:class:`BudgetedReplication`
    A global replica budget ``B ≥ n`` (each task needs ≥ 1 copy).  Extra
    copies are handed to tasks in non-increasing estimate order, one
    machine at a time, choosing for each new replica the machine with the
    smallest estimated load among machines not yet holding the task.
    Generalizes the fraction knob to exact replica accounting, the unit
    in which a real system would price replication.

Neither strategy carries a proven bound (the paper leaves that open); both
are evaluated empirically in bench E5, where they trace a finer
replication/makespan tradeoff than the group strategy's divisor grid.
"""

from __future__ import annotations

import heapq

from repro._validation import check_fraction, check_positive_int
from repro.core.model import Instance
from repro.core.placement import Placement
from repro.core.strategy import OnlinePolicy, SchedulerView, TwoPhaseStrategy
from repro.registry import Capabilities, Choice, Float, Int, register_strategy
from repro.schedulers.lpt import lpt_assignment_by_task

__all__ = ["SelectiveReplication", "BudgetedReplication", "PinnedAwarePolicy"]


class PinnedAwarePolicy:
    """Phase-2 dispatch for mixed pinned/replicated placements.

    A naive global-LPT scan has a failure mode when only *some* tasks are
    replicated: at time 0 all machines look identical, so (tie-breaking by
    id) the machines that also hold the heaviest *pinned* queues grab the
    big replicated tasks, doubling up while lightly-pinned machines run
    out of work — the replicated tasks end up *adding* to the worst
    machine instead of filling the valleys.

    This policy makes the dispatch pinned-load-aware: machine ``i`` may
    start a replicated task only if its remaining pinned (estimated) work
    is minimal among the machines that could run that task; otherwise it
    works on its own pinned queue.  When both a pinned and a replicated
    task are available the one earlier in global LPT order wins, so the
    classical big-tasks-first behaviour is preserved.
    """

    def __init__(self, instance: Instance, placement: Placement) -> None:
        lpt_rank = {tid: pos for pos, tid in enumerate(instance.lpt_order())}
        self._rank = lpt_rank
        self._estimates = instance.estimates
        self._pinned: dict[int, list[int]] = {}
        self._multi: list[int] = []
        for j in range(instance.n):
            machines = placement.machines_for(j)
            if len(machines) == 1:
                self._pinned.setdefault(next(iter(machines)), []).append(j)
            else:
                self._multi.append(j)
        for q in self._pinned.values():
            q.sort(key=lambda j: lpt_rank[j])
        self._multi.sort(key=lambda j: lpt_rank[j])
        self._placement = placement
        self._m = instance.m

    def batch_state(self) -> tuple[dict[int, tuple[int, ...]], tuple[int, ...]]:
        """The dispatch structure (pinned queues, replicated scan order).

        Consumed by the batch backend (:mod:`repro.simulation.batch`),
        which precompiles this policy's decision procedure — queue heads,
        remaining-pinned suffix sums, LPT-rank tie-breaks — into a
        pack-wide replay instead of calling :meth:`select` per event.
        """
        return (
            {i: tuple(q) for i, q in self._pinned.items()},
            tuple(self._multi),
        )

    def _remaining_pinned(self, machine: int, view: SchedulerView) -> float:
        return sum(
            self._estimates[j]
            for j in self._pinned.get(machine, ())
            if not view.is_started(j)
        )

    def select(self, machine: int, view: SchedulerView) -> int | None:
        own: int | None = None
        for j in self._pinned.get(machine, ()):
            if not view.is_started(j):
                own = j
                break
        cand: int | None = None
        for j in self._multi:
            if not view.is_started(j) and self._placement.allows(j, machine):
                cand = j
                break
        if cand is None:
            return own
        # Eligibility: this machine's pinned backlog must be minimal among
        # the machines that could host the replicated task.
        my_rem = self._remaining_pinned(machine, view)
        rivals = self._placement.machines_for(cand)
        min_rem = min(self._remaining_pinned(i, view) for i in rivals)
        eligible = my_rem <= min_rem + 1e-12
        if not eligible:
            return own
        if own is None:
            return cand
        return cand if self._rank[cand] < self._rank[own] else own


@register_strategy(
    "selective",
    params=(
        Float(
            "fraction",
            positional=True,
            ge=0.0,
            le=1.0,
            doc="share of tasks (or work) replicated everywhere",
        ),
        Choice(
            "basis",
            values=("count", "work"),
            default="count",
            omit_default=False,
            doc="what the fraction is measured against",
        ),
    ),
    family="core",
    theorem="conclusion: replication-cost model (bench E5)",
    capabilities=Capabilities(
        supports_releases=False, replication_factor="selective", supports_batch=True
    ),
    builder=lambda fraction, basis: SelectiveReplication(
        fraction, by_work=basis == "work"
    ),
    extract=lambda s: {
        "fraction": s.fraction,
        "basis": "work" if s.by_work else "count",
    },
)
class SelectiveReplication(TwoPhaseStrategy):
    """Replicate the top tasks everywhere, pin the rest with LPT.

    Parameters
    ----------
    fraction:
        Fraction of *tasks* (by count, largest estimates first) to
        replicate everywhere.  ``0`` degenerates to LPT-No Choice,
        ``1`` to LPT-No Restriction.
    by_work:
        If True, ``fraction`` is interpreted against the total estimated
        *work* instead of the task count: replicate the largest tasks
        until they cover ``fraction`` of :math:`\\sum \\tilde p_j`.
    """

    def __init__(self, fraction: float, *, by_work: bool = False) -> None:
        self.fraction = check_fraction(fraction, "fraction")
        self.by_work = bool(by_work)
        basis = "work" if by_work else "count"
        self.name = f"selective[{self.fraction:g},{basis}]"

    def _critical_set(self, instance: Instance) -> set[int]:
        order = instance.lpt_order()
        if not self.by_work:
            cutoff = round(self.fraction * instance.n)
            return set(order[:cutoff])
        target = self.fraction * instance.total_estimate
        covered = 0.0
        chosen: set[int] = set()
        for j in order:
            if covered >= target:
                break
            chosen.add(j)
            covered += instance.tasks[j].estimate
        return chosen

    def place(self, instance: Instance) -> Placement:
        critical = self._critical_set(instance)
        pinned = [j for j in range(instance.n) if j not in critical]
        all_machines = frozenset(range(instance.m))
        sets: list[frozenset[int]] = [all_machines] * instance.n
        if pinned:
            # Pin the non-critical tasks with LPT *after* accounting for the
            # replicated work: each machine will absorb its share of the
            # critical work online, so pre-load each machine with the
            # average critical work to keep the pinned layer balanced.
            avg_critical = (
                sum(instance.tasks[j].estimate for j in critical) / instance.m
            )
            times = [instance.tasks[j].estimate for j in pinned]
            sub_assign = _lpt_with_offset(times, instance.m, avg_critical)
            for pos, j in enumerate(pinned):
                sets[j] = frozenset((sub_assign[pos],))
        return Placement(
            instance,
            tuple(sets),
            meta={
                "strategy": self.name,
                "critical": tuple(sorted(critical)),
                "pinned": tuple(pinned),
            },
        )

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        return PinnedAwarePolicy(instance, placement)


def _lpt_with_offset(times: list[float], m: int, offset: float) -> list[int]:
    """LPT where every machine starts with ``offset`` load (uniform offsets
    do not change the greedy's decisions, but keep the code explicit about
    the modelling intent)."""
    order = sorted(range(len(times)), key=lambda j: (-times[j], j))
    heap = [(offset, i) for i in range(m)]
    heapq.heapify(heap)
    assignment = [0] * len(times)
    for j in order:
        load, i = heapq.heappop(heap)
        assignment[j] = i
        heapq.heappush(heap, (load + times[j], i))
    return assignment


@register_strategy(
    "budgeted",
    params=(
        Int("B", attr="budget", ge=1, doc="total replica budget; must be >= n"),
    ),
    family="core",
    theorem="conclusion: replication-cost model (bench E5)",
    capabilities=Capabilities(
        supports_releases=False, replication_factor="budgeted", supports_batch=True
    ),
)
class BudgetedReplication(TwoPhaseStrategy):
    """Exact global replica budget; extra copies go to the longest tasks.

    Parameters
    ----------
    budget:
        Total number of data copies across the system; must be ≥ n (every
        task needs one copy).  ``budget = n`` degenerates to LPT-No
        Choice; ``budget = n*m`` to full replication.
    """

    def __init__(self, budget: int) -> None:
        self.budget = check_positive_int(budget, "budget")
        self.name = f"budgeted[B={self.budget}]"

    def place(self, instance: Instance) -> Placement:
        n, m = instance.n, instance.m
        if self.budget < n:
            raise ValueError(
                f"budget must cover one replica per task: budget={self.budget} < n={n}"
            )
        base = lpt_assignment_by_task(list(instance.estimates), m)
        machine_sets = [set((base[j],)) for j in range(n)]
        loads = [0.0] * m
        for j in range(n):
            loads[base[j]] += instance.tasks[j].estimate

        extra = min(self.budget, n * m) - n
        order = instance.lpt_order()
        # Round-robin over the LPT order: give each critical task one more
        # replica per pass so the budget spreads over the heaviest tasks
        # instead of saturating only the single heaviest.
        while extra > 0:
            progressed = False
            for j in order:
                if extra == 0:
                    break
                candidates = [i for i in range(m) if i not in machine_sets[j]]
                if not candidates:
                    continue
                target = min(candidates, key=lambda i: (loads[i], i))
                machine_sets[j].add(target)
                extra -= 1
                progressed = True
            if not progressed:
                break
        return Placement(
            instance,
            tuple(frozenset(s) for s in machine_sets),
            meta={"strategy": self.name, "budget": self.budget},
        )

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        return PinnedAwarePolicy(instance, placement)
