"""Strategy 2 — **LPT-No Restriction** (Section 5.2, Theorem 3).

Phase 1 replicates every task's data on every machine
(:math:`|M_j| = m`), buying maximum runtime flexibility at maximum
replication cost.  Phase 2 runs LPT *online*: tasks sorted by
non-increasing estimate; whenever a machine becomes idle (actual durations
drive idleness) it receives the next unscheduled task in that order.

Guarantee (Theorem 3 + the List-Scheduling fallback): :math:`\\min\\bigl(
1 + \\frac{m-1}{m}\\frac{\\alpha^2}{2},\\ 2 - \\frac1m\\bigr)` — better
than Graham's bound exactly when :math:`\\alpha^2 < 2`.
"""

from __future__ import annotations

from repro.core.model import Instance
from repro.core.placement import Placement, everywhere_placement
from repro.core.strategy import FixedOrderPolicy, OnlinePolicy, TwoPhaseStrategy
from repro.registry import Capabilities, SweepRule, register_strategy

__all__ = ["LPTNoRestriction"]


@register_strategy(
    "lpt_no_restriction",
    family="core",
    theorem="Theorem 3",
    capabilities=Capabilities(replication_factor="full", supports_batch=True, online_placement=True),
    sweep=SweepRule(order=1, enumerate=lambda m: ["lpt_no_restriction"]),
)
class LPTNoRestriction(TwoPhaseStrategy):
    """Replicate everywhere; dispatch online in LPT order of the estimates.

    ``replication = m`` (the most expensive placement), guarantee
    :func:`repro.core.bounds.ub_lpt_no_restriction`.
    """

    name = "lpt_no_restriction"

    def place(self, instance: Instance) -> Placement:
        return everywhere_placement(instance, meta={"strategy": self.name})

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        return FixedOrderPolicy(instance.lpt_order())

    def guarantee(self, instance: Instance) -> float:
        """Combined Strategy-2 bound at this instance's parameters."""
        from repro.core.bounds import ub_lpt_no_restriction

        return ub_lpt_no_restriction(instance.alpha, instance.m)
