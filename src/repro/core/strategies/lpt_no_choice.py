"""Strategy 1 — **LPT-No Choice** (Section 5.1, Theorem 2).

Phase 1 places each task's data on exactly one machine using LPT on the
*estimated* processing times: tasks sorted by non-increasing
:math:`\\tilde p_j`, each assigned to the machine with the least estimated
load so far.  With :math:`|M_j| = 1` there is nothing left to decide in
Phase 2 — each machine simply runs its pinned tasks.

Guarantee (Theorem 2): :math:`C_{max}/C^*_{max} \\le
\\frac{2\\alpha^2 m}{2\\alpha^2 + m - 1}`, against the Theorem-1
impossibility of :math:`\\frac{\\alpha^2 m}{\\alpha^2 + m - 1}` for any
no-replication algorithm.
"""

from __future__ import annotations

from repro.core.model import Instance
from repro.core.placement import Placement, single_machine_placement
from repro.core.strategy import FixedOrderPolicy, OnlinePolicy, TwoPhaseStrategy
from repro.registry import Capabilities, SweepRule, register_strategy
from repro.schedulers.lpt import lpt_assignment_by_task

__all__ = ["LPTNoChoice"]


@register_strategy(
    "lpt_no_choice",
    family="core",
    theorem="Theorem 2",
    capabilities=Capabilities(replication_factor="none", supports_batch=True, online_placement=True),
    sweep=SweepRule(order=0, enumerate=lambda m: ["lpt_no_choice"]),
)
class LPTNoChoice(TwoPhaseStrategy):
    """LPT placement on estimates; no runtime flexibility.

    ``replication = 1`` (the cheapest possible placement), guarantee
    :func:`repro.core.bounds.ub_lpt_no_choice`.
    """

    name = "lpt_no_choice"

    def place(self, instance: Instance) -> Placement:
        assignment = lpt_assignment_by_task(instance.estimates, instance.m)
        return single_machine_placement(
            instance, assignment, meta={"strategy": self.name}
        )

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        # Every task has a single allowed machine, so the dispatch order
        # cannot change the makespan; LPT order within each machine is used
        # for determinism and to match the paper's figures.
        return FixedOrderPolicy(instance.lpt_order())

    def guarantee(self, instance: Instance) -> float:
        """Theorem 2's bound evaluated on this instance's parameters."""
        from repro.core.bounds import ub_lpt_no_choice

        return ub_lpt_no_choice(instance.alpha, instance.m)
