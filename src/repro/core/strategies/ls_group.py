"""Strategy 3 — **LS-Group** (Section 5.3, Theorem 4) and its LPT ablation.

The machines are partitioned into ``k`` equal groups of ``m/k`` machines.
Phase 1 distributes the tasks over the *groups* with List Scheduling on
the estimates (each group acting as one pseudo-machine of capacity
``m/k``); every task's data is replicated on all machines of its group, so
:math:`|M_j| = m/k`.  Phase 2 runs online List Scheduling *within* each
group: an idle machine takes the next unstarted task of its own group.

Guarantee (Theorem 4): :math:`\\frac{k\\alpha^2}{\\alpha^2+k-1}
\\bigl(1+\\frac{k-1}{m}\\bigr) + \\frac{m-k}{m}`.

``k = 1`` degenerates to one group containing all machines — full
replication with List Scheduling — and ``k = m`` to singleton groups — no
replication, LS placement.  Sweeping ``k`` over the divisors of ``m``
traces the replication/guarantee tradeoff of Figure 3.

:class:`LPTGroup` is the ablation the paper speculates about at the end of
§5.3 ("a LPT-based algorithm may have better guarantee"): identical group
structure but LPT order in both phases.  It carries no proven guarantee —
bench E3 measures it empirically.
"""

from __future__ import annotations

from repro._validation import check_group_count
from repro.core.bounds import divisors
from repro.core.model import Instance
from repro.core.placement import Placement, group_placement
from repro.core.strategy import FixedOrderPolicy, OnlinePolicy, TwoPhaseStrategy
from repro.registry import Capabilities, Int, SweepRule, register_strategy
from repro.schedulers.list_scheduling import greedy_assign_heap

__all__ = ["LSGroup", "LPTGroup", "equal_groups"]


def equal_groups(m: int, k: int) -> list[list[int]]:
    """Partition machines ``0..m-1`` into ``k`` contiguous equal groups."""
    kk = check_group_count(k, m)
    size = m // kk
    return [list(range(g * size, (g + 1) * size)) for g in range(kk)]


@register_strategy(
    "ls_group",
    params=(Int("k", ge=1, doc="number of machine groups; must divide m"),),
    family="core",
    theorem="Theorem 4",
    capabilities=Capabilities(replication_factor="group", supports_batch=True, online_placement=True),
    sweep=SweepRule(
        order=2, enumerate=lambda m: [f"ls_group[k={k}]" for k in divisors(m)]
    ),
)
class LSGroup(TwoPhaseStrategy):
    """List Scheduling over groups (Phase 1), online LS within groups (Phase 2).

    Parameters
    ----------
    k:
        Number of groups; must divide the instance's ``m``.
    order:
        Task order used in *both* phases: ``"input"`` (the paper's List
        Scheduling, default) or ``"lpt"`` (the :class:`LPTGroup` ablation
        uses this through subclassing).
    """

    name = "ls_group"
    _order_kind = "input"

    def __init__(self, k: int) -> None:
        self.k = int(k)
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.name = f"{type(self).base_name()}[k={self.k}]"

    @classmethod
    def base_name(cls) -> str:
        return "ls_group"

    def _task_order(self, instance: Instance) -> list[int]:
        if self._order_kind == "lpt":
            return instance.lpt_order()
        return instance.input_order()

    def place(self, instance: Instance) -> Placement:
        k = check_group_count(self.k, instance.m)
        groups = equal_groups(instance.m, k)
        order = self._task_order(instance)
        # Phase 1: LS over k pseudo-machines (the groups) on the estimates.
        result = greedy_assign_heap(instance.estimates, order, k)
        group_of_task = [0] * instance.n
        for pos, j in enumerate(result.order):
            group_of_task[j] = result.assignment[pos]
        return group_placement(
            instance,
            group_of_task,
            groups,
            meta={"strategy": self.name, "k": k},
        )

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        # Phase 2: online LS within each group.  A FixedOrderPolicy over the
        # same order realizes it: an idle machine scans for the first
        # unstarted task placed on it, i.e. the first remaining task of its
        # own group.
        return FixedOrderPolicy(self._task_order(instance))

    def guarantee(self, instance: Instance) -> float:
        """Theorem 4's bound at this instance's parameters."""
        from repro.core.bounds import ub_ls_group

        return ub_ls_group(instance.alpha, instance.m, self.k)


@register_strategy(
    "lpt_group",
    params=(Int("k", ge=1, doc="number of machine groups; must divide m"),),
    family="core",
    theorem="§5.3 ablation (no proven bound)",
    capabilities=Capabilities(replication_factor="group", supports_batch=True, online_placement=True),
    sweep=SweepRule(
        order=3,
        ablation=True,
        enumerate=lambda m: [f"lpt_group[k={k}]" for k in divisors(m)],
    ),
)
class LPTGroup(LSGroup):
    """Ablation: the group strategy with LPT order in both phases.

    No guarantee is proven in the paper; empirically (bench E3) it
    dominates LS-Group on random workloads, matching the paper's remark
    that an LPT variant "would likely not have a much more interesting
    guarantee" but may behave better in practice.
    """

    _order_kind = "lpt"

    @classmethod
    def base_name(cls) -> str:
        return "lpt_group"

    def guarantee(self, instance: Instance) -> float:
        """No proven guarantee; returns Theorem 4's (the LS analysis still applies
        to Phase 1 balance, but the paper proves nothing for this variant —
        treat the value as a conjecture when reporting)."""
        from repro.core.bounds import ub_ls_group

        return ub_ls_group(instance.alpha, instance.m, self.k)
