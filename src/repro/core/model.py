"""Task and instance model for uncertain scheduling.

This module implements the problem definition of Section 3 of the paper:
a set :math:`J` of :math:`n` independent tasks must be scheduled on a set
:math:`M` of :math:`m` identical machines.  The scheduler only knows an
*estimate* :math:`\\tilde p_j` of each task's processing time; the *actual*
processing time :math:`p_j` (revealed only when the task completes)
satisfies the multiplicative band

.. math::

    \\tilde p_j / \\alpha \\le p_j \\le \\alpha \\tilde p_j

for an uncertainty factor :math:`\\alpha \\ge 1` known to the scheduler.

:class:`Task` carries an estimate and an optional memory size (used by the
memory-aware model of Section 6); :class:`Instance` bundles the tasks with
``m`` and ``alpha`` and is the single input object every Phase-1 placement
strategy consumes.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro._validation import (
    check_alpha,
    check_machine_count,
    check_non_negative_float,
    check_non_negative_int,
    check_positive_float,
)

__all__ = ["Task", "Instance", "make_instance"]


@dataclass(frozen=True, slots=True)
class Task:
    """One independent task.

    Attributes
    ----------
    tid:
        Task identifier, an index in ``range(n)`` within its instance.
    estimate:
        The estimated processing time :math:`\\tilde p_j` available to the
        scheduler before execution.  Strictly positive.
    size:
        Memory footprint :math:`s_j` of the task's input data, used by the
        memory-aware model (Section 6).  Defaults to ``0.0`` for the
        replication-bound model where memory is not measured.
    """

    tid: int
    estimate: float
    size: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative_int(self.tid, "tid")
        check_positive_float(self.estimate, "estimate")
        check_non_negative_float(self.size, "size")

    def bounds(self, alpha: float) -> tuple[float, float]:
        """Return the ``(low, high)`` band of admissible actual times."""
        a = check_alpha(alpha)
        return (self.estimate / a, self.estimate * a)

    def admits(self, actual: float, alpha: float, *, rel_tol: float = 1e-9) -> bool:
        """Whether ``actual`` is an admissible realization under ``alpha``.

        A small relative tolerance absorbs floating-point noise from
        multiplying and dividing by ``alpha``.
        """
        lo, hi = self.bounds(alpha)
        slack_lo = lo * (1.0 - rel_tol)
        slack_hi = hi * (1.0 + rel_tol)
        return slack_lo <= actual <= slack_hi


@dataclass(frozen=True)
class Instance:
    """A full problem instance: tasks, machine count and uncertainty factor.

    Instances are immutable; workload generators in :mod:`repro.workloads`
    build them, strategies consume them.  Tasks are stored in input order
    (``tasks[j].tid == j``), which matters for List Scheduling, whose output
    depends on the arrival order.
    """

    tasks: tuple[Task, ...]
    m: int
    alpha: float
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        check_machine_count(self.m)
        check_alpha(self.alpha)
        if not self.tasks:
            raise ValueError("an Instance must contain at least one task")
        for j, task in enumerate(self.tasks):
            if not isinstance(task, Task):
                raise TypeError(f"tasks[{j}] must be a Task, got {type(task).__name__}")
            if task.tid != j:
                raise ValueError(
                    f"tasks must be numbered contiguously: tasks[{j}].tid == {task.tid}"
                )

    # -- basic accessors ---------------------------------------------------
    @property
    def n(self) -> int:
        """Number of tasks."""
        return len(self.tasks)

    @property
    def machines(self) -> range:
        """Machine identifiers ``0..m-1``."""
        return range(self.m)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def task(self, tid: int) -> Task:
        """Return the task with identifier ``tid``."""
        return self.tasks[tid]

    # -- aggregate estimate statistics --------------------------------------
    @property
    def estimates(self) -> tuple[float, ...]:
        """All estimated processing times, in task order."""
        return tuple(t.estimate for t in self.tasks)

    @property
    def sizes(self) -> tuple[float, ...]:
        """All task sizes, in task order."""
        return tuple(t.size for t in self.tasks)

    @property
    def total_estimate(self) -> float:
        """:math:`\\sum_j \\tilde p_j`."""
        return math.fsum(t.estimate for t in self.tasks)

    @property
    def max_estimate(self) -> float:
        """:math:`\\max_j \\tilde p_j`."""
        return max(t.estimate for t in self.tasks)

    @property
    def total_size(self) -> float:
        """:math:`\\sum_j s_j`."""
        return math.fsum(t.size for t in self.tasks)

    def average_estimated_load(self) -> float:
        """The trivial makespan lower bound :math:`\\sum_j \\tilde p_j / m`."""
        return self.total_estimate / self.m

    # -- ordering helpers used by LPT/LS -------------------------------------
    def lpt_order(self) -> list[int]:
        """Task ids sorted by non-increasing estimate (ties by id).

        This is the processing order of both LPT-No Choice (Phase 1) and
        LPT-No Restriction (Phase 2).
        """
        return sorted(range(self.n), key=lambda j: (-self.tasks[j].estimate, j))

    def spt_order(self) -> list[int]:
        """Task ids sorted by non-decreasing estimate (ties by id)."""
        return sorted(range(self.n), key=lambda j: (self.tasks[j].estimate, j))

    def input_order(self) -> list[int]:
        """Task ids in input (arrival) order — the order List Scheduling uses."""
        return list(range(self.n))

    # -- derivation ----------------------------------------------------------
    def with_alpha(self, alpha: float) -> "Instance":
        """A copy of this instance under a different uncertainty factor."""
        return Instance(self.tasks, self.m, check_alpha(alpha), name=self.name)

    def with_m(self, m: int) -> "Instance":
        """A copy of this instance with a different machine count."""
        return Instance(self.tasks, check_machine_count(m), self.alpha, name=self.name)

    def with_sizes(self, sizes: Sequence[float]) -> "Instance":
        """A copy where task ``j`` gets memory size ``sizes[j]``."""
        if len(sizes) != self.n:
            raise ValueError(f"sizes must have length {self.n}, got {len(sizes)}")
        tasks = tuple(
            Task(t.tid, t.estimate, check_non_negative_float(s, f"sizes[{t.tid}]"))
            for t, s in zip(self.tasks, sizes)
        )
        return Instance(tasks, self.m, self.alpha, name=self.name)

    def subset(self, tids: Iterable[int]) -> "Instance":
        """A new instance containing only ``tids``, renumbered contiguously.

        Useful for split-and-schedule algorithms (e.g. SABO/ABO schedule the
        memory-intensive and time-intensive subsets through different
        sub-schedulers).
        """
        chosen = sorted(set(tids))
        if not chosen:
            raise ValueError("subset must contain at least one task id")
        for tid in chosen:
            if not 0 <= tid < self.n:
                raise ValueError(f"task id {tid} out of range 0..{self.n - 1}")
        tasks = tuple(
            Task(new_id, self.tasks[old_id].estimate, self.tasks[old_id].size)
            for new_id, old_id in enumerate(chosen)
        )
        return Instance(tasks, self.m, self.alpha, name=self.name)


def make_instance(
    estimates: Sequence[float],
    m: int,
    alpha: float = 1.0,
    *,
    sizes: Sequence[float] | None = None,
    name: str = "",
) -> Instance:
    """Convenience constructor from plain sequences.

    Parameters
    ----------
    estimates:
        Estimated processing times :math:`\\tilde p_j`; one task per entry.
    m:
        Number of identical machines.
    alpha:
        Uncertainty factor (:math:`\\alpha \\ge 1`).
    sizes:
        Optional memory sizes :math:`s_j` (same length as ``estimates``).
    name:
        Optional label carried through analysis reports.
    """
    ests = [check_positive_float(e, f"estimates[{i}]") for i, e in enumerate(estimates)]
    if not ests:
        raise ValueError("estimates must be non-empty")
    if sizes is None:
        tasks = tuple(Task(j, e) for j, e in enumerate(ests))
    else:
        if len(sizes) != len(ests):
            raise ValueError(
                f"sizes must have the same length as estimates "
                f"({len(sizes)} != {len(ests)})"
            )
        tasks = tuple(
            Task(j, e, check_non_negative_float(s, f"sizes[{j}]"))
            for j, (e, s) in enumerate(zip(ests, sizes))
        )
    return Instance(tasks, check_machine_count(m), check_alpha(alpha), name=name)
