"""Adversaries: worst-case realizations against a placement.

Theorem 1's lower bound is proved with an adversary that (i) feeds the
algorithm :math:`\\lambda m` unit-estimate tasks, (ii) watches the Phase-1
placement, (iii) inflates every task on the most loaded machine by
:math:`\\alpha` and deflates everything else by :math:`1/\\alpha`.  This
module implements that adversary exactly, plus stronger general-purpose
worst-case realizers used by the empirical benches:

``theorem1_instance`` / ``theorem1_realization``
    The proof's construction, verbatim.
``inflate_critical_machine``
    The same inflate/deflate move against *any* no-replication placement
    (this is also the worst case invoked in Theorem 2's proof).
``exhaustive_worst_case``
    For tiny instances: search all :math:`2^n` extreme realizations
    (factors in :math:`\\{\\alpha, 1/\\alpha\\}`) for the one maximizing
    the measured ratio of a given strategy, computing the exact optimum
    for each candidate.  Extreme-point search is principled here: for a
    fixed assignment the ratio's numerator is linear in each :math:`p_j`
    and the denominator is a min over assignments of maxima of linear
    functions, so maximizers sit at band corners.
``greedy_worst_case``
    A scalable heuristic for the same question: start from all-deflated
    and flip tasks to inflated while the ratio improves.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence

from repro._validation import check_machine_count, check_positive_int
from repro.core.model import Instance, make_instance
from repro.core.placement import Placement
from repro.exact.optimal import optimal_makespan
from repro.uncertainty.realization import Realization, factors_realization

__all__ = [
    "theorem1_instance",
    "theorem1_realization",
    "theorem1_optimal_upper_bound",
    "inflate_critical_machine",
    "exhaustive_worst_case",
    "greedy_worst_case",
]


def theorem1_instance(lam: int, m: int, alpha: float) -> Instance:
    """The Theorem-1 adversary's instance: :math:`\\lambda m` unit tasks.

    Every estimate is 1, so any no-replication placement must put at least
    :math:`\\lambda` tasks on some machine.
    """
    check_positive_int(lam, "lam")
    check_machine_count(m)
    return make_instance([1.0] * (lam * m), m, alpha, name=f"theorem1(lam={lam},m={m})")


def theorem1_realization(placement: Placement) -> Realization:
    """The adversary's move: inflate the most (estimated-)loaded machine.

    Requires a no-replication placement (the Theorem-1 setting,
    :math:`|M_j| = 1`).  Tasks on the machine with the largest estimated
    load get factor :math:`\\alpha`; all others get :math:`1/\\alpha`.
    Ties go to the smallest machine id (deterministic).
    """
    inst = placement.instance
    assignment = placement.fixed_assignment()
    loads = placement.estimated_load_per_machine()
    target = max(range(inst.m), key=lambda i: (loads[i], -i))
    a = inst.alpha
    factors = [a if assignment[j] == target else 1.0 / a for j in range(inst.n)]
    return factors_realization(inst, factors, label="theorem1_adversary")


def theorem1_optimal_upper_bound(lam: int, m: int, alpha: float, b: int) -> float:
    """The proof's upper bound on :math:`C^*_{max}` for the adversarial instance.

    With ``b`` tasks on the inflated machine:
    :math:`C^* \\le \\lceil (\\lambda m - b)/m \\rceil / \\alpha +
    \\alpha \\lceil b/m \\rceil` — the "spread both kinds evenly" schedule
    from the proof.  Used by bench E2 to reproduce the bound's algebra.
    """
    import math

    check_positive_int(lam, "lam")
    check_machine_count(m)
    if b < lam:
        raise ValueError(f"b must be >= lambda (feasibility), got b={b} < lam={lam}")
    n = lam * m
    return math.ceil((n - b) / m) / alpha + alpha * math.ceil(b / m)


def inflate_critical_machine(placement: Placement) -> Realization:
    """Worst-case move of Theorem 2's proof against any no-replication placement.

    Identical to :func:`theorem1_realization` but named for the Theorem-2
    context: the machine reaching the *estimated* makespan sees its tasks
    run :math:`\\alpha` times longer, all other tasks finish
    :math:`\\alpha` times earlier.
    """
    return theorem1_realization(placement).map_factors(
        lambda j, f: f, label="inflate_critical"
    )


def exhaustive_worst_case(
    instance: Instance,
    run_strategy: Callable[[Realization], float],
    *,
    max_n: int = 14,
) -> tuple[Realization, float]:
    """Search all extreme realizations for the max measured ratio.

    Parameters
    ----------
    instance:
        The instance; ``2**n`` candidates are tried, so ``n`` is capped.
    run_strategy:
        Maps a realization to the strategy's achieved makespan (the caller
        bakes in placement + policy + simulation).

    Returns
    -------
    (worst realization, worst ratio) where ratio is the strategy makespan
    divided by the *exact* clairvoyant optimum of that realization.
    """
    if instance.n > max_n:
        raise ValueError(
            f"exhaustive search over 2^{instance.n} realizations refused "
            f"(max_n={max_n}); use greedy_worst_case"
        )
    a = instance.alpha
    best_ratio = -1.0
    best_real: Realization | None = None
    for bits in itertools.product((1.0 / a, a), repeat=instance.n):
        real = factors_realization(instance, list(bits), label="exhaustive")
        c_max = run_strategy(real)
        opt = optimal_makespan(real.actuals, instance.m)
        ratio = c_max / opt.value
        if ratio > best_ratio:
            best_ratio = ratio
            best_real = real
    assert best_real is not None
    return best_real, best_ratio


def greedy_worst_case(
    instance: Instance,
    run_strategy: Callable[[Realization], float],
    *,
    passes: int = 3,
    start_factors: Sequence[float] | None = None,
) -> tuple[Realization, float]:
    """Local-search adversary: flip task factors between band extremes.

    Starts from all-deflated (or ``start_factors``) and repeatedly flips
    the single task whose flip most increases the measured ratio, for up
    to ``passes`` full sweeps.  Ratios use the exact optimum when
    affordable and the combined lower bound otherwise (see
    :func:`repro.exact.optimal.optimal_makespan`), so reported ratios are
    conservative (never understate the adversary's achievement... they may
    overstate it on large instances, which is fine for a *lower* bound
    probe but is flagged by the returned realization's label).
    """
    a = instance.alpha
    factors = (
        [1.0 / a] * instance.n if start_factors is None else [float(f) for f in start_factors]
    )

    def ratio_of(fs: Sequence[float]) -> float:
        real = factors_realization(instance, fs, label="greedy_adversary")
        c_max = run_strategy(real)
        opt = optimal_makespan(real.actuals, instance.m)
        return c_max / opt.value

    current = ratio_of(factors)
    for _ in range(passes):
        improved = False
        for j in range(instance.n):
            old = factors[j]
            factors[j] = a if old != a else 1.0 / a
            cand = ratio_of(factors)
            if cand > current + 1e-12:
                current = cand
                improved = True
            else:
                factors[j] = old
        if not improved:
            break
    return factors_realization(instance, factors, label="greedy_adversary"), current
