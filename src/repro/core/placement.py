"""Phase-1 output: the data placement (the sets :math:`M_j`).

A :class:`Placement` records, for every task, the set of machines holding a
replica of its input data.  Phase 2 may only run a task on a machine in its
set — the simulator enforces this.  The placement also carries everything
the replication-cost models measure:

* the **replication bound model** looks at :math:`\\max_j |M_j|` (and the
  full histogram of replica counts);
* the **memory-aware model** charges each replica its task's size
  :math:`s_j` to the hosting machine and looks at
  :math:`Mem_{max} = \\max_i \\sum_{j : i \\in M_j} s_j`.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.model import Instance

__all__ = ["Placement", "single_machine_placement", "everywhere_placement", "group_placement"]


@dataclass(frozen=True)
class Placement:
    """An immutable map ``task id -> frozenset of machine ids``.

    Attributes
    ----------
    instance:
        The instance this placement belongs to.
    machine_sets:
        ``machine_sets[j]`` is :math:`M_j`, the machines allowed to run
        task ``j``.  Every set must be a non-empty subset of
        ``range(instance.m)``.
    meta:
        Free-form annotations a strategy wants to pass from Phase 1 to its
        Phase-2 policy (e.g. the group index of each task for LS-Group, or
        the fixed machine for No-Replication strategies).  Not interpreted
        by this class.
    """

    instance: Instance
    machine_sets: tuple[frozenset[int], ...]
    meta: Mapping[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        inst = self.instance
        if len(self.machine_sets) != inst.n:
            raise ValueError(
                f"placement must cover all {inst.n} tasks, got {len(self.machine_sets)}"
            )
        for j, ms in enumerate(self.machine_sets):
            if not isinstance(ms, frozenset):
                raise TypeError(f"machine_sets[{j}] must be a frozenset, got {type(ms).__name__}")
            if not ms:
                raise ValueError(f"task {j} has an empty machine set — it could never run")
            for i in ms:
                if not 0 <= i < inst.m:
                    raise ValueError(
                        f"machine_sets[{j}] contains machine {i}, outside 0..{inst.m - 1}"
                    )

    # -- basic accessors -------------------------------------------------------
    def machines_for(self, tid: int) -> frozenset[int]:
        """:math:`M_j` for task ``tid``."""
        return self.machine_sets[tid]

    def __getitem__(self, tid: int) -> frozenset[int]:
        return self.machine_sets[tid]

    def allows(self, tid: int, machine: int) -> bool:
        """Whether task ``tid`` may run on ``machine``."""
        return machine in self.machine_sets[tid]

    def tasks_on(self, machine: int) -> list[int]:
        """Task ids with a replica on ``machine`` (i.e. runnable there)."""
        return [j for j, ms in enumerate(self.machine_sets) if machine in ms]

    # -- replication-bound metrics -----------------------------------------------
    def replication_count(self, tid: int) -> int:
        """:math:`|M_j|` for task ``tid``."""
        return len(self.machine_sets[tid])

    def max_replication(self) -> int:
        """:math:`\\max_j |M_j|` — the replication bound this placement uses."""
        return max(len(ms) for ms in self.machine_sets)

    def min_replication(self) -> int:
        """:math:`\\min_j |M_j|`."""
        return min(len(ms) for ms in self.machine_sets)

    def total_replicas(self) -> int:
        """:math:`\\sum_j |M_j|` — total number of data copies in the system."""
        return sum(len(ms) for ms in self.machine_sets)

    def replication_histogram(self) -> dict[int, int]:
        """``{replica_count: number_of_tasks}``."""
        return dict(Counter(len(ms) for ms in self.machine_sets))

    def is_no_replication(self) -> bool:
        """Whether every task lives on exactly one machine (Strategy 1)."""
        return self.max_replication() == 1

    def is_full_replication(self) -> bool:
        """Whether every task lives on all machines (Strategy 2)."""
        return self.min_replication() == self.instance.m

    # -- memory-aware metrics -------------------------------------------------------
    def memory_per_machine(self) -> list[float]:
        """:math:`Mem_i = \\sum_{j: i \\in M_j} s_j` for every machine.

        Every *replica* of a task charges the full task size to its host,
        matching the paper's memory model where replication multiplies the
        footprint.
        """
        mem = [0.0] * self.instance.m
        for j, ms in enumerate(self.machine_sets):
            s = self.instance.tasks[j].size
            for i in ms:
                mem[i] += s
        return mem

    def memory_max(self) -> float:
        """:math:`Mem_{max} = \\max_i Mem_i`."""
        return max(self.memory_per_machine())

    def total_memory(self) -> float:
        """Total memory footprint across the system (all replicas)."""
        return math.fsum(
            self.instance.tasks[j].size * len(ms) for j, ms in enumerate(self.machine_sets)
        )

    # -- estimated load views (used by tests and proofs' bookkeeping) -----------------
    def fixed_assignment(self) -> list[int]:
        """For a no-replication placement, the machine of each task.

        Raises if any task has more than one replica.
        """
        assignment = []
        for j, ms in enumerate(self.machine_sets):
            if len(ms) != 1:
                raise ValueError(
                    f"fixed_assignment() requires |M_j|=1 for all tasks; "
                    f"task {j} has {len(ms)} replicas"
                )
            assignment.append(next(iter(ms)))
        return assignment

    def estimated_load_per_machine(self) -> list[float]:
        """For a no-replication placement, estimated load of each machine."""
        loads = [0.0] * self.instance.m
        for j, machine in enumerate(self.fixed_assignment()):
            loads[machine] += self.instance.tasks[j].estimate
        return loads

    # -- derivation --------------------------------------------------------------------
    def restrict(self, tid: int, machines: Iterable[int]) -> "Placement":
        """A copy with task ``tid`` restricted to ``machines``."""
        new_set = frozenset(machines)
        sets = list(self.machine_sets)
        sets[tid] = new_set
        return Placement(self.instance, tuple(sets), meta=self.meta)


# -- canonical constructors -----------------------------------------------------------


def single_machine_placement(
    instance: Instance,
    assignment: Sequence[int],
    meta: Mapping[str, object] | None = None,
) -> Placement:
    """No-replication placement: task ``j`` lives only on ``assignment[j]``."""
    if len(assignment) != instance.n:
        raise ValueError(
            f"assignment must cover all {instance.n} tasks, got {len(assignment)}"
        )
    sets = tuple(frozenset((int(i),)) for i in assignment)
    base_meta: dict[str, object] = {"assignment": tuple(int(i) for i in assignment)}
    if meta:
        base_meta.update(meta)
    return Placement(instance, sets, meta=base_meta)


def everywhere_placement(
    instance: Instance, meta: Mapping[str, object] | None = None
) -> Placement:
    """Full-replication placement: every task on every machine (Strategy 2)."""
    all_machines = frozenset(range(instance.m))
    sets = tuple(all_machines for _ in range(instance.n))
    return Placement(instance, sets, meta=dict(meta or {}))


def group_placement(
    instance: Instance,
    group_of_task: Sequence[int],
    groups: Sequence[Sequence[int]],
    meta: Mapping[str, object] | None = None,
) -> Placement:
    """Group placement: task ``j`` is replicated on every machine of its group.

    Parameters
    ----------
    group_of_task:
        ``group_of_task[j]`` is the index (into ``groups``) of the group
        task ``j`` was assigned to in Phase 1.
    groups:
        A partition of ``range(instance.m)`` into disjoint machine groups.
    """
    if len(group_of_task) != instance.n:
        raise ValueError(
            f"group_of_task must cover all {instance.n} tasks, got {len(group_of_task)}"
        )
    group_sets = [frozenset(int(i) for i in g) for g in groups]
    seen: set[int] = set()
    for gi, g in enumerate(group_sets):
        if not g:
            raise ValueError(f"group {gi} is empty")
        overlap = seen & g
        if overlap:
            raise ValueError(f"groups must be disjoint; machines {sorted(overlap)} repeated")
        seen |= g
    if seen != set(range(instance.m)):
        missing = sorted(set(range(instance.m)) - seen)
        raise ValueError(f"groups must cover all machines; missing {missing}")
    sets = []
    for j, gi in enumerate(group_of_task):
        gi = int(gi)
        if not 0 <= gi < len(group_sets):
            raise ValueError(f"group_of_task[{j}]={gi} out of range 0..{len(group_sets) - 1}")
        sets.append(group_sets[gi])
    base_meta: dict[str, object] = {
        "group_of_task": tuple(int(g) for g in group_of_task),
        "groups": tuple(tuple(sorted(g)) for g in group_sets),
    }
    if meta:
        base_meta.update(meta)
    return Placement(instance, tuple(sets), meta=base_meta)
