"""The replication / guarantee tradeoff of Figure 3 (Section 5.4).

Figure 3 of the paper plots, for ``m = 210`` and
``α ∈ {1.1, 1.5, 2}``, the guarantee of every strategy against the number
of replicas it uses:

* **LPT-No Choice** — one point at replication 1;
* the Theorem-1 **lower bound** — a horizontal reference at replication 1
  (no algorithm can beat it without replication);
* **LPT-No Restriction** — one point at replication ``m``;
* **LS-Group** — one point per divisor ``k`` of ``m`` at replication
  ``m/k``.

:func:`ratio_replication_series` generates exactly those series;
:func:`tradeoff_findings` extracts the qualitative statements the paper
makes about each α (used by the Figure-3 bench to assert the reproduced
shape matches the paper's narrative).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._validation import check_alpha, check_machine_count
from repro.core.bounds import (
    divisors,
    lb_no_replication,
    ub_lpt_no_choice,
    ub_lpt_no_restriction,
    ub_ls_group,
)

__all__ = ["TradeoffPoint", "ratio_replication_series", "tradeoff_findings"]


@dataclass(frozen=True, slots=True)
class TradeoffPoint:
    """One point in the (replication, guarantee) plane."""

    strategy: str
    replication: int
    ratio: float
    k: int | None = None  # group count for LS-Group points


def ratio_replication_series(alpha: float, m: int) -> dict[str, list[TradeoffPoint]]:
    """All Figure-3 series at ``(alpha, m)``.

    Returns a dict with keys ``"lower_bound"``, ``"lpt_no_choice"``,
    ``"lpt_no_restriction"``, ``"ls_group"``; the LS-Group series is
    sorted by replication ascending (``k`` descending).
    """
    a = check_alpha(alpha)
    mm = check_machine_count(m)
    group_points = [
        TradeoffPoint("ls_group", mm // k, ub_ls_group(a, mm, k), k=k)
        for k in sorted(divisors(mm), reverse=True)
    ]
    return {
        "lower_bound": [TradeoffPoint("lower_bound", 1, lb_no_replication(a, mm))],
        "lpt_no_choice": [TradeoffPoint("lpt_no_choice", 1, ub_lpt_no_choice(a, mm))],
        "lpt_no_restriction": [
            TradeoffPoint("lpt_no_restriction", mm, ub_lpt_no_restriction(a, mm))
        ],
        "ls_group": group_points,
    }


def tradeoff_findings(alpha: float, m: int) -> dict[str, float | bool | int | None]:
    """Quantified versions of the paper's Figure-3 observations.

    Keys
    ----
    ``gap_lb_vs_no_choice``
        Gap between LPT-No Choice's guarantee and the Theorem-1 lower
        bound ("significant gap" claim at α = 1.1).
    ``full_vs_one_group``
        Guarantee difference LS-Group(k=1) − LPT-No Restriction (positive
        when full replication via LPT order beats one LS group; the paper
        notes the difference vanishes by α = 1.5).
    ``min_replicas_to_beat_no_choice``
        Smallest replication ``m/k`` over divisors with LS-Group guarantee
        strictly below LPT-No Choice's (the "better approximation with
        less than 50 replications" claim at α = 2); ``None`` if none.
    ``ratio_at_replication_3``
        LS-Group guarantee at the divisor giving replication 3 (α = 2
        narrative: "less than 6 with only replicating the data on 3
        machines"); ``None`` if 3 does not divide ``m``.
    """
    a = check_alpha(alpha)
    mm = check_machine_count(m)
    series = ratio_replication_series(a, mm)
    no_choice = series["lpt_no_choice"][0].ratio
    lower = series["lower_bound"][0].ratio
    full = series["lpt_no_restriction"][0].ratio
    one_group = next(p for p in series["ls_group"] if p.k == 1).ratio

    beat: int | None = None
    for p in sorted(series["ls_group"], key=lambda p: p.replication):
        if p.ratio < no_choice:
            beat = p.replication
            break

    at3 = next((p.ratio for p in series["ls_group"] if p.replication == 3), None)

    return {
        "gap_lb_vs_no_choice": no_choice - lower,
        "full_vs_one_group": one_group - full,
        "min_replicas_to_beat_no_choice": beat,
        "ratio_at_replication_3": at3,
        "no_choice_ratio": no_choice,
        "lower_bound_ratio": lower,
        "full_replication_ratio": full,
    }
