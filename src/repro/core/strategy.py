"""The two-phase strategy interface (Phase 1 placement + Phase 2 policy).

The paper's problem is played in two phases and this module encodes that
split as the library's central abstraction:

* :class:`PlacementStrategy` — Phase 1.  Sees only estimates, ``m`` and
  ``alpha``; outputs a :class:`~repro.core.placement.Placement` (the sets
  :math:`M_j`).
* :class:`OnlinePolicy` — Phase 2.  Consulted by the discrete-event engine
  every time a machine becomes idle; sees a :class:`SchedulerView` that
  exposes *only* semi-clairvoyant information (estimates, the placement,
  which tasks completed and their now-revealed actual durations — never
  the actual duration of an unfinished task).
* :class:`TwoPhaseStrategy` — bundles both and is what the experiment
  harness runs.

The information hiding is structural: :class:`SchedulerView` simply has no
accessor for unrevealed durations, so a policy cannot cheat without
reaching into engine internals (tests monkeypatch-proof the public path).
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from typing import Protocol, runtime_checkable

from repro.core.model import Instance
from repro.core.placement import Placement

__all__ = ["SchedulerView", "OnlinePolicy", "PlacementStrategy", "TwoPhaseStrategy"]


class SchedulerView:
    """What a Phase-2 policy is allowed to observe.

    Built and mutated by the simulation engine; read by policies.  All
    mutating methods are private-by-convention (engine only).
    """

    def __init__(self, instance: Instance, placement: Placement) -> None:
        self._instance = instance
        self._placement = placement
        self._started: set[int] = set()
        self._completed: dict[int, float] = {}  # tid -> revealed actual time
        self._running: dict[int, int] = {}  # tid -> machine
        self._now = 0.0
        # None = no release tracking (everything available at time 0);
        # otherwise the set of already-released task ids.
        self._released: set[int] | None = None
        # Bumped whenever a task is aborted (machine failure); policies
        # with cached dispatch state use it to invalidate their caches.
        self._abort_epoch = 0
        self._failed_machines: set[int] = set()

    # -- static problem data (always visible) ----------------------------------
    @property
    def instance(self) -> Instance:
        return self._instance

    @property
    def placement(self) -> Placement:
        return self._placement

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def estimate(self, tid: int) -> float:
        """Estimated processing time :math:`\\tilde p_j` (always known)."""
        return self._instance.tasks[tid].estimate

    def allowed_machines(self, tid: int) -> frozenset[int]:
        return self._placement.machines_for(tid)

    # -- dynamic, semi-clairvoyant data ------------------------------------------
    def is_started(self, tid: int) -> bool:
        return tid in self._started

    def is_completed(self, tid: int) -> bool:
        return tid in self._completed

    def is_released(self, tid: int) -> bool:
        """Whether task ``tid`` has been released (always True without
        release-time tracking — the paper's model)."""
        return self._released is None or tid in self._released

    @property
    def abort_epoch(self) -> int:
        """Number of task aborts so far (machine-failure extension).

        A policy that caches "which tasks have started" must re-read on
        epoch change: an aborted task becomes unstarted again.
        """
        return self._abort_epoch

    def is_failed(self, machine: int) -> bool:
        """Whether ``machine`` is currently down (it may recover later).

        Crash-stop machines stay failed forever; crash-recover machines
        (``repro.faults`` extension) leave this set when they rejoin.
        """
        return machine in self._failed_machines

    def revealed_actual(self, tid: int) -> float:
        """Actual time of a *completed* task.

        Raises ``KeyError`` for running or unstarted tasks — that
        information does not exist yet in the paper's model.
        """
        return self._completed[tid]

    def running_on(self, machine: int) -> int | None:
        """Task currently running on ``machine``, if any."""
        for tid, i in self._running.items():
            if i == machine:
                return tid
        return None

    def pending_tasks(self) -> list[int]:
        """Released-but-unstarted task ids, ascending."""
        return [
            j
            for j in range(self._instance.n)
            if j not in self._started and self.is_released(j)
        ]

    def pending_on(self, machine: int) -> list[int]:
        """Released, unstarted tasks whose data is on ``machine``."""
        return [j for j in self.pending_tasks() if self._placement.allows(j, machine)]

    # -- engine-side mutation (single underscore: internal API) ---------------------
    def _advance(self, time: float) -> None:
        self._now = time

    def _enable_release_tracking(self, initially_released: set[int]) -> None:
        self._released = set(initially_released)

    def _mark_released(self, tid: int) -> None:
        if self._released is not None:
            self._released.add(tid)

    def _mark_started(self, tid: int, machine: int) -> None:
        self._started.add(tid)
        self._running[tid] = machine

    def _mark_completed(self, tid: int, actual: float) -> None:
        self._running.pop(tid, None)
        self._completed[tid] = actual

    def _mark_aborted(self, tid: int) -> None:
        """A running task's machine failed; the task reverts to unstarted."""
        self._running.pop(tid, None)
        self._started.discard(tid)
        self._abort_epoch += 1

    def _mark_machine_failed(self, machine: int) -> None:
        self._failed_machines.add(machine)

    def _mark_machine_recovered(self, machine: int) -> None:
        """A crashed machine finished its downtime and rejoined."""
        self._failed_machines.discard(machine)


@runtime_checkable
class OnlinePolicy(Protocol):
    """Phase-2 dispatch policy.

    ``select`` is called whenever ``machine`` becomes idle; it must return
    the id of an unstarted task whose placement allows ``machine``, or
    ``None`` to leave the machine idle.  With all tasks released at time 0
    a ``None`` retires the machine permanently (our policies only return
    ``None`` when they have nothing left for that machine).
    """

    def select(self, machine: int, view: SchedulerView) -> int | None:
        """Pick the next task for ``machine``, or ``None``."""
        ...


class PlacementStrategy(abc.ABC):
    """Phase 1: place task data using only estimates, ``m`` and ``alpha``."""

    #: Human-readable name used in tables and plots.
    name: str = "placement"

    @abc.abstractmethod
    def place(self, instance: Instance) -> Placement:
        """Compute the data placement (the sets :math:`M_j`)."""


class TwoPhaseStrategy(PlacementStrategy):
    """A complete strategy: placement + the policy that schedules within it."""

    @abc.abstractmethod
    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        """Build the Phase-2 policy for a placement produced by :meth:`place`.

        Called once per simulation; policies may carry mutable dispatch
        state (e.g. a cursor into the LPT order) that lives for one run.
        """

    def replication_of(self, instance: Instance) -> int:
        """Convenience: ``max_j |M_j|`` of this strategy's placement."""
        return self.place(instance).max_replication()


class FixedOrderPolicy:
    """Reusable Phase-2 policy: dispatch pending tasks in a fixed order.

    When ``machine`` idles, scan ``order`` for the first unstarted task
    allowed on it.  With an everywhere-placement and LPT order this *is*
    the paper's LPT-No Restriction Phase 2; with group placements it is
    within-group List Scheduling in the given order.

    A per-machine cursor would be wrong here: an earlier task may still be
    waiting because its machine set excludes the machines that idled so
    far, so the scan must restart from the first unstarted task.  The scan
    keeps a global low-water mark to stay near O(1) amortized for
    everywhere-placements.
    """

    def __init__(self, order: Sequence[int]) -> None:
        self._order = list(order)
        self._first_unstarted = 0  # low-water mark into _order
        self._seen_abort_epoch = 0

    @property
    def order(self) -> tuple[int, ...]:
        """The fixed dispatch order (read-only view).

        The batch backend (:mod:`repro.simulation.batch`) replays this
        order as a vectorized completion sweep instead of event-by-event.
        """
        return tuple(self._order)

    def select(self, machine: int, view: SchedulerView) -> int | None:
        order = self._order
        if view.abort_epoch != self._seen_abort_epoch:
            # An abort reverted some task to unstarted; the low-water mark
            # may have passed it, so rescan from the top.
            self._first_unstarted = 0
            self._seen_abort_epoch = view.abort_epoch
        # Advance the low-water mark past globally started tasks.
        while self._first_unstarted < len(order) and view.is_started(
            order[self._first_unstarted]
        ):
            self._first_unstarted += 1
        for pos in range(self._first_unstarted, len(order)):
            tid = order[pos]
            if (
                not view.is_started(tid)
                and view.is_released(tid)
                and view.placement.allows(tid, machine)
            ):
                return tid
        return None
