"""Closed-form guarantees and lower bounds from the paper.

Every theorem of the paper as an executable formula, with the exact
parameter constraints the statements carry.  These drive the summary
tables (Tables 1 and 2), the tradeoff figures (Figures 3 and 6), and the
"measured ratio ≤ guarantee" property tests.

Replication bound model
-----------------------
========================  ==============================================================
Theorem 1 (lower bound)   :func:`lb_no_replication` = :math:`\\alpha^2 m/(\\alpha^2+m-1)`
Corollary 1               :func:`lb_no_replication_limit` = :math:`\\alpha^2`
Theorem 2 (LPT-No Choice) :func:`ub_lpt_no_choice` = :math:`2\\alpha^2 m/(2\\alpha^2+m-1)`
Theorem 3 (LPT-No Restr.) :func:`ub_lpt_no_restriction_raw` = :math:`1+\\frac{m-1}{m}\\frac{\\alpha^2}{2}`
Graham LS                 :func:`ub_graham_ls` = :math:`2-1/m`
combined Strategy 2       :func:`ub_lpt_no_restriction` = min of the two above
Theorem 4 (LS-Group)      :func:`ub_ls_group` = :math:`\\frac{k\\alpha^2}{\\alpha^2+k-1}(1+\\frac{k-1}{m})+\\frac{m-k}{m}`
========================  ==============================================================

Memory-aware model
------------------
========================  ==============================================================
Theorem 5 (SABO makespan) :func:`sabo_makespan_guarantee` = :math:`(1+\\Delta)\\alpha^2\\rho_1`
Theorem 6 (SABO memory)   :func:`sabo_memory_guarantee` = :math:`(1+1/\\Delta)\\rho_2`
Theorem 7 (ABO makespan)  :func:`abo_makespan_guarantee` = :math:`2-1/m+\\Delta\\alpha^2\\rho_1`
Theorem 8 (ABO memory)    :func:`abo_memory_guarantee` = :math:`(1+m/\\Delta)\\rho_2`
========================  ==============================================================
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro._validation import (
    check_alpha,
    check_delta,
    check_group_count,
    check_machine_count,
    check_positive_float,
)

__all__ = [
    "lb_no_replication",
    "lb_no_replication_limit",
    "ub_lpt_no_choice",
    "ub_lpt_no_restriction_raw",
    "ub_lpt_no_restriction",
    "ub_graham_ls",
    "ub_lpt_classic",
    "ub_ls_group",
    "ls_group_crossover_alpha",
    "min_groups_for_ratio",
    "sabo_makespan_guarantee",
    "sabo_memory_guarantee",
    "abo_makespan_guarantee",
    "abo_memory_guarantee",
    "abo_beats_sabo_on_makespan",
    "zenith_impossibility_memory",
    "guarantee_table_row",
]


# ---------------------------------------------------------------------------
# Replication bound model
# ---------------------------------------------------------------------------

def lb_no_replication(alpha: float, m: int) -> float:
    """Theorem 1: no online algorithm with :math:`|M_j|=1` beats this ratio.

    :math:`\\alpha^2 m / (\\alpha^2 + m - 1)`.
    """
    a = check_alpha(alpha)
    mm = check_machine_count(m)
    a2 = a * a
    return a2 * mm / (a2 + mm - 1)


def lb_no_replication_limit(alpha: float) -> float:
    """Corollary 1: the Theorem-1 bound as :math:`m \\to \\infty` is :math:`\\alpha^2`."""
    a = check_alpha(alpha)
    return a * a


def ub_lpt_no_choice(alpha: float, m: int) -> float:
    """Theorem 2: competitive ratio of LPT-No Choice.

    :math:`2\\alpha^2 m / (2\\alpha^2 + m - 1)`.
    """
    a = check_alpha(alpha)
    mm = check_machine_count(m)
    a2 = a * a
    return 2.0 * a2 * mm / (2.0 * a2 + mm - 1)


def ub_lpt_no_restriction_raw(alpha: float, m: int) -> float:
    """Theorem 3 raw form: :math:`1 + \\frac{m-1}{m}\\cdot\\frac{\\alpha^2}{2}`."""
    a = check_alpha(alpha)
    mm = check_machine_count(m)
    return 1.0 + (mm - 1) / mm * (a * a) / 2.0


def ub_graham_ls(m: int) -> float:
    """Graham's List Scheduling guarantee :math:`2 - 1/m` (holds under any α)."""
    mm = check_machine_count(m)
    return 2.0 - 1.0 / mm


def ub_lpt_classic(m: int) -> float:
    """Graham's offline LPT guarantee :math:`4/3 - 1/(3m)` (certain times)."""
    mm = check_machine_count(m)
    return 4.0 / 3.0 - 1.0 / (3.0 * mm)


def ub_lpt_no_restriction(alpha: float, m: int) -> float:
    """Combined Strategy-2 guarantee.

    LPT-No Restriction is a List Scheduling variant, so the better of the
    Theorem-3 bound and Graham's :math:`2-1/m` applies:
    :math:`\\min(1 + \\frac{m-1}{m}\\frac{\\alpha^2}{2},\\ 2 - \\frac 1 m)`.
    """
    return min(ub_lpt_no_restriction_raw(alpha, m), ub_graham_ls(m))


def ub_ls_group(alpha: float, m: int, k: int) -> float:
    """Theorem 4: competitive ratio of LS-Group with ``k`` groups.

    :math:`\\frac{k\\alpha^2}{\\alpha^2+k-1}\\left(1+\\frac{k-1}{m}\\right)
    + \\frac{m-k}{m}`; requires ``k | m``.
    """
    a = check_alpha(alpha)
    mm = check_machine_count(m)
    kk = check_group_count(k, mm)
    a2 = a * a
    return (kk * a2) / (a2 + kk - 1) * (1.0 + (kk - 1) / mm) + (mm - kk) / mm


def ls_group_crossover_alpha() -> float:
    """The α where Theorem 3's raw bound meets Graham's ``2-1/m``: :math:`\\sqrt 2`.

    For :math:`\\alpha^2 < 2` LPT-No Restriction's specific bound is the
    better one; above it Graham's bound takes over (paper, end of §5.2).
    """
    return math.sqrt(2.0)


def min_groups_for_ratio(alpha: float, m: int, target_ratio: float) -> int | None:
    """Smallest divisor ``k`` of ``m`` with :func:`ub_ls_group` ≤ ``target_ratio``.

    Returns ``None`` if no group count achieves the target.  (Smaller ``k``
    means more replication — ``|M_j| = m/k`` — so this asks "how much
    replication buys the target guarantee", the question behind Figure 3.)
    """
    check_positive_float(target_ratio, "target_ratio")
    mm = check_machine_count(m)
    best: int | None = None
    for k in divisors(mm):
        if ub_ls_group(alpha, mm, k) <= target_ratio:
            best = k if best is None else max(best, k)
    # The *most* groups (least replication) still meeting the target is the
    # economical answer; callers wanting the best guarantee use k=1.
    return best


def divisors(m: int) -> list[int]:
    """All positive divisors of ``m``, ascending (group counts for LS-Group)."""
    mm = check_machine_count(m)
    out = [k for k in range(1, mm + 1) if mm % k == 0]
    return out


# ---------------------------------------------------------------------------
# Memory-aware model
# ---------------------------------------------------------------------------

def sabo_makespan_guarantee(alpha: float, rho1: float, delta: float) -> float:
    """Theorem 5: SABO_Δ makespan ratio :math:`(1+\\Delta)\\alpha^2\\rho_1`."""
    a = check_alpha(alpha)
    r1 = check_positive_float(rho1, "rho1")
    d = check_delta(delta)
    return (1.0 + d) * a * a * r1


def sabo_memory_guarantee(rho2: float, delta: float) -> float:
    """Theorem 6: SABO_Δ memory ratio :math:`(1+1/\\Delta)\\rho_2`."""
    r2 = check_positive_float(rho2, "rho2")
    d = check_delta(delta)
    return (1.0 + 1.0 / d) * r2


def abo_makespan_guarantee(alpha: float, rho1: float, delta: float, m: int) -> float:
    """Theorem 7: ABO_Δ makespan ratio :math:`2 - 1/m + \\Delta\\alpha^2\\rho_1`."""
    a = check_alpha(alpha)
    r1 = check_positive_float(rho1, "rho1")
    d = check_delta(delta)
    mm = check_machine_count(m)
    return 2.0 - 1.0 / mm + d * a * a * r1


def abo_memory_guarantee(rho2: float, delta: float, m: int) -> float:
    """Theorem 8: ABO_Δ memory ratio :math:`(1 + m/\\Delta)\\rho_2`."""
    r2 = check_positive_float(rho2, "rho2")
    d = check_delta(delta)
    mm = check_machine_count(m)
    return (1.0 + mm / d) * r2


def abo_beats_sabo_on_makespan(alpha: float, rho1: float) -> bool:
    """Paper's rule of thumb: for :math:`\\alpha\\rho_1 \\ge 2` ABO's makespan
    guarantee beats SABO's for every Δ.

    At equal Δ, ABO wins iff :math:`2 - 1/m + \\Delta\\alpha^2\\rho_1 <
    (1+\\Delta)\\alpha^2\\rho_1`, i.e. :math:`\\alpha^2\\rho_1 > 2 - 1/m`;
    the paper states the simpler sufficient condition on :math:`\\alpha\\rho_1`.
    """
    return check_alpha(alpha) * check_positive_float(rho1, "rho1") >= 2.0


def zenith_impossibility_memory(makespan_ratio: float) -> float:
    """Bi-objective impossibility frontier (the bold lines of Figure 6).

    From the SBO paper [IPDPS 2008]: no algorithm can be simultaneously
    better than :math:`(1+\\Delta)` on makespan and :math:`(1+1/\\Delta)`
    on memory; equivalently a makespan ratio of :math:`r` forces a memory
    ratio of at least :math:`1 + 1/(r-1)` (for :math:`r > 1`).
    """
    r = check_positive_float(makespan_ratio, "makespan_ratio")
    if r <= 1.0:
        return math.inf
    return 1.0 + 1.0 / (r - 1.0)


# ---------------------------------------------------------------------------
# Table helpers
# ---------------------------------------------------------------------------

def guarantee_table_row(alpha: float, m: int, ks: Iterable[int] | None = None) -> dict[str, float]:
    """All replication-bound guarantees evaluated at ``(alpha, m)``.

    Returns a dict keyed by strategy name; LS-Group entries appear as
    ``"ls_group[k=K]"`` for each requested ``K`` (default: all divisors).
    Used by the Table-1 bench.
    """
    a = check_alpha(alpha)
    mm = check_machine_count(m)
    row: dict[str, float] = {
        "lower_bound_no_replication": lb_no_replication(a, mm),
        "lpt_no_choice": ub_lpt_no_choice(a, mm),
        "lpt_no_restriction": ub_lpt_no_restriction(a, mm),
        "graham_ls": ub_graham_ls(mm),
    }
    for k in ks if ks is not None else divisors(mm):
        row[f"ls_group[k={k}]"] = ub_ls_group(a, mm, k)
    return row
