"""Vectorized batch backend: many fault-free simulations in one pass.

The per-event :class:`~repro.simulation.kernel.EventKernel` is the honest
executor — it enforces the information model, validates every dispatch,
and supports faults, releases, and heterogeneous speeds.  But the grid
sweeps behind the paper's empirical artifacts (Figure 3, benches E1–E16)
run the *same* strategy on the *same* instance under dozens of seeds and
realization models.  This module exploits that: it packs the realizations
of one (strategy, instance) pair into a ``(B, n)`` actuals matrix and
compiles the pair into the cheapest *plan* its decision structure admits:

* :class:`BatchPlan` — the closed-form completion sweep for
  :class:`~repro.core.strategy.FixedOrderPolicy` over a machine
  *partition*: ``n`` vectorized argmin+add steps replace ``B × n``
  Python event cycles.
* :class:`PhaseSplitPlan` — the closed form for ABO's fixed phase split
  (pinned queues run back-to-back from ``t = 0``; the replicated tasks
  are list-scheduled in a fixed global order), again ``n`` vectorized
  steps for the whole pack.
* :class:`OrderReplayPlan` — fixed dispatch order over an *arbitrary*
  placement (overlapping windows, gaps).  No closed form exists, so the
  pack is replayed by a lean event loop that amortizes Phase 1 and all
  trace/validation overhead across the pack.
* :class:`PinnedReplayPlan` — the structured replay for
  :class:`~repro.core.strategies.selective.PinnedAwarePolicy` families
  (selective/budgeted/capped/risk-aware): dispatch depends on each
  rival's remaining pinned *estimate*, so the decision procedure is
  precompiled into flat arrays (queues, suffix load sums, LPT ranks,
  allow masks) evaluated per event without any policy or view objects.

**Exactness contract.**  Every plan is bit-identical to the
:class:`EventKernel`, never merely close.  The closed forms perform, per
machine, the *same* IEEE additions in the *same* left-to-right order as
the kernel (each task's end is ``min-load + p_j``; argmin ties go to the
lowest machine index, the kernel's ``t = 0`` seeding order, and
partition/phase-split structure makes later exact ties
makespan-invariant — tied machines are interchangeable for all remaining
work).  The replay plans go further and reproduce the kernel's event
discipline literally: completions surface in ``(time, seq)`` order,
completions at a tied time all process before the idle polls they
trigger, and ``t = 0`` polls run in machine order — the exact
``EventQueue`` contract.  ``tests/test_batch.py`` asserts equality
property-style across random instances for every ``supports_batch``
family.

**Eligibility.**  A strategy opts in via the ``supports_batch``
capability flag (:class:`repro.registry.Capabilities`), and
:func:`build_plan` then *verifies* the structure instead of trusting the
flag: the Phase-2 policy must be one of the three compilable types
(:class:`FixedOrderPolicy`, :class:`~repro.memory.abo.ABOPolicy` without
its barrier ablation, :class:`PinnedAwarePolicy`), and the policy's
queues must agree with the placement it was built from.  Anything else —
adaptive policies with bespoke dispatch, the ABO global barrier, fault
plans, release times — raises :class:`BatchUnsupported` and the caller
falls back to the event kernel, so the flag can never produce
silently-wrong records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.model import Instance
from repro.core.placement import Placement
from repro.core.strategy import FixedOrderPolicy, TwoPhaseStrategy

__all__ = [
    "BatchUnsupported",
    "BatchPlan",
    "PhaseSplitPlan",
    "OrderReplayPlan",
    "PinnedReplayPlan",
    "Plan",
    "supports_batch",
    "build_plan",
    "sweep_makespans",
    "batch_makespans",
]


class BatchUnsupported(RuntimeError):
    """The strategy/instance pair cannot be replayed by the batch sweep.

    Raised by :func:`build_plan` when a structural precondition fails.
    Callers treat this as "use the :class:`EventKernel` instead" — it is
    a routing signal, never an error surfaced to users.
    """


@dataclass(frozen=True)
class BatchPlan:
    """One (strategy, instance) pair compiled for the vectorized sweep.

    Attributes
    ----------
    strategy_name:
        Display name of the compiled strategy (for records and spans).
    placement:
        The Phase-1 placement (computed once, shared by every realization
        in the pack; carries the replication metrics records need).
    order:
        Phase-2 dispatch order — task ids in the order the fixed-order
        policy would issue them.
    lo, hi:
        Per-task allowed machine range ``[lo[j], hi[j])`` derived from the
        placement; verified contiguous and partition-structured.
    guarantee:
        ``strategy.guarantee(instance)`` if defined, else ``None``.
    """

    strategy_name: str
    placement: Placement
    order: tuple[int, ...]
    lo: np.ndarray
    hi: np.ndarray
    guarantee: float | None

    @property
    def instance(self) -> Instance:
        return self.placement.instance


@dataclass(frozen=True)
class PhaseSplitPlan:
    """ABO's fixed phase split compiled to a closed-form sweep.

    Each machine runs its pinned queue back-to-back from ``t = 0`` (the
    policy always prefers its own pinned backlog), so its availability
    for replicated work is its pinned load sum; the replicated tasks are
    then list-scheduled in their fixed global order onto the currently
    least-loaded machine.  Both stages are vectorized across the pack.

    Attributes
    ----------
    pinned_queues:
        Per machine (index = machine id), the pinned task ids in the
        policy's dispatch order.
    replicated:
        The replicated task ids (placed on *every* machine, verified) in
        the policy's fixed global order.
    """

    strategy_name: str
    placement: Placement
    pinned_queues: tuple[tuple[int, ...], ...]
    replicated: tuple[int, ...]
    guarantee: float | None

    @property
    def instance(self) -> Instance:
        return self.placement.instance


@dataclass(frozen=True)
class OrderReplayPlan:
    """Fixed dispatch order over a non-partition placement, replayed.

    No closed form exists when replica sets overlap without being equal
    (an idle machine may legally skip an earlier task it does not hold),
    so the pack is replayed per realization by :func:`_drain` — the lean
    event loop that mirrors the kernel's queue discipline — with the
    fixed-order scan (low-water mark + allow mask) inlined.
    """

    strategy_name: str
    placement: Placement
    order: tuple[int, ...]
    allowed: np.ndarray  # (n, m) bool: placement.allows(j, i)
    guarantee: float | None

    @property
    def instance(self) -> Instance:
        return self.placement.instance


@dataclass(frozen=True)
class PinnedReplayPlan:
    """A ``PinnedAwarePolicy`` family precompiled into flat arrays.

    The policy's dispatch depends on the realization (which tasks have
    started when a machine idles), so there is no closed form — but its
    whole decision procedure is a pure function of static structure:
    per-machine pinned queues, the global replicated order, LPT ranks,
    and *remaining pinned estimate* sums.  Because pinned tasks start in
    queue order on their own machine, the unstarted pinned set is always
    a queue suffix, so every ``_remaining_pinned`` value the policy could
    ever compute is one of the precomputed left-to-right suffix sums in
    :attr:`suffix` — the replay never re-sums and never re-associates an
    IEEE addition.

    Attributes
    ----------
    queues:
        Per machine, the pinned task ids in the policy's dispatch order.
    suffix:
        Per machine, ``suffix[i][k] == sum(estimates of queues[i][k:])``
        accumulated left to right exactly as the policy's ``sum()`` does
        (``suffix[i][len(queues[i])] == 0.0``).
    multi:
        Replicated task ids in the policy's global scan order.
    rivals:
        Per task id, the machines allowed to host it (``()`` for pinned
        tasks) — the set the eligibility min ranges over.
    allowed:
        ``(n, m)`` bool allow mask for the replicated-candidate scan.
    rank:
        Per task id, its global LPT rank (the policy's tie-break).
    """

    strategy_name: str
    placement: Placement
    queues: tuple[tuple[int, ...], ...]
    suffix: tuple[tuple[float, ...], ...]
    multi: tuple[int, ...]
    rivals: tuple[tuple[int, ...], ...]
    allowed: np.ndarray
    rank: tuple[int, ...]
    guarantee: float | None

    @property
    def instance(self) -> Instance:
        return self.placement.instance


#: Everything :func:`build_plan` can return; all variants share the
#: ``strategy_name`` / ``placement`` / ``guarantee`` / ``instance`` surface
#: the pack executor consumes.
Plan = Union[BatchPlan, PhaseSplitPlan, OrderReplayPlan, PinnedReplayPlan]


def supports_batch(strategy: TwoPhaseStrategy) -> bool:
    """Whether the registry declares ``strategy`` batch-sweepable.

    Purely the capability lookup — :func:`build_plan` still verifies the
    structure before any batch run.  Unregistered strategies return
    ``False`` (they always take the event kernel).
    """
    from repro.registry import capabilities_of

    caps = capabilities_of(strategy)
    return caps is not None and caps.supports_batch


def _guarantee_of(strategy: TwoPhaseStrategy, instance: Instance) -> float | None:
    guarantee_fn = getattr(strategy, "guarantee", None)
    return guarantee_fn(instance) if callable(guarantee_fn) else None


def build_plan(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    *,
    placement: Placement | None = None,
) -> Plan:
    """Compile one (strategy, instance) pair into the cheapest plan.

    Runs Phase 1 once (unless a prebuilt ``placement`` is supplied),
    builds the Phase-2 policy once, and dispatches on its exact type:
    :class:`FixedOrderPolicy` compiles to the closed-form sweep (or the
    order replay when the placement is not a partition), ``ABOPolicy``
    to the phase-split sweep, ``PinnedAwarePolicy`` to the pinned
    replay.  Every structural precondition is verified against the
    placement — the capability flag is never trusted.  Raises
    :class:`BatchUnsupported` when the pair must use the event kernel,
    and propagates ``ValueError`` from Phase 1 unchanged (e.g. a group
    strategy whose ``k`` does not divide ``m`` — the same error the
    serial path turns into a skipped cell).
    """
    if placement is None:
        from repro.core.strategies.registry import build_placement

        placement = build_placement(strategy, instance)
    policy = strategy.make_policy(instance, placement)
    if type(policy) is FixedOrderPolicy:
        return _compile_fixed_order(strategy, instance, placement, policy)

    from repro.core.strategies.selective import PinnedAwarePolicy
    from repro.memory.abo import ABOPolicy

    if type(policy) is ABOPolicy:
        return _compile_phase_split(strategy, instance, placement, policy)
    if type(policy) is PinnedAwarePolicy:
        return _compile_pinned_replay(strategy, instance, placement, policy)
    raise BatchUnsupported(
        f"{strategy.name}: Phase-2 policy {type(policy).__name__} is not a "
        "FixedOrderPolicy, ABOPolicy, or PinnedAwarePolicy — its dispatch "
        "decisions cannot be compiled or replayed bit-exactly"
    )


def _check_permutation(strategy_name: str, tids: list[int], n: int) -> None:
    if sorted(tids) != list(range(n)):
        raise BatchUnsupported(
            f"{strategy_name}: dispatch structure does not cover every one of "
            f"the {n} tasks exactly once"
        )


def _allow_mask(placement: Placement) -> np.ndarray:
    """``(n, m)`` bool mask of ``placement.allows(j, i)``."""
    instance = placement.instance
    mask = np.zeros((instance.n, instance.m), dtype=bool)
    for j, machines in enumerate(placement.machine_sets):
        for i in machines:
            mask[j, i] = True
    return mask


def _compile_fixed_order(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    placement: Placement,
    policy: FixedOrderPolicy,
) -> Plan:
    order = policy.order
    n = instance.n
    _check_permutation(strategy.name, list(order), n)
    guarantee = _guarantee_of(strategy, instance)

    lo = np.empty(n, dtype=np.intp)
    hi = np.empty(n, dtype=np.intp)
    ranges: set[tuple[int, int]] = set()
    partition = True
    for j, machines in enumerate(placement.machine_sets):
        a, b = min(machines), max(machines) + 1
        if b - a != len(machines):
            partition = False
            break
        lo[j], hi[j] = a, b
        ranges.add((a, b))
    if partition:
        # Partition check: distinct ranges must not overlap, otherwise
        # tasks can start out of order (a machine may skip a task it does
        # not hold and run a later one first), which the in-order
        # closed-form sweep cannot express.
        bounds = sorted(ranges)
        for (_, b_prev), (a_next, _) in zip(bounds, bounds[1:]):
            if a_next < b_prev:
                partition = False
                break
    if partition:
        return BatchPlan(
            strategy_name=strategy.name,
            placement=placement,
            order=tuple(order),
            lo=lo,
            hi=hi,
            guarantee=guarantee,
        )
    # Overlapping or gapped replica sets: same fixed-order scan, replayed
    # event-by-event instead of closed-form.
    return OrderReplayPlan(
        strategy_name=strategy.name,
        placement=placement,
        order=tuple(order),
        allowed=_allow_mask(placement),
        guarantee=guarantee,
    )


def _compile_phase_split(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    placement: Placement,
    policy,
) -> PhaseSplitPlan:
    if policy.barrier:
        raise BatchUnsupported(
            f"{strategy.name}: the global-barrier Phase 2 stalls machines on "
            "remote pinned state and retires them early — only the event "
            "kernel replays that faithfully"
        )
    n, m = instance.n, instance.m
    all_machines = frozenset(range(m))
    queues: list[tuple[int, ...]] = [()] * m
    covered: list[int] = []
    for i, queue in policy.pinned_queues.items():
        if not 0 <= i < m:
            raise BatchUnsupported(
                f"{strategy.name}: pinned queue for unknown machine {i}"
            )
        for j in queue:
            if placement.machines_for(j) != frozenset((i,)):
                raise BatchUnsupported(
                    f"{strategy.name}: task {j} is queued on machine {i} but "
                    "not pinned there by the placement"
                )
        queues[i] = tuple(queue)
        covered.extend(queue)
    replicated = tuple(policy.replicated_order)
    for j in replicated:
        if placement.machines_for(j) != all_machines:
            raise BatchUnsupported(
                f"{strategy.name}: replicated task {j} is not placed on every "
                "machine — the unrestricted argmin would misplace it"
            )
    covered.extend(replicated)
    _check_permutation(strategy.name, covered, n)
    return PhaseSplitPlan(
        strategy_name=strategy.name,
        placement=placement,
        pinned_queues=tuple(queues),
        replicated=replicated,
        guarantee=_guarantee_of(strategy, instance),
    )


def _suffix_sums(queue: tuple[int, ...], estimates: tuple[float, ...]) -> tuple[float, ...]:
    """Left-to-right suffix sums, matching the policy's ``sum()`` exactly.

    ``out[k] == estimates[queue[k]] + estimates[queue[k+1]] + ...`` with
    the same left-to-right association Python's ``sum`` uses (``0 + e``
    is exact for the first term), so the replay's eligibility compare
    sees bit-identical floats.  Quadratic in queue length, computed once
    per pack.
    """
    out: list[float] = []
    for k in range(len(queue) + 1):
        acc = 0.0
        for j in queue[k:]:
            acc = acc + estimates[j]
        out.append(acc)
    return tuple(out)


def _compile_pinned_replay(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    placement: Placement,
    policy,
) -> PinnedReplayPlan:
    n, m = instance.n, instance.m
    pinned, multi = policy.batch_state()
    queues: list[tuple[int, ...]] = [()] * m
    covered: list[int] = []
    for i, queue in pinned.items():
        if not 0 <= i < m:
            raise BatchUnsupported(
                f"{strategy.name}: pinned queue for unknown machine {i}"
            )
        for j in queue:
            if placement.machines_for(j) != frozenset((i,)):
                raise BatchUnsupported(
                    f"{strategy.name}: task {j} is queued on machine {i} but "
                    "not pinned there by the placement"
                )
        queues[i] = tuple(queue)
        covered.extend(queue)
    for j in multi:
        if len(placement.machines_for(j)) < 2:
            raise BatchUnsupported(
                f"{strategy.name}: task {j} is in the replicated scan but "
                "pinned by the placement"
            )
    covered.extend(multi)
    _check_permutation(strategy.name, covered, n)

    estimates = instance.estimates
    rank: list[int] = [0] * n
    for pos, tid in enumerate(instance.lpt_order()):
        rank[tid] = pos
    rivals: list[tuple[int, ...]] = [()] * n
    for j in multi:
        # min() over the rival set is order-independent; sorted for
        # determinism of the stored plan.
        rivals[j] = tuple(sorted(placement.machines_for(j)))
    return PinnedReplayPlan(
        strategy_name=strategy.name,
        placement=placement,
        queues=tuple(queues),
        suffix=tuple(_suffix_sums(q, estimates) for q in queues),
        multi=tuple(multi),
        rivals=tuple(rivals),
        allowed=_allow_mask(placement),
        rank=tuple(rank),
        guarantee=_guarantee_of(strategy, instance),
    )


# -- plan execution ---------------------------------------------------------


def sweep_makespans(plan: Plan, actuals: np.ndarray) -> np.ndarray:
    """Execute a compiled plan against a ``(B, n)`` actuals matrix.

    Returns the ``(B,)`` makespans, bit-identical to running each row
    through the event kernel.  Closed-form plans are fully vectorized
    across the batch; replay plans loop the rows through the lean event
    loop (still amortizing Phase 1, policy construction, and all
    per-event trace/validation overhead across the pack).
    """
    if actuals.ndim != 2 or actuals.shape[1] != plan.instance.n:
        raise ValueError(
            f"actuals must be (B, {plan.instance.n}), got {actuals.shape}"
        )
    if isinstance(plan, BatchPlan):
        return _fixed_order_makespans(plan, actuals)
    if isinstance(plan, PhaseSplitPlan):
        return _phase_split_makespans(plan, actuals)
    if isinstance(plan, OrderReplayPlan):
        return _order_replay_makespans(plan, actuals)
    return _pinned_replay_makespans(plan, actuals)


def _fixed_order_makespans(plan: BatchPlan, actuals: np.ndarray) -> np.ndarray:
    """The heap-free completion sweep for partition placements.

    Machine loads start at zero; each task (in dispatch order) lands on
    the least-loaded machine of its allowed range, ties to the lowest
    index — the event kernel's tie-break.  Each step is one vectorized
    argmin + add across the whole batch, and the additions are
    elementwise (never reduced), so every machine's final load is the
    same left-to-right IEEE sum the event kernel produces.
    """
    B = actuals.shape[0]
    loads = np.zeros((B, plan.instance.m), dtype=np.float64)
    rows = np.arange(B)
    lo, hi = plan.lo, plan.hi
    for j in plan.order:
        a, b = lo[j], hi[j]
        if b - a == 1:
            # Pinned task: plain elementwise accumulate on one column.
            loads[:, a] += actuals[:, j]
        else:
            chosen = a + np.argmin(loads[:, a:b], axis=1)
            loads[rows, chosen] += actuals[:, j]
    return loads.max(axis=1)


def _phase_split_makespans(plan: PhaseSplitPlan, actuals: np.ndarray) -> np.ndarray:
    """ABO's two stages as one sweep.

    Stage 1 accumulates each machine's pinned queue left to right — the
    same additions the kernel performs dispatching the queue back to
    back.  Stage 2 list-schedules the replicated order: in the kernel, a
    machine competes for replicated work exactly when its total load is
    minimal (its pinned prefix runs without gaps), so assigning each
    replicated task to ``argmin(loads)`` reproduces the event order;
    ``t = 0`` ties resolve to the lowest machine index (the kernel's
    seeding order), and later exact ties are between machines that are
    interchangeable for all remaining replicated work, so the makespan
    is unaffected.
    """
    B = actuals.shape[0]
    loads = np.zeros((B, plan.instance.m), dtype=np.float64)
    rows = np.arange(B)
    for i, queue in enumerate(plan.pinned_queues):
        for j in queue:
            loads[:, i] += actuals[:, j]
    for j in plan.replicated:
        chosen = np.argmin(loads, axis=1)
        loads[rows, chosen] += actuals[:, j]
    return loads.max(axis=1)


def _drain(m: int, acts: list[float], select) -> tuple[float, int]:
    """The lean event loop: the kernel's queue discipline without the heap.

    In the regime every plan compiles for — all tasks released at
    ``t = 0``, no faults, unit speeds — the kernel's event queue only
    ever holds the completions of busy machines plus same-time idle
    polls, so the next event is simply the busy machine with the least
    ``(end time, dispatch seq)``: exactly the ``EventQueue``'s
    ``(time, kind, seq)`` order, since completions (kind 1) at a tied
    time all sort before the idle polls (kind 5) they push, and those
    idles preserve completion order through their seqs.  ``t = 0`` polls
    run in machine order, matching the kernel's seeding.  A ``select``
    returning ``None`` retires the machine permanently (no releases can
    wake it), also matching the kernel.

    ``select(machine)`` must mark its choice started before returning.
    Returns ``(makespan, dispatched-task count)``.
    """
    end_time = [0.0] * m
    end_seq = [0] * m
    seq = 0
    makespan = 0.0
    dispatched = 0
    busy: list[int] = []
    for i in range(m):
        tid = select(i)
        if tid is None:
            continue
        end = 0.0 + acts[tid]
        seq += 1
        end_time[i], end_seq[i] = end, seq
        busy.append(i)
        dispatched += 1
        if end > makespan:
            makespan = end
    while busy:
        t = min(end_time[i] for i in busy)
        ripe = sorted((end_seq[i], i) for i in busy if end_time[i] == t)
        if len(ripe) == len(busy):
            busy = []
        else:
            done = {i for _, i in ripe}
            busy = [i for i in busy if i not in done]
        # All tied completions are processed before any of the idle polls
        # they push (kind priority), and the polls then run in completion
        # order (seq) — reproduced by draining ``ripe`` twice in order.
        for _, i in ripe:
            tid = select(i)
            if tid is None:
                continue
            end = t + acts[tid]
            seq += 1
            end_time[i], end_seq[i] = end, seq
            busy.append(i)
            dispatched += 1
            if end > makespan:
                makespan = end
    return makespan, dispatched


def _check_drained(plan: Plan, dispatched: int) -> None:
    if dispatched != plan.instance.n:
        from repro.simulation.kernel import SimulationError

        raise SimulationError(
            f"batch replay of {plan.strategy_name} ended with "
            f"{plan.instance.n - dispatched} unscheduled tasks; the policy "
            "retired machines that still had eligible work"
        )


def _order_replay_makespans(plan: OrderReplayPlan, actuals: np.ndarray) -> np.ndarray:
    """Replay a fixed-order policy over a non-partition placement.

    The per-machine scan is :class:`FixedOrderPolicy.select` verbatim —
    first unstarted task in the fixed order whose placement allows the
    machine, behind a global low-water mark — driven by :func:`_drain`'s
    kernel-exact event order.
    """
    order = plan.order
    allowed = plan.allowed.tolist()
    n = len(order)
    m = plan.instance.m
    out = np.empty(actuals.shape[0], dtype=np.float64)
    for b in range(actuals.shape[0]):
        acts = actuals[b].tolist()
        started = bytearray(n)
        low = 0

        def select(machine: int) -> int | None:
            nonlocal low
            while low < n and started[order[low]]:
                low += 1
            for pos in range(low, n):
                tid = order[pos]
                if not started[tid] and allowed[tid][machine]:
                    started[tid] = 1
                    return tid
            return None

        out[b], dispatched = _drain(m, acts, select)
        _check_drained(plan, dispatched)
    return out


def _pinned_replay_makespans(plan: PinnedReplayPlan, actuals: np.ndarray) -> np.ndarray:
    """Replay a ``PinnedAwarePolicy`` pack from its precompiled arrays.

    ``select`` below is the policy's decision procedure transcribed over
    the plan's flat state: ``own`` is the machine's queue head (pinned
    tasks start in queue order, so a pointer suffices), ``cand`` the
    first unstarted allowed task in the replicated order, and the
    eligibility test compares the precomputed suffix sums — the very
    floats the policy's ``_remaining_pinned`` would produce — with the
    policy's ``1e-12`` slack and LPT-rank tie-break.
    """
    queues, suffix = plan.queues, plan.suffix
    multi, rivals, rank = plan.multi, plan.rivals, plan.rank
    allowed = plan.allowed.tolist()
    n, m = plan.instance.n, plan.instance.m
    nm = len(multi)
    out = np.empty(actuals.shape[0], dtype=np.float64)
    for b in range(actuals.shape[0]):
        acts = actuals[b].tolist()
        started = bytearray(n)
        ptr = [0] * m
        low = 0

        def select(machine: int) -> int | None:
            nonlocal low
            q = queues[machine]
            p = ptr[machine]
            own = q[p] if p < len(q) else None
            while low < nm and started[multi[low]]:
                low += 1
            cand = None
            for pos in range(low, nm):
                tid = multi[pos]
                if not started[tid] and allowed[tid][machine]:
                    cand = tid
                    break
            if cand is None:
                choice = own
            else:
                my_rem = suffix[machine][p]
                min_rem = min(suffix[r][ptr[r]] for r in rivals[cand])
                if not my_rem <= min_rem + 1e-12:
                    choice = own
                elif own is None:
                    choice = cand
                else:
                    choice = cand if rank[cand] < rank[own] else own
            if choice is not None:
                started[choice] = 1
                if choice == own:
                    ptr[machine] = p + 1
            return choice

        out[b], dispatched = _drain(m, acts, select)
        _check_drained(plan, dispatched)
    return out


def batch_makespans(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    actuals_rows: list[tuple[float, ...]] | np.ndarray,
) -> list[float]:
    """Convenience wrapper: compile + sweep, returning Python floats.

    ``actuals_rows`` is one row of actual durations per realization.
    Raises :class:`BatchUnsupported` exactly when :func:`build_plan` does.
    """
    plan = build_plan(strategy, instance)
    matrix = np.asarray(actuals_rows, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    return [float(v) for v in sweep_makespans(plan, matrix)]
