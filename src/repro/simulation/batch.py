"""Vectorized batch backend: many fault-free simulations in one NumPy pass.

The per-event :class:`~repro.simulation.kernel.EventKernel` is the honest
executor — it enforces the information model, validates every dispatch,
and supports faults, releases, and heterogeneous speeds.  But the grid
sweeps behind the paper's empirical artifacts (Figure 3, benches E1–E16)
run the *same* strategy on the *same* instance under dozens of seeds and
realization models, and for the closed-form strategy families the
fault-free run is fully determined by a fixed dispatch order and a
partition-structured placement.  This module exploits that: it packs the
realizations of one (strategy, instance) pair into a ``(B, n)`` actuals
matrix and replays the whole pack with a heap-free completion sweep —
``n`` vectorized steps instead of ``B × n`` Python event cycles.

**Exactness contract.**  The sweep performs, per machine, the *same* IEEE
additions in the *same* order as the event kernel (each task's end time
is ``min-load + p_j``, accumulated left to right), and the makespan is the
same ``max`` over the same multiset of floats — so batch makespans are
bit-identical to :class:`EventKernel` output, not merely close.  The
property tests in ``tests/test_batch.py`` assert this equality across
random instances for every ``supports_batch`` strategy.

**Eligibility.**  A strategy opts in via the ``supports_batch``
capability flag (:class:`repro.registry.Capabilities`), and
:func:`build_plan` then *verifies* the structural preconditions instead
of trusting the flag:

* Phase 2 is a :class:`~repro.core.strategy.FixedOrderPolicy` covering
  every task exactly once;
* every task's machine set is a contiguous index range; and
* any two ranges are either identical or disjoint (a partition of
  machines into groups — pinned, grouped, and everywhere placements all
  qualify).

Under that structure the event-driven run decomposes into independent
per-group list schedules, where the ``j``-th task of a group starts at
the current minimum load of the group's machines — exactly what the
sweep computes.  Anything else (overlapping replica sets, adaptive
policies, fault plans, release times) raises :class:`BatchUnsupported`
and the caller falls back to the event kernel, so the flag can never
produce silently-wrong records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import Instance
from repro.core.placement import Placement
from repro.core.strategy import FixedOrderPolicy, TwoPhaseStrategy

__all__ = [
    "BatchUnsupported",
    "BatchPlan",
    "supports_batch",
    "build_plan",
    "sweep_makespans",
    "batch_makespans",
]


class BatchUnsupported(RuntimeError):
    """The strategy/instance pair cannot be replayed by the batch sweep.

    Raised by :func:`build_plan` when a structural precondition fails.
    Callers treat this as "use the :class:`EventKernel` instead" — it is
    a routing signal, never an error surfaced to users.
    """


@dataclass(frozen=True)
class BatchPlan:
    """One (strategy, instance) pair compiled for the vectorized sweep.

    Attributes
    ----------
    strategy_name:
        Display name of the compiled strategy (for records and spans).
    placement:
        The Phase-1 placement (computed once, shared by every realization
        in the pack; carries the replication metrics records need).
    order:
        Phase-2 dispatch order — task ids in the order the fixed-order
        policy would issue them.
    lo, hi:
        Per-task allowed machine range ``[lo[j], hi[j])`` derived from the
        placement; verified contiguous and partition-structured.
    guarantee:
        ``strategy.guarantee(instance)`` if defined, else ``None``.
    """

    strategy_name: str
    placement: Placement
    order: tuple[int, ...]
    lo: np.ndarray
    hi: np.ndarray
    guarantee: float | None

    @property
    def instance(self) -> Instance:
        return self.placement.instance


def supports_batch(strategy: TwoPhaseStrategy) -> bool:
    """Whether the registry declares ``strategy`` batch-sweepable.

    Purely the capability lookup — :func:`build_plan` still verifies the
    structure before any batch run.  Unregistered strategies return
    ``False`` (they always take the event kernel).
    """
    from repro.registry import capabilities_of

    caps = capabilities_of(strategy)
    return caps is not None and caps.supports_batch


def build_plan(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    *,
    placement: Placement | None = None,
) -> BatchPlan:
    """Compile one (strategy, instance) pair into a :class:`BatchPlan`.

    Runs Phase 1 once (unless a prebuilt ``placement`` is supplied) and
    checks every structural precondition of the sweep.  Raises
    :class:`BatchUnsupported` when the pair must use the event kernel,
    and propagates ``ValueError`` from Phase 1 unchanged (e.g. a group
    strategy whose ``k`` does not divide ``m`` — the same error the
    serial path turns into a skipped cell).
    """
    if placement is None:
        from repro.core.strategies.registry import build_placement

        placement = build_placement(strategy, instance)
    policy = strategy.make_policy(instance, placement)
    if type(policy) is not FixedOrderPolicy:
        raise BatchUnsupported(
            f"{strategy.name}: Phase-2 policy {type(policy).__name__} is not a "
            "FixedOrderPolicy — its dispatch decisions may depend on revealed "
            "durations, which the sweep cannot replay"
        )
    order = policy.order
    n, m = instance.n, instance.m
    if sorted(order) != list(range(n)):
        raise BatchUnsupported(
            f"{strategy.name}: dispatch order is not a permutation of all "
            f"{n} tasks"
        )

    lo = np.empty(n, dtype=np.intp)
    hi = np.empty(n, dtype=np.intp)
    ranges: set[tuple[int, int]] = set()
    for j, machines in enumerate(placement.machine_sets):
        a, b = min(machines), max(machines) + 1
        if b - a != len(machines):
            raise BatchUnsupported(
                f"{strategy.name}: task {j}'s machine set is not a contiguous "
                "range — the sweep's argmin-over-slice cannot express it"
            )
        lo[j], hi[j] = a, b
        ranges.add((a, b))
    # Partition check: distinct ranges must not overlap, otherwise tasks
    # can start out of order (a machine may skip a task it does not hold
    # and run a later one first), which the in-order sweep cannot replay.
    bounds = sorted(ranges)
    for (_, b_prev), (a_next, _) in zip(bounds, bounds[1:]):
        if a_next < b_prev:
            raise BatchUnsupported(
                f"{strategy.name}: placement ranges overlap without being "
                "equal — not a machine partition"
            )

    guarantee_fn = getattr(strategy, "guarantee", None)
    guarantee = guarantee_fn(instance) if callable(guarantee_fn) else None
    return BatchPlan(
        strategy_name=strategy.name,
        placement=placement,
        order=tuple(order),
        lo=lo,
        hi=hi,
        guarantee=guarantee,
    )


def sweep_makespans(plan: BatchPlan, actuals: np.ndarray) -> np.ndarray:
    """Replay the plan against a ``(B, n)`` actuals matrix; return ``(B,)``.

    The heap-free completion sweep: machine loads start at zero; each task
    (in dispatch order) lands on the least-loaded machine of its allowed
    range, ties to the lowest index — the event kernel's tie-break.  Each
    step is one vectorized argmin + add across the whole batch, and the
    additions are elementwise (never reduced), so every machine's final
    load is the same left-to-right IEEE sum the event kernel produces.
    """
    if actuals.ndim != 2 or actuals.shape[1] != plan.instance.n:
        raise ValueError(
            f"actuals must be (B, {plan.instance.n}), got {actuals.shape}"
        )
    B = actuals.shape[0]
    loads = np.zeros((B, plan.instance.m), dtype=np.float64)
    rows = np.arange(B)
    lo, hi = plan.lo, plan.hi
    for j in plan.order:
        a, b = lo[j], hi[j]
        if b - a == 1:
            # Pinned task: plain elementwise accumulate on one column.
            loads[:, a] += actuals[:, j]
        else:
            chosen = a + np.argmin(loads[:, a:b], axis=1)
            loads[rows, chosen] += actuals[:, j]
    return loads.max(axis=1)


def batch_makespans(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    actuals_rows: list[tuple[float, ...]] | np.ndarray,
) -> list[float]:
    """Convenience wrapper: compile + sweep, returning Python floats.

    ``actuals_rows`` is one row of actual durations per realization.
    Raises :class:`BatchUnsupported` exactly when :func:`build_plan` does.
    """
    plan = build_plan(strategy, instance)
    matrix = np.asarray(actuals_rows, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    return [float(v) for v in sweep_makespans(plan, matrix)]
