"""ASCII Gantt rendering of schedule traces.

matplotlib is unavailable offline, so the figure benches that show
*schedules* (paper Figures 1, 2, 4, 5) render them as text Gantt charts:
one row per machine, time binned into fixed-width character cells, each
task drawn with a rotating glyph and labelled where it fits.

The renderer is deliberately simple but exact about geometry: cell k of a
row covers ``[k*dt, (k+1)*dt)`` and is attributed to the task occupying the
majority of that interval, so adjacent tasks never visually swap order.
"""

from __future__ import annotations

from repro.simulation.trace import ScheduleTrace

__all__ = ["render_gantt"]

_GLYPHS = "##@@%%**++==::"


def render_gantt(
    trace: ScheduleTrace,
    m: int,
    *,
    width: int = 72,
    show_ids: bool = True,
) -> str:
    """Render ``trace`` as a text Gantt chart.

    Parameters
    ----------
    trace:
        The executed schedule.
    m:
        Machine count (rows).
    width:
        Number of time cells per row.
    show_ids:
        Overlay task ids onto blocks wide enough to hold them.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    makespan = trace.makespan
    if makespan <= 0:
        raise ValueError("trace has non-positive makespan")
    dt = makespan / width

    rows: list[str] = []
    per_machine: list[list] = [[] for _ in range(m)]
    for run in trace.runs:
        per_machine[run.machine].append(run)
    for runs in per_machine:
        runs.sort(key=lambda r: r.start)

    header = f"t=0 {'-' * (width - 8)} t={makespan:.4g}"
    rows.append(" " * 5 + header[: width + 8])

    for i in range(m):
        cells = [" "] * width
        for run in per_machine[i]:
            glyph = _GLYPHS[run.tid % len(_GLYPHS)]
            first = int(run.start / dt + 1e-9)
            last = int(run.end / dt - 1e-9)
            first = max(0, min(first, width - 1))
            last = max(first, min(last, width - 1))
            for k in range(first, last + 1):
                # Majority attribution: the cell belongs to this run if the
                # run covers at least half the cell.
                cell_lo, cell_hi = k * dt, (k + 1) * dt
                overlap = min(run.end, cell_hi) - max(run.start, cell_lo)
                if overlap >= 0.5 * dt or (first == last and overlap > 0):
                    cells[k] = glyph
            if show_ids:
                label = f"{run.tid}"
                if last - first + 1 >= len(label) + 2:
                    mid = (first + last + 1 - len(label)) // 2
                    for pos, ch in enumerate(label):
                        cells[mid + pos] = ch
        rows.append(f"M{i:<3d} |{''.join(cells)}|")
    rows.append(f"makespan = {makespan:.6g}" + (f"  [{trace.label}]" if trace.label else ""))
    return "\n".join(rows)
