"""The event kernel behind :func:`repro.simulation.engine.simulate`.

:mod:`repro.simulation.engine` used to be one 380-line function; this
module is its decomposition into orthogonal pieces:

* :class:`EventKernel` — the **fast path**: releases, completions and
  dispatch only.  No failure sets, no degrade multipliers, no attempt
  tokens — a fault-free run pays for none of the fault machinery.  Since
  the effective machine speed is constant, ``p / s`` here equals the
  fault path's ``p / (s * 1.0)`` bit-for-bit (IEEE), so the two kernels
  produce identical traces on fault-free input.
* :class:`FaultAwareKernel` — the **full path**: crash-stop,
  crash-recover, degraded-speed intervals, attempt-token staleness, and
  the abort/restart cycle.  Selected only when a
  :class:`~repro.faults.plan.FaultPlan` is present.
* :class:`SimulationObserver` — the observation hook.  The kernel calls
  ``count``/``event`` at the same points the monolith called the tracer;
  the no-op base class keeps untraced runs cheap and
  :class:`TracerObserver` forwards to :mod:`repro.obs` with byte-exact
  parity (same counter names, same event fields, same order).

Both kernels preserve the monolith's event-queue discipline exactly:
seeding order (pending releases, then plan events, then the ``t = 0``
idle polls) and the :class:`~repro.simulation.events.EventKind`
priorities fix the ``seq`` tie-break, so traces are reproducible to the
byte across the refactor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.placement import Placement
from repro.core.strategy import OnlinePolicy, SchedulerView
from repro.faults.plan import FaultPlan
from repro.simulation.events import EventKind, EventQueue
from repro.simulation.trace import TaskRun
from repro.uncertainty.realization import Realization

__all__ = [
    "SimulationError",
    "SimulationObserver",
    "TracerObserver",
    "KernelResult",
    "EventKernel",
    "FaultAwareKernel",
]


class SimulationError(RuntimeError):
    """Raised when a policy misbehaves or the run cannot complete."""


class SimulationObserver:
    """No-op observation hook; the kernel narrates its run through one.

    ``enabled`` is hoisted into a class attribute so the hot loop pays a
    single attribute check per event, exactly as the monolithic engine
    hoisted ``tracer.enabled``.
    """

    enabled = False

    def count(self, name: str) -> None:
        """Increment counter ``name`` (no-op here)."""

    def event(self, name: str, **fields: object) -> None:
        """Record a structured event (no-op here)."""


class TracerObserver(SimulationObserver):
    """Forwards kernel observations to a :mod:`repro.obs` tracer."""

    enabled = True

    def __init__(self, tracer) -> None:
        self._tracer = tracer

    def count(self, name: str) -> None:
        self._tracer.count(name)

    def event(self, name: str, **fields: object) -> None:
        self._tracer.event(name, **fields)


@dataclass
class KernelResult:
    """What a kernel run produces, before trace assembly."""

    runs: list[TaskRun]
    aborted: list[TaskRun]


class EventKernel:
    """Fault-free discrete-event kernel (the fast path).

    Plays releases, completions and idle polls against the policy.  All
    machine-health state is absent by construction: a run without a
    :class:`~repro.faults.plan.FaultPlan` cannot produce failure,
    recovery or speed events, so their handlers only exist as guards.

    Parameters
    ----------
    placement, realization, policy:
        The Phase-1 placement, the actual durations, and the Phase-2
        dispatch policy.
    releases:
        Per-task release times (already validated by the engine).
    machine_speed:
        Per-machine speed factors (already validated by the engine).
    observer:
        Observation hook; :class:`SimulationObserver` for untraced runs.
    """

    def __init__(
        self,
        placement: Placement,
        realization: Realization,
        policy: OnlinePolicy,
        *,
        releases: list[float],
        machine_speed: list[float],
        observer: SimulationObserver,
    ) -> None:
        instance = placement.instance
        self.placement = placement
        self.realization = realization
        self.policy = policy
        self.releases = releases
        self.machine_speed = machine_speed
        self.observer = observer
        self.n = instance.n
        self.m = instance.m

        self.view = SchedulerView(instance, placement)
        self.queue = EventQueue()
        self.released: set[int] = set()
        self.busy: dict[int, int] = {}  # machine -> running tid
        self.task_start: dict[int, float] = {}  # tid -> start of current attempt
        self.runs: list[TaskRun | None] = [None] * self.n
        self.aborted: list[TaskRun] = []

        # Seeding order is part of the trace contract: pending releases,
        # then the fault plan's events (subclass hook), then the t=0 idle
        # polls — the queue's seq tie-break preserves this order forever.
        self.pending_releases = sorted(
            (r, j) for j, r in enumerate(releases) if r > 0.0
        )
        for j, r in enumerate(releases):
            if r == 0.0:
                self.released.add(j)
        if self.pending_releases:
            self.view._enable_release_tracking(self.released)
        for r, j in self.pending_releases:
            self.queue.push(r, EventKind.TASK_RELEASE, j)
        self._seed_plan()
        for i in range(self.m):
            self.queue.push(0.0, EventKind.MACHINE_IDLE, i)

    # -- hooks the fault-aware subclass overrides --------------------------
    def _seed_plan(self) -> None:
        """Push the fault plan's events (fast path: there is no plan)."""

    def _machine_down(self, machine: int) -> bool:
        """Whether ``machine`` is currently failed (fast path: never)."""
        return False

    def _effective_speed(self, machine: int) -> float:
        """Current effective speed of ``machine`` (fast path: constant)."""
        return self.machine_speed[machine]

    def _begin_attempt(self, tid: int, machine: int, end: float) -> tuple:
        """Book-keep a new attempt; returns the completion payload."""
        return (tid, machine)

    def _completion_is_stale(self, payload: tuple) -> bool:
        """Whether a surfacing completion was superseded (fast path: no
        aborts or speed changes exist to supersede one)."""
        tid, machine = payload[0], payload[1]
        return self.busy.get(machine) != tid

    def _end_attempt(self, machine: int) -> None:
        """Clear per-attempt state beyond ``busy`` (fast path: none)."""

    # -- the event loop ----------------------------------------------------
    def run(self) -> KernelResult:
        """Drain the queue; returns the completed and aborted runs."""
        obs = self.observer.enabled
        observer = self.observer
        queue = self.queue
        view = self.view
        while queue:
            ev = queue.pop()
            view._advance(ev.time)
            if obs:
                observer.count("sim.events_processed")

            if ev.kind == EventKind.TASK_RELEASE:
                self._on_release(ev)
            elif ev.kind == EventKind.TASK_COMPLETION:
                self._on_completion(ev)
            elif ev.kind == EventKind.MACHINE_FAILURE:
                self._on_failure(ev)
            elif ev.kind == EventKind.MACHINE_RECOVERY:
                self._on_recovery(ev)
            elif ev.kind == EventKind.MACHINE_SPEED:
                self._on_speed(ev)
            else:  # MACHINE_IDLE
                self._on_idle(ev)
        self._check_complete()
        return KernelResult(self.runs, self.aborted)  # type: ignore[arg-type]

    # -- handlers ----------------------------------------------------------
    def _on_release(self, ev) -> None:
        self.released.add(ev.payload)
        self.view._mark_released(ev.payload)
        if self.observer.enabled:
            self.observer.count("sim.releases")

    def _on_completion(self, ev) -> None:
        if self._completion_is_stale(ev.payload):
            # Stale: the attempt was aborted by a failure, or a speed
            # change rescheduled its completion.
            return
        tid, machine = ev.payload[0], ev.payload[1]
        self.view._mark_completed(tid, self.realization.actual(tid))
        self.runs[tid] = TaskRun(tid, machine, self.task_start.pop(tid), ev.time)
        del self.busy[machine]
        self._end_attempt(machine)
        self.queue.push(ev.time, EventKind.MACHINE_IDLE, machine)
        if self.observer.enabled:
            self.observer.count("sim.completions")
            self.observer.event("completion", task=tid, machine=machine, t=ev.time)

    def _on_failure(self, ev) -> None:
        raise SimulationError(
            "machine-failure event in a fault-free run (kernel selection bug)"
        )

    def _on_recovery(self, ev) -> None:
        raise SimulationError(
            "machine-recovery event in a fault-free run (kernel selection bug)"
        )

    def _on_speed(self, ev) -> None:
        raise SimulationError(
            "machine-speed event in a fault-free run (kernel selection bug)"
        )

    def _on_idle(self, ev) -> None:
        machine = ev.payload
        if machine in self.busy or self._machine_down(machine):
            # Stale poll (a dispatch or failure raced this event).
            return
        choice = self.policy.select(machine, self.view)
        if choice is None:
            # Work-conserving re-poll: if unreleased tasks could later run
            # here, wake the machine at the next release time.
            future = [
                r
                for r, j in self.pending_releases
                if j not in self.released
                and self.placement.allows(j, machine)
                and r > ev.time
            ]
            if future:
                self.queue.push(min(future), EventKind.MACHINE_IDLE, machine)
            return
        self._dispatch(choice, machine, ev.time)

    def _dispatch(self, tid: int, machine: int, now: float) -> None:
        if not 0 <= tid < self.n:
            raise SimulationError(f"policy selected invalid task id {tid}")
        if self.view.is_started(tid):
            raise SimulationError(f"policy selected already-started task {tid}")
        if tid not in self.released:
            raise SimulationError(
                f"policy selected task {tid} before its release time "
                f"{self.releases[tid]}"
            )
        if not self.placement.allows(tid, machine):
            raise SimulationError(
                f"policy sent task {tid} to machine {machine}, but its data is only on "
                f"{sorted(self.placement.machines_for(tid))}"
            )
        duration = self.realization.actual(tid) / self._effective_speed(machine)
        end = now + duration
        self.task_start[tid] = now
        self.view._mark_started(tid, machine)
        self.busy[machine] = tid
        payload = self._begin_attempt(tid, machine, end)
        self.queue.push(end, EventKind.TASK_COMPLETION, payload)
        if self.observer.enabled:
            self.observer.count("sim.dispatches")
            self.observer.event("dispatch", task=tid, machine=machine, t=now)

    # -- post-loop invariants ----------------------------------------------
    def _check_complete(self) -> None:
        missing = [j for j, r in enumerate(self.runs) if r is None]
        if missing:
            self._raise_incomplete(missing)

    def _raise_incomplete(self, missing: list[int]) -> None:
        raise SimulationError(
            f"simulation ended with {len(missing)} unscheduled tasks "
            f"(first few: {missing[:5]}); the policy retired machines "
            "that still had eligible work"
        )


class FaultAwareKernel(EventKernel):
    """The full kernel: crash-stop, crash-recover and degraded intervals.

    Extends the fast path with the machinery faults need: the failed-set,
    per-machine degrade multipliers, and completion-event staleness via
    attempt tokens (aborts and speed changes bump a machine's token so a
    superseded completion event is ignored when it surfaces).

    Parameters
    ----------
    plan:
        The validated :class:`~repro.faults.plan.FaultPlan` driving the
        failure, recovery and speed events.
    """

    def __init__(
        self,
        placement: Placement,
        realization: Realization,
        policy: OnlinePolicy,
        *,
        releases: list[float],
        machine_speed: list[float],
        observer: SimulationObserver,
        plan: FaultPlan,
    ) -> None:
        self.plan = plan
        self.failed: set[int] = set()
        # When each failed machine comes back (inf = permanent).  Tracked
        # so overlapping outages — e.g. merged plans hitting one machine —
        # keep it down for the *union* of the windows instead of letting
        # the first (possibly shorter) outage's recovery resurrect it.
        self.down_until: dict[int, float] = {}
        # Degraded-interval multiplier per machine (1.0 = healthy base speed).
        self.degrade: list[float] = [1.0] * placement.instance.m
        self.attempt_token: dict[int, int] = {}
        self.scheduled_end: dict[int, float] = {}  # machine -> completion time
        super().__init__(
            placement,
            realization,
            policy,
            releases=releases,
            machine_speed=machine_speed,
            observer=observer,
        )

    # -- hook overrides ----------------------------------------------------
    def _seed_plan(self) -> None:
        for at, machine, downtime in self.plan.crashes():
            self.queue.push(at, EventKind.MACHINE_FAILURE, (machine, downtime))
        for slow in self.plan.slowdowns():
            self.queue.push(
                slow.start, EventKind.MACHINE_SPEED, (slow.machine, slow.factor)
            )
            if math.isfinite(slow.end):
                self.queue.push(slow.end, EventKind.MACHINE_SPEED, (slow.machine, 1.0))

    def _machine_down(self, machine: int) -> bool:
        return machine in self.failed

    def _effective_speed(self, machine: int) -> float:
        return self.machine_speed[machine] * self.degrade[machine]

    def _begin_attempt(self, tid: int, machine: int, end: float) -> tuple:
        self.attempt_token[machine] = self.attempt_token.get(machine, 0) + 1
        self.scheduled_end[machine] = end
        return (tid, machine, self.attempt_token[machine])

    def _completion_is_stale(self, payload: tuple) -> bool:
        tid, machine, token = payload
        return (
            self.busy.get(machine) != tid
            or self.attempt_token.get(machine) != token
        )

    def _end_attempt(self, machine: int) -> None:
        self.scheduled_end.pop(machine, None)

    # -- fault handlers ----------------------------------------------------
    def _on_failure(self, ev) -> None:
        machine, downtime = ev.payload
        until = ev.time + downtime if math.isfinite(downtime) else math.inf
        if machine in self.failed:
            # Overlapping outage on an already-down machine (merged plans
            # can produce these): extend the downtime to the union of the
            # windows.  The superseded recovery event is ignored by
            # :meth:`_on_recovery`'s ``down_until`` check.
            if until > self.down_until.get(machine, math.inf):
                self.down_until[machine] = until
                if math.isfinite(until):
                    self.queue.push(until, EventKind.MACHINE_RECOVERY, machine)
            return
        self.failed.add(machine)
        self.down_until[machine] = until
        self.view._mark_machine_failed(machine)
        if math.isfinite(downtime):
            self.queue.push(ev.time + downtime, EventKind.MACHINE_RECOVERY, machine)
        if self.observer.enabled:
            self.observer.count("sim.machine_failures")
            self.observer.event("machine_failure", machine=machine, t=ev.time)
        running = self.busy.pop(machine, None)
        if running is not None:
            # Abort the attempt: the task reverts to unstarted and must
            # rerun from scratch elsewhere.
            self.aborted.append(
                TaskRun(running, machine, self.task_start.pop(running), ev.time)
            )
            self.scheduled_end.pop(machine, None)
            self.view._mark_aborted(running)
            if self.observer.enabled:
                self.observer.count("sim.restarts")
                self.observer.event(
                    "restart", task=running, machine=machine, t=ev.time
                )
            # Wake every healthy idle machine: one of them must pick the
            # orphaned task up (they may have retired with None before
            # the abort existed).
            for i in range(self.m):
                if i not in self.failed and i not in self.busy:
                    self.queue.push(ev.time, EventKind.MACHINE_IDLE, i)

    def _on_recovery(self, ev) -> None:
        machine = ev.payload
        if machine not in self.failed:
            return
        if ev.time < self.down_until.get(machine, 0.0):
            return  # superseded by a longer overlapping outage
        self.failed.discard(machine)
        self.down_until.pop(machine, None)
        self.view._mark_machine_recovered(machine)
        if self.observer.enabled:
            self.observer.count("sim.machine_recoveries")
            self.observer.event("machine_recovery", machine=machine, t=ev.time)
        self.queue.push(ev.time, EventKind.MACHINE_IDLE, machine)

    def _on_speed(self, ev) -> None:
        machine, factor = ev.payload
        old_eff = self.machine_speed[machine] * self.degrade[machine]
        self.degrade[machine] = factor
        new_eff = self.machine_speed[machine] * factor
        if self.observer.enabled:
            if factor != 1.0:
                self.observer.count("sim.machine_degraded")
            self.observer.event(
                "machine_degraded", machine=machine, factor=factor, t=ev.time
            )
        running = self.busy.get(machine)
        if running is not None and new_eff != old_eff:
            # Rescale the remaining work onto the new speed and supersede
            # the previously scheduled completion.
            remaining_work = (self.scheduled_end[machine] - ev.time) * old_eff
            new_end = ev.time + remaining_work / new_eff
            self.attempt_token[machine] += 1
            self.scheduled_end[machine] = new_end
            self.queue.push(
                new_end,
                EventKind.TASK_COMPLETION,
                (running, machine, self.attempt_token[machine]),
            )

    # -- post-loop invariants ----------------------------------------------
    def _raise_incomplete(self, missing: list[int]) -> None:
        stranded = [
            j
            for j in missing
            if all(i in self.failed for i in self.placement.machines_for(j))
        ]
        if stranded:
            raise SimulationError(
                f"{len(stranded)} tasks lost to machine failures (first few: "
                f"{stranded[:5]}): every machine holding their data failed — "
                "replication would have kept them runnable"
            )
        super()._raise_incomplete(missing)
