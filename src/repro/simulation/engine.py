"""The discrete-event cluster simulator (Phase 2 executor).

:func:`simulate` plays the paper's second phase: given a Phase-1 placement,
a realization of the actual times, and an online policy, it executes the
tasks on ``m`` machines and returns the full
:class:`~repro.simulation.trace.ScheduleTrace`.

The information model is the paper's semi-clairvoyant one and is enforced
mechanically:

* the policy decides from a :class:`~repro.core.strategy.SchedulerView`
  that reveals a task's actual duration only after its completion event
  has been processed;
* completions at time ``t`` are processed before dispatch decisions at
  ``t`` (see :class:`~repro.simulation.events.EventKind`), so "the
  scheduler can wait for a machine to become idle to place the next one"
  holds exactly;
* a dispatched task must be unstarted and placed on the dispatching
  machine, else the engine raises — a buggy policy cannot silently cheat.

Optional ``release_times`` extend the model beyond the paper (all paper
experiments use release 0); a machine that finds nothing to run re-polls
at the next release instead of retiring, so the extension preserves the
work-conserving property.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.placement import Placement
from repro.core.strategy import OnlinePolicy, SchedulerView
from repro.obs.provenance import run_manifest
from repro.obs.tracer import get_tracer
from repro.simulation.events import EventKind, EventQueue
from repro.simulation.trace import ScheduleTrace, TaskRun
from repro.uncertainty.realization import Realization

__all__ = ["simulate", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when a policy misbehaves or the run cannot complete."""


def simulate(
    placement: Placement,
    realization: Realization,
    policy: OnlinePolicy,
    *,
    release_times: Sequence[float] | None = None,
    speeds: Sequence[float] | None = None,
    failures: Mapping[int, float] | None = None,
    label: str = "",
) -> ScheduleTrace:
    """Run Phase 2 and return the resulting trace.

    Parameters
    ----------
    placement:
        Phase-1 output; dispatches outside it raise.
    realization:
        Actual durations (hidden from the policy until completion).
    policy:
        The Phase-2 dispatch policy.
    release_times:
        Optional per-task release times (default: all zero, the paper's
        model).
    speeds:
        Optional per-machine speed factors (uniform-machines extension):
        task ``j`` on machine ``i`` runs for ``p_j / speeds[i]``.  The
        paper's model is all-ones; a wrong *global* speed estimate is
        exactly the throughput-inaccuracy reading of α in Section 4.
        Completion events still reveal the *work* :math:`p_j` (durations
        are machine-dependent, work is not).
    failures:
        Optional ``{machine: fail_time}`` (failure-injection extension —
        the Hadoop fault-tolerance motivation for replication): the
        machine stops permanently at ``fail_time``; a task it was running
        is aborted, reverts to unstarted, and must restart from scratch on
        another machine holding its data.  A task whose replicas are all
        on failed machines makes the run raise — exactly the availability
        argument for replication.
    label:
        Annotation stored on the returned trace.

    Raises
    ------
    SimulationError
        If the policy dispatches an invalid task, or retires machines while
        work remains that only retired machines could run (deadlock).
    """
    instance = placement.instance
    if realization.instance is not instance and realization.instance != instance:
        raise SimulationError("realization belongs to a different instance than placement")
    n, m = instance.n, instance.m

    if speeds is None:
        machine_speed = [1.0] * m
    else:
        if len(speeds) != m:
            raise SimulationError(f"speeds must have length {m}, got {len(speeds)}")
        machine_speed = [float(s) for s in speeds]
        for i, s in enumerate(machine_speed):
            if not s > 0:
                raise SimulationError(f"speeds[{i}] must be > 0, got {s}")

    if release_times is None:
        releases = [0.0] * n
    else:
        if len(release_times) != n:
            raise SimulationError(
                f"release_times must cover all {n} tasks, got {len(release_times)}"
            )
        releases = [float(r) for r in release_times]
        for j, r in enumerate(releases):
            if r < 0:
                raise SimulationError(f"release_times[{j}] must be >= 0, got {r}")

    view = SchedulerView(instance, placement)
    queue = EventQueue()
    released: set[int] = set()
    pending_releases = sorted(
        (r, j) for j, r in enumerate(releases) if r > 0.0
    )
    for j, r in enumerate(releases):
        if r == 0.0:
            released.add(j)
    if pending_releases:
        view._enable_release_tracking(released)
    for r, j in pending_releases:
        queue.push(r, EventKind.TASK_RELEASE, j)

    failed: set[int] = set()
    if failures:
        for i, t_fail in failures.items():
            if not 0 <= int(i) < m:
                raise SimulationError(f"failures references machine {i}, outside 0..{m-1}")
            if float(t_fail) < 0:
                raise SimulationError(f"failure time for machine {i} must be >= 0")
            queue.push(float(t_fail), EventKind.MACHINE_FAILURE, int(i))

    for i in range(m):
        queue.push(0.0, EventKind.MACHINE_IDLE, i)

    runs: list[TaskRun | None] = [None] * n
    aborted_runs: list[TaskRun] = []
    started_count = 0
    busy: dict[int, int] = {}  # machine -> running tid
    task_start: dict[int, float] = {}  # tid -> start time of current attempt

    tracer = get_tracer()
    obs = tracer.enabled  # hoisted: the hot loop pays one bool check per event

    with tracer.span("simulate", label=label, n=n, m=m) as sim_span:
        while queue:
            ev = queue.pop()
            view._advance(ev.time)
            if obs:
                tracer.count("sim.events_processed")

            if ev.kind == EventKind.TASK_RELEASE:
                released.add(ev.payload)
                view._mark_released(ev.payload)
                if obs:
                    tracer.count("sim.releases")
                continue

            if ev.kind == EventKind.TASK_COMPLETION:
                tid, machine = ev.payload
                if busy.get(machine) != tid:
                    continue  # stale completion: the attempt was aborted by a failure
                view._mark_completed(tid, realization.actual(tid))
                del busy[machine]
                task_start.pop(tid, None)
                queue.push(ev.time, EventKind.MACHINE_IDLE, machine)
                if obs:
                    tracer.count("sim.completions")
                    tracer.event("completion", task=tid, machine=machine, t=ev.time)
                continue

            if ev.kind == EventKind.MACHINE_FAILURE:
                machine = ev.payload
                if machine in failed:
                    continue
                failed.add(machine)
                view._mark_machine_failed(machine)
                if obs:
                    tracer.count("sim.machine_failures")
                    tracer.event("machine_failure", machine=machine, t=ev.time)
                running = busy.pop(machine, None)
                if running is not None:
                    # Abort the attempt: the task reverts to unstarted and must
                    # rerun from scratch elsewhere.
                    aborted_runs.append(
                        TaskRun(running, machine, task_start.pop(running), ev.time)
                    )
                    runs[running] = None
                    started_count -= 1
                    view._mark_aborted(running)
                    if obs:
                        tracer.count("sim.restarts")
                        tracer.event("restart", task=running, machine=machine, t=ev.time)
                    # Wake every healthy idle machine: one of them must pick
                    # the orphaned task up (they may have retired with None
                    # before the abort existed).
                    for i in range(m):
                        if i not in failed and i not in busy:
                            queue.push(ev.time, EventKind.MACHINE_IDLE, i)
                continue

            # MACHINE_IDLE
            machine = ev.payload
            if machine in busy or machine in failed:
                # Stale poll (a dispatch or failure raced this event).
                continue
            choice = policy.select(machine, view)
            if choice is None:
                # Work-conserving re-poll: if unreleased tasks could later run
                # here, wake the machine at the next release time.
                future = [
                    r
                    for r, j in pending_releases
                    if j not in released and placement.allows(j, machine) and r > ev.time
                ]
                if future:
                    queue.push(min(future), EventKind.MACHINE_IDLE, machine)
                continue

            tid = choice
            if not 0 <= tid < n:
                raise SimulationError(f"policy selected invalid task id {tid}")
            if runs[tid] is not None or view.is_started(tid):
                raise SimulationError(f"policy selected already-started task {tid}")
            if tid not in released:
                raise SimulationError(
                    f"policy selected task {tid} before its release time {releases[tid]}"
                )
            if not placement.allows(tid, machine):
                raise SimulationError(
                    f"policy sent task {tid} to machine {machine}, but its data is only on "
                    f"{sorted(placement.machines_for(tid))}"
                )
            duration = realization.actual(tid) / machine_speed[machine]
            end = ev.time + duration
            runs[tid] = TaskRun(tid, machine, ev.time, end)
            task_start[tid] = ev.time
            view._mark_started(tid, machine)
            busy[machine] = tid
            started_count += 1
            queue.push(end, EventKind.TASK_COMPLETION, (tid, machine))
            if obs:
                tracer.count("sim.dispatches")
                tracer.event("dispatch", task=tid, machine=machine, t=ev.time)

        missing = [j for j, r in enumerate(runs) if r is None]
        if missing:
            stranded = [
                j
                for j in missing
                if all(i in failed for i in placement.machines_for(j))
            ]
            if stranded:
                raise SimulationError(
                    f"{len(stranded)} tasks lost to machine failures (first few: "
                    f"{stranded[:5]}): every machine holding their data failed — "
                    "replication would have kept them runnable"
                )
            raise SimulationError(
                f"simulation ended with {len(missing)} unscheduled tasks "
                f"(first few: {missing[:5]}); the policy retired machines "
                "that still had eligible work"
            )
        trace = ScheduleTrace(
            tuple(runs),  # type: ignore[arg-type]
            label=label,
            aborted=tuple(aborted_runs),
        )
        if obs:
            sim_span.set(makespan=trace.makespan)
            _record_run_telemetry(tracer, trace, instance, label)
    if obs:
        tracer.manifest(
            run_manifest(
                "simulate",
                label or instance.name,
                params={"n": n, "m": m, "alpha": instance.alpha, "label": label},
                timing={"simulate_s": sim_span.duration},
            )
        )
    return trace


def _record_run_telemetry(tracer, trace: ScheduleTrace, instance, label: str) -> None:
    """Post-run gauges: makespan and per-machine idle time.

    Idle time here is ``makespan − busy time`` per machine — the quantity
    load-balancing work will want to watch shrink.
    """
    registry = tracer.registry
    registry.gauge("sim.makespan").set(trace.makespan)
    idle = registry.timer("sim.idle_time")
    for load in trace.loads(instance.m):
        idle.observe(trace.makespan - load)
