"""The discrete-event cluster simulator (Phase 2 executor).

:func:`simulate` plays the paper's second phase: given a Phase-1 placement,
a realization of the actual times, and an online policy, it executes the
tasks on ``m`` machines and returns the full
:class:`~repro.simulation.trace.ScheduleTrace`.

The information model is the paper's semi-clairvoyant one and is enforced
mechanically:

* the policy decides from a :class:`~repro.core.strategy.SchedulerView`
  that reveals a task's actual duration only after its completion event
  has been processed;
* completions at time ``t`` are processed before dispatch decisions at
  ``t`` (see :class:`~repro.simulation.events.EventKind`), so "the
  scheduler can wait for a machine to become idle to place the next one"
  holds exactly;
* a dispatched task must be unstarted and placed on the dispatching
  machine, else the engine raises — a buggy policy cannot silently cheat.

Optional ``release_times`` extend the model beyond the paper (all paper
experiments use release 0); a machine that finds nothing to run re-polls
at the next release instead of retiring, so the extension preserves the
work-conserving property.

Fault injection (the Hadoop fault-tolerance motivation for replication)
is driven by a :class:`~repro.faults.plan.FaultPlan` via ``faults=``:
machines can crash permanently, crash and recover after a downtime, or
straggle through degraded-speed intervals (a running task's *remaining
work* is rescaled at each speed boundary — no lost progress, no free
speedup).  The legacy ``failures={machine: time}`` mapping is kept as a
crash-stop shim and produces identical traces.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.core.placement import Placement
from repro.core.strategy import OnlinePolicy, SchedulerView
from repro.faults.plan import FaultPlan
from repro.obs.provenance import run_manifest
from repro.obs.tracer import get_tracer
from repro.simulation.events import EventKind, EventQueue
from repro.simulation.trace import ScheduleTrace, TaskRun
from repro.uncertainty.realization import Realization

__all__ = ["simulate", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when a policy misbehaves or the run cannot complete."""


def simulate(
    placement: Placement,
    realization: Realization,
    policy: OnlinePolicy,
    *,
    release_times: Sequence[float] | None = None,
    speeds: Sequence[float] | None = None,
    failures: Mapping[int, float] | None = None,
    faults: FaultPlan | None = None,
    label: str = "",
) -> ScheduleTrace:
    """Run Phase 2 and return the resulting trace.

    Parameters
    ----------
    placement:
        Phase-1 output; dispatches outside it raise.
    realization:
        Actual durations (hidden from the policy until completion).
    policy:
        The Phase-2 dispatch policy.
    release_times:
        Optional per-task release times (default: all zero, the paper's
        model).
    speeds:
        Optional per-machine speed factors (uniform-machines extension):
        task ``j`` on machine ``i`` runs for ``p_j / speeds[i]``.  The
        paper's model is all-ones; a wrong *global* speed estimate is
        exactly the throughput-inaccuracy reading of α in Section 4.
        Completion events still reveal the *work* :math:`p_j` (durations
        are machine-dependent, work is not).
    failures:
        Legacy crash-stop shim, equivalent to
        ``faults=FaultPlan.from_failures(failures)``: each machine stops
        permanently at its mapped time.  Mutually exclusive with
        ``faults``.
    faults:
        A :class:`~repro.faults.plan.FaultPlan` of crash-stop,
        crash-recover, degraded-speed, and correlated faults.  A machine
        that fails aborts its running task (the task reverts to unstarted
        and must restart from scratch on a machine holding its data), a
        recovered machine polls for work again, and degraded intervals
        rescale the remaining work of whatever is running.  A task whose
        replicas are all on *permanently* failed machines makes the run
        raise — exactly the availability argument for replication.
    label:
        Annotation stored on the returned trace.

    Raises
    ------
    SimulationError
        If the policy dispatches an invalid task, the fault plan is
        malformed, or the run cannot complete (tasks stranded on failed
        machines, or machines retired while eligible work remains).
    """
    instance = placement.instance
    if realization.instance is not instance and realization.instance != instance:
        raise SimulationError("realization belongs to a different instance than placement")
    n, m = instance.n, instance.m

    if speeds is None:
        machine_speed = [1.0] * m
    else:
        if len(speeds) != m:
            raise SimulationError(f"speeds must have length {m}, got {len(speeds)}")
        machine_speed = [float(s) for s in speeds]
        for i, s in enumerate(machine_speed):
            if not s > 0:
                raise SimulationError(f"speeds[{i}] must be > 0, got {s}")

    if release_times is None:
        releases = [0.0] * n
    else:
        if len(release_times) != n:
            raise SimulationError(
                f"release_times must cover all {n} tasks, got {len(release_times)}"
            )
        releases = [float(r) for r in release_times]
        for j, r in enumerate(releases):
            if r < 0:
                raise SimulationError(f"release_times[{j}] must be >= 0, got {r}")

    if failures is not None and faults is not None:
        raise SimulationError("pass either failures= (legacy shim) or faults=, not both")
    plan: FaultPlan | None = None
    if failures:
        plan = FaultPlan.from_failures(failures)
    elif faults:
        plan = faults

    view = SchedulerView(instance, placement)
    queue = EventQueue()
    released: set[int] = set()
    pending_releases = sorted(
        (r, j) for j, r in enumerate(releases) if r > 0.0
    )
    for j, r in enumerate(releases):
        if r == 0.0:
            released.add(j)
    if pending_releases:
        view._enable_release_tracking(released)
    for r, j in pending_releases:
        queue.push(r, EventKind.TASK_RELEASE, j)

    failed: set[int] = set()
    if plan:
        try:
            plan.validate(m)
        except ValueError as exc:
            raise SimulationError(str(exc)) from exc
        for at, machine, downtime in plan.crashes():
            queue.push(at, EventKind.MACHINE_FAILURE, (machine, downtime))
        for slow in plan.slowdowns():
            queue.push(slow.start, EventKind.MACHINE_SPEED, (slow.machine, slow.factor))
            if math.isfinite(slow.end):
                queue.push(slow.end, EventKind.MACHINE_SPEED, (slow.machine, 1.0))

    for i in range(m):
        queue.push(0.0, EventKind.MACHINE_IDLE, i)

    runs: list[TaskRun | None] = [None] * n
    aborted_runs: list[TaskRun] = []
    busy: dict[int, int] = {}  # machine -> running tid
    task_start: dict[int, float] = {}  # tid -> start time of current attempt
    # Degraded-interval multiplier per machine (1.0 = healthy base speed).
    degrade: list[float] = [1.0] * m
    # Completion-event staleness: each scheduled completion carries the
    # machine's attempt token; aborts and speed-rescheduling bump it so a
    # superseded completion event is ignored when it surfaces.
    attempt_token: dict[int, int] = {}
    scheduled_end: dict[int, float] = {}  # machine -> current completion time

    tracer = get_tracer()
    obs = tracer.enabled  # hoisted: the hot loop pays one bool check per event

    with tracer.span("simulate", label=label, n=n, m=m) as sim_span:
        while queue:
            ev = queue.pop()
            view._advance(ev.time)
            if obs:
                tracer.count("sim.events_processed")

            if ev.kind == EventKind.TASK_RELEASE:
                released.add(ev.payload)
                view._mark_released(ev.payload)
                if obs:
                    tracer.count("sim.releases")
                continue

            if ev.kind == EventKind.TASK_COMPLETION:
                tid, machine, token = ev.payload
                if busy.get(machine) != tid or attempt_token.get(machine) != token:
                    # Stale: the attempt was aborted by a failure, or a
                    # speed change rescheduled its completion.
                    continue
                view._mark_completed(tid, realization.actual(tid))
                runs[tid] = TaskRun(tid, machine, task_start.pop(tid), ev.time)
                del busy[machine]
                scheduled_end.pop(machine, None)
                queue.push(ev.time, EventKind.MACHINE_IDLE, machine)
                if obs:
                    tracer.count("sim.completions")
                    tracer.event("completion", task=tid, machine=machine, t=ev.time)
                continue

            if ev.kind == EventKind.MACHINE_FAILURE:
                machine, downtime = ev.payload
                if machine in failed:
                    continue  # absorbed: the machine is already down
                failed.add(machine)
                view._mark_machine_failed(machine)
                if math.isfinite(downtime):
                    queue.push(ev.time + downtime, EventKind.MACHINE_RECOVERY, machine)
                if obs:
                    tracer.count("sim.machine_failures")
                    tracer.event("machine_failure", machine=machine, t=ev.time)
                running = busy.pop(machine, None)
                if running is not None:
                    # Abort the attempt: the task reverts to unstarted and must
                    # rerun from scratch elsewhere.
                    aborted_runs.append(
                        TaskRun(running, machine, task_start.pop(running), ev.time)
                    )
                    scheduled_end.pop(machine, None)
                    view._mark_aborted(running)
                    if obs:
                        tracer.count("sim.restarts")
                        tracer.event("restart", task=running, machine=machine, t=ev.time)
                    # Wake every healthy idle machine: one of them must pick
                    # the orphaned task up (they may have retired with None
                    # before the abort existed).
                    for i in range(m):
                        if i not in failed and i not in busy:
                            queue.push(ev.time, EventKind.MACHINE_IDLE, i)
                continue

            if ev.kind == EventKind.MACHINE_RECOVERY:
                machine = ev.payload
                if machine not in failed:
                    continue
                failed.discard(machine)
                view._mark_machine_recovered(machine)
                if obs:
                    tracer.count("sim.machine_recoveries")
                    tracer.event("machine_recovery", machine=machine, t=ev.time)
                queue.push(ev.time, EventKind.MACHINE_IDLE, machine)
                continue

            if ev.kind == EventKind.MACHINE_SPEED:
                machine, factor = ev.payload
                old_eff = machine_speed[machine] * degrade[machine]
                degrade[machine] = factor
                new_eff = machine_speed[machine] * factor
                if obs:
                    if factor != 1.0:
                        tracer.count("sim.machine_degraded")
                    tracer.event(
                        "machine_degraded", machine=machine, factor=factor, t=ev.time
                    )
                running = busy.get(machine)
                if running is not None and new_eff != old_eff:
                    # Rescale the remaining work onto the new speed and
                    # supersede the previously scheduled completion.
                    remaining_work = (scheduled_end[machine] - ev.time) * old_eff
                    new_end = ev.time + remaining_work / new_eff
                    attempt_token[machine] += 1
                    scheduled_end[machine] = new_end
                    queue.push(
                        new_end,
                        EventKind.TASK_COMPLETION,
                        (running, machine, attempt_token[machine]),
                    )
                continue

            # MACHINE_IDLE
            machine = ev.payload
            if machine in busy or machine in failed:
                # Stale poll (a dispatch or failure raced this event).
                continue
            choice = policy.select(machine, view)
            if choice is None:
                # Work-conserving re-poll: if unreleased tasks could later run
                # here, wake the machine at the next release time.
                future = [
                    r
                    for r, j in pending_releases
                    if j not in released and placement.allows(j, machine) and r > ev.time
                ]
                if future:
                    queue.push(min(future), EventKind.MACHINE_IDLE, machine)
                continue

            tid = choice
            if not 0 <= tid < n:
                raise SimulationError(f"policy selected invalid task id {tid}")
            if view.is_started(tid):
                raise SimulationError(f"policy selected already-started task {tid}")
            if tid not in released:
                raise SimulationError(
                    f"policy selected task {tid} before its release time {releases[tid]}"
                )
            if not placement.allows(tid, machine):
                raise SimulationError(
                    f"policy sent task {tid} to machine {machine}, but its data is only on "
                    f"{sorted(placement.machines_for(tid))}"
                )
            duration = realization.actual(tid) / (machine_speed[machine] * degrade[machine])
            end = ev.time + duration
            task_start[tid] = ev.time
            view._mark_started(tid, machine)
            busy[machine] = tid
            attempt_token[machine] = attempt_token.get(machine, 0) + 1
            scheduled_end[machine] = end
            queue.push(end, EventKind.TASK_COMPLETION, (tid, machine, attempt_token[machine]))
            if obs:
                tracer.count("sim.dispatches")
                tracer.event("dispatch", task=tid, machine=machine, t=ev.time)

        missing = [j for j, r in enumerate(runs) if r is None]
        if missing:
            stranded = [
                j
                for j in missing
                if all(i in failed for i in placement.machines_for(j))
            ]
            if stranded:
                raise SimulationError(
                    f"{len(stranded)} tasks lost to machine failures (first few: "
                    f"{stranded[:5]}): every machine holding their data failed — "
                    "replication would have kept them runnable"
                )
            raise SimulationError(
                f"simulation ended with {len(missing)} unscheduled tasks "
                f"(first few: {missing[:5]}); the policy retired machines "
                "that still had eligible work"
            )
        trace = ScheduleTrace(
            tuple(runs),  # type: ignore[arg-type]
            label=label,
            aborted=tuple(aborted_runs),
        )
        if obs:
            sim_span.set(makespan=trace.makespan)
            _record_run_telemetry(tracer, trace, instance, label)
    if obs:
        tracer.manifest(
            run_manifest(
                "simulate",
                label or instance.name,
                params={"n": n, "m": m, "alpha": instance.alpha, "label": label},
                timing={"simulate_s": sim_span.duration},
            )
        )
    return trace


def _record_run_telemetry(tracer, trace: ScheduleTrace, instance, label: str) -> None:
    """Post-run gauges: makespan and per-machine idle time.

    Idle time here is ``makespan − busy time`` per machine — the quantity
    load-balancing work will want to watch shrink.
    """
    registry = tracer.registry
    registry.gauge("sim.makespan").set(trace.makespan)
    idle = registry.timer("sim.idle_time")
    for load in trace.loads(instance.m):
        idle.observe(trace.makespan - load)
