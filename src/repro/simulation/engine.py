"""The discrete-event cluster simulator (Phase 2 executor).

:func:`simulate` plays the paper's second phase: given a Phase-1 placement,
a realization of the actual times, and an online policy, it executes the
tasks on ``m`` machines and returns the full
:class:`~repro.simulation.trace.ScheduleTrace`.

The information model is the paper's semi-clairvoyant one and is enforced
mechanically:

* the policy decides from a :class:`~repro.core.strategy.SchedulerView`
  that reveals a task's actual duration only after its completion event
  has been processed;
* completions at time ``t`` are processed before dispatch decisions at
  ``t`` (see :class:`~repro.simulation.events.EventKind`), so "the
  scheduler can wait for a machine to become idle to place the next one"
  holds exactly;
* a dispatched task must be unstarted and placed on the dispatching
  machine, else the engine raises — a buggy policy cannot silently cheat.

This module is the *orchestrator*: input validation, capability
enforcement, kernel selection, and observability.  The event loop itself
lives in :mod:`repro.simulation.kernel` — a fault-free run takes the fast
:class:`~repro.simulation.kernel.EventKernel` (no fault bookkeeping at
all), a run with a :class:`~repro.faults.plan.FaultPlan` takes the
:class:`~repro.simulation.kernel.FaultAwareKernel`.

Optional ``release_times`` extend the model beyond the paper (all paper
experiments use release 0); a machine that finds nothing to run re-polls
at the next release instead of retiring, so the extension preserves the
work-conserving property.

Fault injection (the Hadoop fault-tolerance motivation for replication)
is driven by a :class:`~repro.faults.plan.FaultPlan` via ``faults=``:
machines can crash permanently, crash and recover after a downtime, or
straggle through degraded-speed intervals (a running task's *remaining
work* is rescaled at each speed boundary — no lost progress, no free
speedup).  The legacy ``failures={machine: time}`` mapping is kept as a
crash-stop shim and produces identical traces.

Pass ``capabilities=`` (a :class:`~repro.registry.Capabilities`, normally
looked up via :func:`repro.registry.capabilities_of`) to enforce the
strategy's declared envelope *structurally*: a fault plan given to a
strategy whose policy cannot survive aborts, or release times given to a
policy that never re-checks availability, raise
:class:`~repro.registry.CapabilityError` before the simulation starts —
instead of silently producing a schedule the strategy's analysis does not
cover.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.placement import Placement
from repro.core.strategy import OnlinePolicy
from repro.faults.plan import FaultPlan
from repro.obs.provenance import run_manifest
from repro.obs.tracer import get_tracer
from repro.registry.capabilities import Capabilities, CapabilityError
from repro.simulation.kernel import (
    EventKernel,
    FaultAwareKernel,
    SimulationError,
    SimulationObserver,
    TracerObserver,
)
from repro.simulation.trace import ScheduleTrace
from repro.uncertainty.realization import Realization

__all__ = ["simulate", "SimulationError"]

_NO_OP_OBSERVER = SimulationObserver()


def simulate(
    placement: Placement,
    realization: Realization,
    policy: OnlinePolicy,
    *,
    release_times: Sequence[float] | None = None,
    speeds: Sequence[float] | None = None,
    failures: Mapping[int, float] | None = None,
    faults: FaultPlan | None = None,
    capabilities: Capabilities | None = None,
    label: str = "",
) -> ScheduleTrace:
    """Run Phase 2 and return the resulting trace.

    Parameters
    ----------
    placement:
        Phase-1 output; dispatches outside it raise.
    realization:
        Actual durations (hidden from the policy until completion).
    policy:
        The Phase-2 dispatch policy.
    release_times:
        Optional per-task release times (default: all zero, the paper's
        model).
    speeds:
        Optional per-machine speed factors (uniform-machines extension):
        task ``j`` on machine ``i`` runs for ``p_j / speeds[i]``.  The
        paper's model is all-ones; a wrong *global* speed estimate is
        exactly the throughput-inaccuracy reading of α in Section 4.
        Completion events still reveal the *work* :math:`p_j` (durations
        are machine-dependent, work is not).
    failures:
        Legacy crash-stop shim, equivalent to
        ``faults=FaultPlan.from_failures(failures)``: each machine stops
        permanently at its mapped time.  Mutually exclusive with
        ``faults``.
    faults:
        A :class:`~repro.faults.plan.FaultPlan` of crash-stop,
        crash-recover, degraded-speed, and correlated faults.  A machine
        that fails aborts its running task (the task reverts to unstarted
        and must restart from scratch on a machine holding its data), a
        recovered machine polls for work again, and degraded intervals
        rescale the remaining work of whatever is running.  A task whose
        replicas are all on *permanently* failed machines makes the run
        raise — exactly the availability argument for replication.
    capabilities:
        The strategy's declared capability envelope (see
        :func:`repro.registry.capabilities_of`).  When given, a fault
        plan against ``supports_faults=False`` or release times against
        ``supports_releases=False`` raise
        :class:`~repro.registry.CapabilityError` up front.  ``None``
        (default) skips the check — existing callers are unaffected.
    label:
        Annotation stored on the returned trace.

    Raises
    ------
    SimulationError
        If the policy dispatches an invalid task, the fault plan is
        malformed, or the run cannot complete (tasks stranded on failed
        machines, or machines retired while eligible work remains).
    CapabilityError
        If ``capabilities`` is given and the run requires a capability
        the strategy does not declare.
    """
    instance = placement.instance
    if realization.instance is not instance and realization.instance != instance:
        raise SimulationError("realization belongs to a different instance than placement")
    n, m = instance.n, instance.m

    if speeds is None:
        machine_speed = [1.0] * m
    else:
        if len(speeds) != m:
            raise SimulationError(f"speeds must have length {m}, got {len(speeds)}")
        machine_speed = [float(s) for s in speeds]
        for i, s in enumerate(machine_speed):
            if not s > 0:
                raise SimulationError(f"speeds[{i}] must be > 0, got {s}")

    if release_times is None:
        releases = [0.0] * n
    else:
        if len(release_times) != n:
            raise SimulationError(
                f"release_times must cover all {n} tasks, got {len(release_times)}"
            )
        releases = [float(r) for r in release_times]
        for j, r in enumerate(releases):
            if r < 0:
                raise SimulationError(f"release_times[{j}] must be >= 0, got {r}")

    if failures is not None and faults is not None:
        raise SimulationError("pass either failures= (legacy shim) or faults=, not both")
    plan: FaultPlan | None = None
    if failures:
        plan = FaultPlan.from_failures(failures)
    elif faults:
        plan = faults
    if plan:
        try:
            plan.validate(m)
        except ValueError as exc:
            raise SimulationError(str(exc)) from exc

    if capabilities is not None:
        if plan is not None and not capabilities.supports_faults:
            raise CapabilityError(
                "this strategy's policy does not survive machine faults "
                "(supports_faults=False); running it under a FaultPlan would "
                "produce schedules its analysis does not cover"
            )
        if not capabilities.supports_releases and any(r > 0.0 for r in releases):
            raise CapabilityError(
                "this strategy's policy never re-checks task availability "
                "(supports_releases=False); it cannot run with nonzero "
                "release times"
            )

    tracer = get_tracer()
    obs = tracer.enabled  # hoisted: the hot loop pays one bool check per event
    observer = TracerObserver(tracer) if obs else _NO_OP_OBSERVER

    if plan:
        kernel: EventKernel = FaultAwareKernel(
            placement,
            realization,
            policy,
            releases=releases,
            machine_speed=machine_speed,
            observer=observer,
            plan=plan,
        )
    else:
        kernel = EventKernel(
            placement,
            realization,
            policy,
            releases=releases,
            machine_speed=machine_speed,
            observer=observer,
        )

    with tracer.span("simulate", label=label, n=n, m=m) as sim_span:
        result = kernel.run()
        trace = ScheduleTrace(
            tuple(result.runs),  # type: ignore[arg-type]
            label=label,
            aborted=tuple(result.aborted),
        )
        if obs:
            sim_span.set(makespan=trace.makespan)
            _record_run_telemetry(tracer, trace, instance, label)
    if obs:
        tracer.manifest(
            run_manifest(
                "simulate",
                label or instance.name,
                params={"n": n, "m": m, "alpha": instance.alpha, "label": label},
                timing={"simulate_s": sim_span.duration},
            )
        )
    return trace


def _record_run_telemetry(tracer, trace: ScheduleTrace, instance, label: str) -> None:
    """Post-run gauges: makespan and per-machine idle time.

    Idle time here is ``makespan − busy time`` per machine — the quantity
    load-balancing work will want to watch shrink.
    """
    registry = tracer.registry
    registry.gauge("sim.makespan").set(trace.makespan)
    idle = registry.timer("sim.idle_time")
    for load in trace.loads(instance.m):
        idle.observe(trace.makespan - load)
