"""Schedule quality metrics beyond the makespan.

The paper optimizes :math:`C_{max}`, but its related work touches
flow-time and fairness objectives, and any adopter of this library will
want the standard dashboard.  All metrics are pure functions of a
:class:`~repro.simulation.trace.ScheduleTrace` (plus release times where
relevant):

``total_completion_time``  — :math:`\\sum_j C_j` (SPT's objective)
``mean_flow_time``         — average of :math:`C_j − r_j`
``max_flow_time``          — worst task's time in system
``mean_stretch``           — average of :math:`(C_j − r_j)/p_j`
  (slowdown; the fairness metric — small tasks hate waiting behind big
  ones)
``machine_utilization``    — busy time / (m · makespan)
``load_imbalance``         — max load / mean load (1.0 = perfect balance)
``metrics_summary``        — all of the above in one dict
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import get_tracer
from repro.simulation.trace import ScheduleTrace
from repro.uncertainty.realization import Realization

__all__ = [
    "total_completion_time",
    "mean_flow_time",
    "max_flow_time",
    "mean_stretch",
    "machine_utilization",
    "load_imbalance",
    "metrics_summary",
]


def _releases(trace: ScheduleTrace, release_times: Sequence[float] | None) -> list[float]:
    if release_times is None:
        return [0.0] * trace.n
    if len(release_times) != trace.n:
        raise ValueError(
            f"release_times must cover all {trace.n} tasks, got {len(release_times)}"
        )
    return [float(r) for r in release_times]


def total_completion_time(trace: ScheduleTrace) -> float:
    """:math:`\\sum_j C_j`."""
    return math.fsum(trace.completion_times())


def mean_flow_time(
    trace: ScheduleTrace, release_times: Sequence[float] | None = None
) -> float:
    """Average time in system :math:`(C_j - r_j)`."""
    rel = _releases(trace, release_times)
    return math.fsum(c - r for c, r in zip(trace.completion_times(), rel)) / trace.n


def max_flow_time(
    trace: ScheduleTrace, release_times: Sequence[float] | None = None
) -> float:
    """Worst time in system."""
    rel = _releases(trace, release_times)
    return max(c - r for c, r in zip(trace.completion_times(), rel))


def mean_stretch(
    trace: ScheduleTrace,
    realization: Realization,
    release_times: Sequence[float] | None = None,
) -> float:
    """Average slowdown :math:`(C_j - r_j)/p_j` (≥ 1; 1 = ran immediately)."""
    rel = _releases(trace, release_times)
    return (
        math.fsum(
            (c - r) / realization.actual(j)
            for j, (c, r) in enumerate(zip(trace.completion_times(), rel))
        )
        / trace.n
    )


def machine_utilization(trace: ScheduleTrace, m: int) -> float:
    """Fraction of machine-time busy before the makespan (∈ (0, 1])."""
    busy = math.fsum(r.duration for r in trace.runs)
    return busy / (m * trace.makespan)


def load_imbalance(trace: ScheduleTrace, m: int) -> float:
    """``max load / mean load`` over machines that could matter (all m).

    1.0 means perfectly balanced; the makespan ratio against the
    average-load bound is exactly this quantity.
    """
    loads = trace.loads(m)
    mean = math.fsum(loads) / m
    if mean == 0.0:
        raise ValueError("empty schedule has no load balance")
    return max(loads) / mean


def metrics_summary(
    trace: ScheduleTrace,
    realization: Realization,
    m: int,
    release_times: Sequence[float] | None = None,
    *,
    registry: "MetricsRegistry | None" = None,
) -> dict[str, float]:
    """All metrics in one dict (keys are the function names).

    When an observability trace was recorded (the global tracer is
    enabled, or an explicit :class:`~repro.obs.metrics.MetricsRegistry`
    is passed), the engine's exact ``events_processed`` and ``restarts``
    counters are merged in.  Without a trace the dict is exactly the
    historical pure-function output, so existing callers are unaffected.
    """
    out = {
        "makespan": trace.makespan,
        "total_completion_time": total_completion_time(trace),
        "mean_flow_time": mean_flow_time(trace, release_times),
        "max_flow_time": max_flow_time(trace, release_times),
        "mean_stretch": mean_stretch(trace, realization, release_times),
        "machine_utilization": machine_utilization(trace, m),
        "load_imbalance": load_imbalance(trace, m),
    }
    reg = registry
    if reg is None:
        tracer = get_tracer()
        reg = tracer.registry if tracer.enabled else None
    if reg is not None:
        counters = reg.counters
        if "sim.events_processed" in counters:
            out["events_processed"] = float(counters["sim.events_processed"].value)
        if "sim.restarts" in counters:
            out["restarts"] = float(counters["sim.restarts"].value)
    return out
