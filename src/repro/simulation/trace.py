"""Execution traces: the full record of one simulated Phase 2.

A :class:`ScheduleTrace` stores, for every task, where and when it ran.
The analysis layer derives makespans, per-machine loads and Gantt charts
from it, and — crucially for the reproduction — the feasibility checker
:meth:`ScheduleTrace.validate` proves that the simulated execution

* ran every task exactly once,
* only on a machine holding the task's data (its :math:`M_j`),
* without overlap on any machine, and
* for exactly its actual duration.

Every property test about "the simulator is honest" goes through this
class, so the checks are deliberately strict and raise with precise
messages.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.placement import Placement
from repro.uncertainty.realization import Realization

__all__ = ["TaskRun", "ScheduleTrace"]


@dataclass(frozen=True, slots=True)
class TaskRun:
    """One task's execution: machine and time interval."""

    tid: int
    machine: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ScheduleTrace:
    """Record of a complete simulated schedule.

    Attributes
    ----------
    runs:
        One :class:`TaskRun` per task, in task-id order — the *successful*
        execution of each task.
    aborted:
        Partial executions cut short by machine failures (failure-injection
        extension); empty in the paper's model.  Aborted intervals still
        occupy their machine and are checked for overlap, but carry no
        duration requirement (the task restarted from scratch elsewhere).
    label:
        Strategy/realization description for reports.
    """

    runs: tuple[TaskRun, ...]
    label: str = field(default="", compare=False)
    aborted: tuple[TaskRun, ...] = ()

    # -- aggregates --------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Completion time of the last task (:math:`C_{max}`)."""
        return max(r.end for r in self.runs)

    @property
    def n(self) -> int:
        return len(self.runs)

    def machine_of(self, tid: int) -> int:
        return self.runs[tid].machine

    def assignment(self) -> list[int]:
        """Machine of each task, task-id indexed (the :math:`E_i` sets)."""
        return [r.machine for r in self.runs]

    def loads(self, m: int) -> list[float]:
        """Total busy time per machine."""
        loads = [0.0] * m
        for r in self.runs:
            loads[r.machine] += r.duration
        return loads

    def tasks_per_machine(self, m: int) -> list[list[int]]:
        """Task ids per machine, ordered by start time."""
        per: list[list[TaskRun]] = [[] for _ in range(m)]
        for r in self.runs:
            per[r.machine].append(r)
        return [[r.tid for r in sorted(rs, key=lambda r: (r.start, r.tid))] for rs in per]

    def idle_time(self, m: int) -> float:
        """Total machine-idle time before the makespan.

        ``m * makespan - total busy time``; the "no machine idles while
        work is available" property of List Scheduling keeps this small
        for the paper's policies.
        """
        return m * self.makespan - math.fsum(r.duration for r in self.runs)

    def completion_times(self) -> list[float]:
        """End time of each task, task-id indexed."""
        return [r.end for r in self.runs]

    # -- validation ---------------------------------------------------------------
    def validate(
        self,
        placement: Placement,
        realization: Realization,
        *,
        speeds: "tuple[float, ...] | list[float] | None" = None,
        rel_tol: float = 1e-9,
        check_durations: bool = True,
    ) -> None:
        """Check full feasibility of this trace; raise ``ValueError`` if broken.

        Verifies coverage, placement respect, duration fidelity against the
        realization (scaled by per-machine ``speeds`` when the
        uniform-machines extension is in play), non-negative start times
        and machine exclusivity.  ``check_durations=False`` skips the
        fidelity check — required for runs under degraded-speed fault
        intervals, where a task's wall-clock duration legitimately differs
        from ``actual / speed`` (its remaining work was rescaled mid-run).
        """
        inst = placement.instance
        if len(self.runs) != inst.n:
            raise ValueError(f"trace covers {len(self.runs)} tasks, instance has {inst.n}")
        seen: set[int] = set()
        for idx, run in enumerate(self.runs):
            if run.tid != idx:
                raise ValueError(f"runs must be task-id ordered: runs[{idx}].tid == {run.tid}")
            if run.tid in seen:
                raise ValueError(f"task {run.tid} appears twice")
            seen.add(run.tid)
            if not 0 <= run.machine < inst.m:
                raise ValueError(f"task {run.tid} ran on machine {run.machine}, outside 0..{inst.m-1}")
            if not placement.allows(run.tid, run.machine):
                raise ValueError(
                    f"task {run.tid} ran on machine {run.machine} but its data is only on "
                    f"{sorted(placement.machines_for(run.tid))}"
                )
            if run.start < -rel_tol:
                raise ValueError(f"task {run.tid} starts at negative time {run.start}")
            if check_durations:
                expected = realization.actual(run.tid)
                if speeds is not None:
                    expected /= speeds[run.machine]
                if not math.isclose(run.duration, expected, rel_tol=rel_tol, abs_tol=1e-12):
                    raise ValueError(
                        f"task {run.tid} ran for {run.duration}, realization says {expected}"
                    )
        for run in self.aborted:
            if not placement.allows(run.tid, run.machine):
                raise ValueError(
                    f"aborted attempt of task {run.tid} ran on machine {run.machine} "
                    f"without a replica there"
                )
        self._check_no_overlap(inst.m, rel_tol=rel_tol)

    def _check_no_overlap(self, m: int, *, rel_tol: float) -> None:
        per: list[list[TaskRun]] = [[] for _ in range(m)]
        for r in self.runs + self.aborted:
            per[r.machine].append(r)
        for i, rs in enumerate(per):
            rs.sort(key=lambda r: (r.start, r.end))
            for a, b in zip(rs, rs[1:]):
                gap = b.start - a.end
                if gap < -rel_tol * max(1.0, abs(a.end)):
                    raise ValueError(
                        f"machine {i}: task {a.tid} [{a.start}, {a.end}] overlaps "
                        f"task {b.tid} [{b.start}, {b.end}]"
                    )

    # -- construction helpers --------------------------------------------------------
    @staticmethod
    def from_runs(runs: Iterable[TaskRun], label: str = "") -> "ScheduleTrace":
        """Build a trace from runs in any order (sorted by task id here)."""
        ordered = tuple(sorted(runs, key=lambda r: r.tid))
        return ScheduleTrace(ordered, label=label)
