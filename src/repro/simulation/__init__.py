"""Discrete-event cluster simulator: the Phase-2 executor."""

from repro.simulation.engine import SimulationError, simulate
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.gantt import render_gantt
from repro.simulation.kernel import (
    EventKernel,
    FaultAwareKernel,
    SimulationObserver,
    TracerObserver,
)
from repro.simulation.metrics import (
    load_imbalance,
    machine_utilization,
    max_flow_time,
    mean_flow_time,
    mean_stretch,
    metrics_summary,
    total_completion_time,
)
from repro.simulation.trace import ScheduleTrace, TaskRun

__all__ = [
    "simulate",
    "SimulationError",
    "EventKernel",
    "FaultAwareKernel",
    "SimulationObserver",
    "TracerObserver",
    "ScheduleTrace",
    "TaskRun",
    "EventQueue",
    "Event",
    "EventKind",
    "render_gantt",
    "metrics_summary",
    "total_completion_time",
    "mean_flow_time",
    "max_flow_time",
    "mean_stretch",
    "machine_utilization",
    "load_imbalance",
]
