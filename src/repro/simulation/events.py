"""Deterministic event queue for the discrete-event engine.

Events are ``(time, priority, seq, payload)`` tuples in a binary heap.
Determinism matters for the reproduction: two runs of the same strategy on
the same realization must produce the identical trace (tests assert this),
so ties are broken first by an explicit integer priority (e.g. completions
before idle polls at the same instant), then by insertion sequence.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(IntEnum):
    """Event kinds, ordered by processing priority at equal timestamps.

    ``TASK_COMPLETION`` precedes ``MACHINE_IDLE`` so a completion at time
    ``t`` is revealed before any dispatch decision at ``t`` — exactly the
    semi-clairvoyant model: "the actual processing times of the tasks are
    known once they complete".  ``TASK_RELEASE`` precedes both so newly
    released work is visible to same-instant decisions.
    ``MACHINE_FAILURE`` sits between completion and idle: a task finishing
    exactly at the failure instant still completes, but the failed machine
    never dispatches at (or after) that instant.  ``MACHINE_RECOVERY``
    follows failure: a new outage landing at the exact instant an earlier
    one ends is processed first, so the kernel can extend the downtime and
    discard the superseded recovery — overlapping outages union instead of
    racing.  ``MACHINE_SPEED`` transitions apply before any
    same-instant dispatch, so a task dispatched at a degraded interval's
    boundary runs at the interval's speed.
    """

    TASK_RELEASE = 0
    TASK_COMPLETION = 1
    MACHINE_FAILURE = 2
    MACHINE_RECOVERY = 3
    MACHINE_SPEED = 4
    MACHINE_IDLE = 5


@dataclass(frozen=True, slots=True, order=True)
class Event:
    """One scheduled event.

    Ordering: time, then kind, then sequence number — total and
    deterministic.
    """

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Min-heap of :class:`Event` with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns it (mainly for tests)."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        ev = Event(float(time), kind, next(self._counter), payload)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return the earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
