"""The paper's proofs, re-run numerically step by step.

A reproduction of a theory paper should not only implement the algorithms
— it should be able to *exhibit every inequality of every proof on
concrete instances*.  Each ``check_*_chain`` function here takes an
instance (or the proof's own construction), replays the corresponding
proof's chain of inequalities with real numbers, and returns a
:class:`ProofCheck` listing each step with its left/right values.  A step
that fails numerically would mean either an implementation bug or a
counterexample to the paper; the test suite asserts none ever does across
randomized instances.

The step labels follow the paper's equation numbers where they exist
(Eq. 2, Eq. 3, ... as in Section 5) and the prose otherwise.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.analysis.ratios import run_strategy
from repro.core.adversary import theorem1_realization
from repro.core.bounds import (
    lb_no_replication,
    ub_lpt_no_choice,
    ub_lpt_no_restriction_raw,
    ub_ls_group,
)
from repro.core.model import Instance
from repro.core.strategies.lpt_no_choice import LPTNoChoice
from repro.core.strategies.lpt_no_restriction import LPTNoRestriction
from repro.core.strategies.ls_group import LSGroup
from repro.exact.optimal import optimal_makespan
from repro.schedulers.lpt import critical_task, lpt_schedule
from repro.uncertainty.realization import Realization

__all__ = [
    "ProofCheck",
    "check_theorem1_chain",
    "check_theorem2_chain",
    "check_lemma1_chain",
    "check_theorem3_chain",
    "check_theorem4_chain",
    "verify_all",
]

_TOL = 1e-9


@dataclass(frozen=True, slots=True)
class Step:
    """One verified inequality: ``lhs <= rhs`` (within tolerance)."""

    label: str
    lhs: float
    rhs: float

    @property
    def holds(self) -> bool:
        return self.lhs <= self.rhs + _TOL * max(1.0, abs(self.rhs))


@dataclass
class ProofCheck:
    """A verified proof chain."""

    theorem: str
    steps: list[Step] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def require(self, label: str, lhs: float, rhs: float) -> None:
        """Record ``lhs <= rhs`` as a proof step."""
        self.steps.append(Step(label, lhs, rhs))

    @property
    def all_hold(self) -> bool:
        return all(s.holds for s in self.steps)

    def failures(self) -> list[Step]:
        return [s for s in self.steps if not s.holds]

    def render(self) -> str:
        lines = [f"Proof check — {self.theorem}"]
        for s in self.steps:
            mark = "ok " if s.holds else "FAIL"
            lines.append(f"  [{mark}] {s.label}: {s.lhs:.6g} <= {s.rhs:.6g}")
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Theorem 1 — the adversary's algebra
# ---------------------------------------------------------------------------

def check_theorem1_chain(lam: int, m: int, alpha: float, b: int | None = None) -> ProofCheck:
    """Replay the Theorem-1 lower-bound derivation at finite λ.

    Steps: feasibility ``B >= λ``; the proof's upper bound on the offline
    optimum; the two ceiling relaxations; the resulting ratio lower bound;
    and its limit value.
    """
    check = ProofCheck(f"Theorem 1 (lam={lam}, m={m}, alpha={alpha})")
    n = lam * m
    b = lam if b is None else b
    check.require("feasibility: lambda <= B", lam, b)

    c_max = alpha * b
    c_star_ub = math.ceil((n - b) / m) / alpha + alpha * math.ceil(b / m)
    # Verify against the true optimum of the two-size instance (exact).
    times = [alpha] * b + [1.0 / alpha] * (n - b)
    opt = optimal_makespan(times, m, exact_limit=18)
    if opt.optimal:
        check.require("C* <= proof's balanced-schedule bound", opt.value, c_star_ub)

    ratio_exact_denom = c_max / c_star_ub
    ratio_relaxed = (alpha**2 * b) / ((n - b) / m + 1 + alpha**2 * b / m + alpha**2)
    check.require(
        "ceil relaxation: relaxed ratio <= ratio with ceils", ratio_relaxed, ratio_exact_denom
    )
    limit = lb_no_replication(alpha, m)
    finite_lam_value = (alpha**2 * m * lam) / (
        lam * (alpha**2 + m - 1) + m * (alpha**2 + 1)
    )
    check.require("finite-lambda closed form <= limit", finite_lam_value, limit)
    check.notes.append(
        f"ratio at lambda={lam}: {finite_lam_value:.6g}; limit {limit:.6g}"
    )
    return check


# ---------------------------------------------------------------------------
# Theorem 2 — LPT-No Choice
# ---------------------------------------------------------------------------

def check_theorem2_chain(instance: Instance) -> ProofCheck:
    """Replay Theorem 2's chain on ``instance`` under the proof's worst-case
    realization (critical machine inflated, rest deflated).

    Requires at least two tasks on the machine reaching the estimated
    makespan (the proof's WLOG restriction); a note records when the
    instance is outside that regime and the chain is skipped.
    """
    check = ProofCheck(f"Theorem 2 (n={instance.n}, m={instance.m}, alpha={instance.alpha})")
    m, alpha = instance.m, instance.alpha
    est = list(instance.estimates)
    lpt = lpt_schedule(est, m)
    c_tilde = lpt.makespan
    l = critical_task(lpt, est)
    p_l = est[l]

    machine_of_l = lpt.assignment[list(lpt.order).index(l)]
    tasks_on_critical = sum(1 for pos, j in enumerate(lpt.order) if lpt.assignment[pos] == machine_of_l)
    if tasks_on_critical < 2:
        check.notes.append(
            "critical machine has a single task — instance is optimal per the "
            "proof's WLOG; chain skipped"
        )
        return check

    # Eq. 2: C̃max <= (sum p̃ + (m-1) p̃_l) / m
    check.require("Eq.2", c_tilde, (sum(est) + (m - 1) * p_l) / m)

    # Worst-case realization and Eq. 3.
    strategy = LPTNoChoice()
    placement = strategy.place(instance)
    real = theorem1_realization(placement)
    outcome = run_strategy(strategy, instance, real)
    c_max = outcome.makespan
    check.require("Eq.3: C_max <= alpha * C̃max", c_max, alpha * c_tilde)

    # Eq. 4: total actual work of the worst-case realization.
    total_actual = real.total
    # The inflated machine is the most loaded one; under LPT ties the
    # critical machine's load is C̃max.
    inflated_load = max(placement.estimated_load_per_machine())
    eq4 = (sum(est) - inflated_load) / alpha + alpha * inflated_load
    check.require("Eq.4 (worst-case total work, equality)", abs(total_actual - eq4), 0.0)

    # m C* >= sum p.
    opt = optimal_makespan(real.actuals, m, exact_limit=18)
    if opt.optimal:
        check.require("m C* >= sum p", total_actual, m * opt.value)

    # LPT property: sum p̃ - p̃_l >= m (C̃max - p̃_l).
    check.require("LPT property", m * (c_tilde - p_l), sum(est) - p_l)
    # Two-task argument: p̃_l <= C̃max / 2.
    check.require("p̃_l <= C̃max/2", p_l, c_tilde / 2)
    # Final bound.
    if opt.optimal:
        check.require(
            "final: C_max/C* <= 2a²m/(2a²+m-1)",
            c_max / opt.value,
            ub_lpt_no_choice(alpha, m),
        )
    return check


# ---------------------------------------------------------------------------
# Lemma 1 and Theorem 3 — LPT-No Restriction
# ---------------------------------------------------------------------------

def check_lemma1_chain(instance: Instance, realization: Realization) -> ProofCheck:
    """Replay Lemma 1 on a concrete run of LPT-No Restriction."""
    check = ProofCheck(f"Lemma 1 (n={instance.n}, m={instance.m}, alpha={instance.alpha})")
    strategy = LPTNoRestriction()
    outcome = run_strategy(strategy, instance, realization)
    ends = outcome.trace.completion_times()
    l = max(range(instance.n), key=lambda j: (ends[j], j))
    machine_l = outcome.trace.machine_of(l)
    per_machine = outcome.trace.tasks_per_machine(instance.m)
    if len(per_machine[machine_l]) < 2:
        check.notes.append("machine of l runs a single task — lemma precondition absent")
        return check

    est = instance.estimates
    bigger = sum(1 for j in range(instance.n) if est[j] >= est[l])
    check.require("at least m+1 tasks with p̃_j >= p̃_l", instance.m + 1, bigger)

    opt = optimal_makespan(realization.actuals, instance.m, exact_limit=18)
    if opt.optimal:
        check.require(
            "C* >= 2 p̃_l / alpha", 2.0 * est[l] / instance.alpha, opt.value
        )
        check.require(
            "C* >= 2 p_l / alpha²",
            2.0 * realization.actual(l) / instance.alpha**2,
            opt.value,
        )
    return check


def check_theorem3_chain(instance: Instance, realization: Realization) -> ProofCheck:
    """Replay Theorem 3's chain on a concrete run."""
    check = ProofCheck(f"Theorem 3 (n={instance.n}, m={instance.m}, alpha={instance.alpha})")
    m, alpha = instance.m, instance.alpha
    strategy = LPTNoRestriction()
    outcome = run_strategy(strategy, instance, realization)
    c_max = outcome.makespan
    ends = outcome.trace.completion_times()
    l = max(range(instance.n), key=lambda j: (ends[j], j))
    p_l = realization.actual(l)

    # Eq. 8 (List-Scheduling property on actuals).
    check.require("Eq.8: C_max <= sum p/m + (m-1)/m p_l", c_max, realization.total / m + (m - 1) / m * p_l)

    opt = optimal_makespan(realization.actuals, m, exact_limit=18)
    if not opt.optimal:
        check.notes.append("optimum not exact at this size; ratio steps skipped")
        return check
    # Eq. 7.
    check.require("Eq.7: C* >= sum p / m", realization.total / m, opt.value)

    per_machine = outcome.trace.tasks_per_machine(m)
    if len(per_machine[outcome.trace.machine_of(l)]) >= 2:
        check.require(
            "final: ratio <= 1 + (m-1)/m * a²/2",
            c_max / opt.value,
            ub_lpt_no_restriction_raw(alpha, m),
        )
    else:
        check.notes.append("single task on l's machine — Lemma-1 branch not taken")
    return check


# ---------------------------------------------------------------------------
# Theorem 4 — LS-Group
# ---------------------------------------------------------------------------

def check_theorem4_chain(instance: Instance, realization: Realization, k: int) -> ProofCheck:
    """Replay Theorem 4's chain for ``k`` groups on a concrete run."""
    check = ProofCheck(
        f"Theorem 4 (n={instance.n}, m={instance.m}, k={k}, alpha={instance.alpha})"
    )
    m, alpha = instance.m, instance.alpha
    strategy = LSGroup(k)
    placement = strategy.place(instance)
    outcome = run_strategy(strategy, instance, realization)
    c_max = outcome.makespan
    est = instance.estimates
    group_of_task = placement.meta["group_of_task"]

    # Phase-1 balance: estimated loads of any two groups differ by at most
    # the largest estimate.
    group_loads = [0.0] * k
    for j, g in enumerate(group_of_task):
        group_loads[g] += est[j]
    check.require(
        "phase-1 balance: max group gap <= max p̃",
        max(group_loads) - min(group_loads),
        max(est),
    )

    # Identify the group reaching C_max and check the in-group LS bound
    # (Eq. 10) on actuals.
    ends = outcome.trace.completion_times()
    l = max(range(instance.n), key=lambda j: (ends[j], j))
    g1 = group_of_task[l]
    g1_tasks = [j for j in range(instance.n) if group_of_task[j] == g1]
    g1_actual = sum(realization.actual(j) for j in g1_tasks)
    p_max_g1 = max(realization.actual(j) for j in g1_tasks)
    size = m // k
    check.require(
        "Eq.10: C_max <= load(G1)/(m/k) + (m/k - 1)/(m/k) p_max",
        c_max,
        g1_actual / size + (size - 1) / size * p_max_g1,
    )

    opt = optimal_makespan(realization.actuals, m, exact_limit=18)
    if opt.optimal:
        check.require(
            "final: ratio <= Theorem-4 bound", c_max / opt.value, ub_ls_group(alpha, m, k)
        )
    return check


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------

def verify_all(
    instance: Instance,
    realization: Realization,
    *,
    lam: int = 3,
    group_ks: Sequence[int] = (),
) -> list[ProofCheck]:
    """Run every proof chain applicable to ``instance`` + ``realization``.

    Theorem 1 uses its own construction (parameterized by ``lam`` and the
    instance's ``m``/``alpha``); group checks run for each requested ``k``
    (defaulting to all divisors of ``m``).
    """
    ks = list(group_ks) if group_ks else [
        k for k in range(1, instance.m + 1) if instance.m % k == 0
    ]
    checks = [
        check_theorem1_chain(lam, instance.m, instance.alpha),
        check_theorem2_chain(instance),
        check_lemma1_chain(instance, realization),
        check_theorem3_chain(instance, realization),
    ]
    checks.extend(check_theorem4_chain(instance, realization, k) for k in ks)
    return checks
