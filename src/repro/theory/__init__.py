"""Numeric proof verification: every proof step as a runnable check."""

from repro.theory.proof_steps import (
    ProofCheck,
    check_lemma1_chain,
    check_theorem1_chain,
    check_theorem2_chain,
    check_theorem3_chain,
    check_theorem4_chain,
    verify_all,
)

__all__ = [
    "ProofCheck",
    "check_theorem1_chain",
    "check_theorem2_chain",
    "check_lemma1_chain",
    "check_theorem3_chain",
    "check_theorem4_chain",
    "verify_all",
]
