"""Declarative fault scenarios for the discrete-event engine.

The paper motivates replication explicitly by fault tolerance ("most
Hadoop systems replicate the data for the purpose of tolerating hardware
faults"); a :class:`FaultPlan` is the structured description of *which*
hardware misbehaves and *how*, decoupled from the engine that plays it.
Four fault kinds cover the regimes where replication strategies
differentiate:

* :class:`CrashStop` — a machine stops permanently (the legacy
  ``failures={machine: time}`` mapping, kept as the
  :meth:`FaultPlan.from_failures` shim);
* :class:`CrashRecover` — a machine stops, then rejoins after a
  downtime (``math.inf`` downtime degenerates to crash-stop and the
  engine produces a trace identical to the legacy path);
* :class:`DegradedInterval` — a straggler: the machine keeps running but
  at a fraction of its speed for a time window;
* :class:`CorrelatedFailure` — a rack/group loss: several machines fail
  at the same instant (with a shared optional downtime).

A plan is a frozen value object: picklable, hashable where its faults
are, and validated against a machine count only when the engine consumes
it (:meth:`FaultPlan.validate`), so the same plan can be replayed against
any cluster size that fits it.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Union

__all__ = [
    "CrashStop",
    "CrashRecover",
    "DegradedInterval",
    "CorrelatedFailure",
    "Fault",
    "FaultPlan",
    "merge_plans",
]


@dataclass(frozen=True)
class CrashStop:
    """Machine ``machine`` halts permanently at time ``at``.

    The running task (if any) is aborted and must restart from scratch on
    another machine holding its data — the legacy failure-injection
    semantics, unchanged.
    """

    machine: int
    at: float


@dataclass(frozen=True)
class CrashRecover:
    """Machine ``machine`` halts at ``at`` and rejoins after ``downtime``.

    While down it dispatches nothing; on recovery it polls for work like
    any idle machine.  ``downtime=math.inf`` never recovers and is
    engine-equivalent to :class:`CrashStop`.
    """

    machine: int
    at: float
    downtime: float


@dataclass(frozen=True)
class DegradedInterval:
    """Machine ``machine`` runs at ``factor`` × its base speed in [start, end).

    The straggler model: a task caught inside the interval has its
    *remaining work* rescaled at the boundary (no lost progress, no free
    speedup), and tasks dispatched inside run slow until the interval
    ends.  ``end=math.inf`` degrades the machine for the rest of the run.
    ``factor`` must be positive; values above 1 are allowed (a burst), the
    straggler regime is ``factor < 1``.
    """

    machine: int
    start: float
    end: float
    factor: float


@dataclass(frozen=True)
class CorrelatedFailure:
    """A group of machines (a rack, a power domain) fails together at ``at``.

    Expands to one crash per member with the shared ``downtime``
    (``math.inf`` = permanent, the default).  Keeping the group in one
    fault object preserves the correlation in provenance output.
    """

    machines: tuple[int, ...]
    at: float
    downtime: float = math.inf


Fault = Union[CrashStop, CrashRecover, DegradedInterval, CorrelatedFailure]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of faults, played by ``simulate(..., faults=...)``.

    Declaration order is preserved all the way into the engine's event
    queue, so two runs of the same plan produce identical traces (the
    queue breaks timestamp ties by insertion order).
    """

    faults: tuple[Fault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    @staticmethod
    def of(*faults: Fault) -> "FaultPlan":
        """Convenience variadic constructor: ``FaultPlan.of(CrashStop(0, 2.0))``."""
        return FaultPlan(tuple(faults))

    @staticmethod
    def from_failures(failures: Mapping[int, float]) -> "FaultPlan":
        """Back-compat shim: the legacy ``{machine: fail_time}`` mapping.

        Produces permanent crashes in the mapping's iteration order, so the
        engine pushes the same failure events in the same sequence as the
        historical ``failures=`` code path — traces are identical.
        """
        return FaultPlan(
            tuple(CrashStop(int(i), float(t)) for i, t in failures.items())
        )

    # -- engine-facing normalization --------------------------------------

    def crashes(self) -> list[tuple[float, int, float]]:
        """Flatten to ``(at, machine, downtime)`` triples, declaration order.

        Correlated failures expand to one triple per member (members in
        the order given).  Crash-stops carry ``math.inf`` downtime.
        """
        out: list[tuple[float, int, float]] = []
        for fault in self.faults:
            if isinstance(fault, CrashStop):
                out.append((float(fault.at), int(fault.machine), math.inf))
            elif isinstance(fault, CrashRecover):
                out.append((float(fault.at), int(fault.machine), float(fault.downtime)))
            elif isinstance(fault, CorrelatedFailure):
                for machine in fault.machines:
                    out.append((float(fault.at), int(machine), float(fault.downtime)))
        return out

    def slowdowns(self) -> list[DegradedInterval]:
        """The degraded-speed intervals, declaration order."""
        return [f for f in self.faults if isinstance(f, DegradedInterval)]

    def machines(self) -> set[int]:
        """Every machine id the plan touches (for validation and reports)."""
        touched = {machine for _, machine, _ in self.crashes()}
        touched.update(s.machine for s in self.slowdowns())
        return touched

    def validate(self, m: int) -> None:
        """Check the plan fits an ``m``-machine cluster; raise ``ValueError``.

        Machine ids must be in ``0..m-1``, times non-negative, downtimes
        positive (or infinite), degraded factors positive with
        ``start < end``, and no two degraded intervals on the same machine
        may overlap (the engine tracks one active factor per machine).
        """
        for at, machine, downtime in self.crashes():
            if not 0 <= machine < m:
                raise ValueError(
                    f"fault references machine {machine}, outside 0..{m - 1}"
                )
            if at < 0:
                raise ValueError(f"failure time for machine {machine} must be >= 0")
            if not downtime > 0:
                raise ValueError(
                    f"downtime for machine {machine} must be > 0, got {downtime}"
                )
        by_machine: dict[int, list[DegradedInterval]] = {}
        for slow in self.slowdowns():
            if not 0 <= slow.machine < m:
                raise ValueError(
                    f"fault references machine {slow.machine}, outside 0..{m - 1}"
                )
            if slow.start < 0:
                raise ValueError(
                    f"degraded interval on machine {slow.machine} must start >= 0"
                )
            if not slow.start < slow.end:
                raise ValueError(
                    f"degraded interval on machine {slow.machine} is empty: "
                    f"[{slow.start}, {slow.end})"
                )
            if not slow.factor > 0:
                raise ValueError(
                    f"degraded factor on machine {slow.machine} must be > 0, "
                    f"got {slow.factor}"
                )
            by_machine.setdefault(slow.machine, []).append(slow)
        for machine, intervals in by_machine.items():
            intervals.sort(key=lambda s: s.start)
            for a, b in zip(intervals, intervals[1:]):
                if b.start < a.end:
                    raise ValueError(
                        f"degraded intervals on machine {machine} overlap: "
                        f"[{a.start}, {a.end}) and [{b.start}, {b.end})"
                    )

    # -- provenance --------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Fault counts by kind (manifest/report material)."""
        out = {"crash_stop": 0, "crash_recover": 0, "degraded": 0, "correlated": 0}
        for fault in self.faults:
            if isinstance(fault, CrashStop):
                out["crash_stop"] += 1
            elif isinstance(fault, CrashRecover):
                out["crash_recover"] += 1
            elif isinstance(fault, DegradedInterval):
                out["degraded"] += 1
            elif isinstance(fault, CorrelatedFailure):
                out["correlated"] += 1
        return out

    def describe(self) -> str:
        """One-line human summary for labels and logs."""
        if not self.faults:
            return "fault-free"
        parts = [f"{kind}={n}" for kind, n in self.counts().items() if n]
        return ", ".join(parts)


def merge_plans(plans: Iterable[FaultPlan]) -> FaultPlan:
    """Concatenate several plans into one (declaration order preserved)."""
    faults: list[Fault] = []
    for plan in plans:
        faults.extend(plan.faults)
    return FaultPlan(tuple(faults))
