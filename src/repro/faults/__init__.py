"""Unified fault injection: scenario plans, seeded models, substrate faults.

The fault-tolerance side of the reproduction (the paper's Hadoop
motivation for replication) in one subsystem:

* :mod:`repro.faults.plan` — :class:`FaultPlan` and the fault kinds
  (crash-stop, crash-recover, degraded-speed straggler intervals,
  correlated group failures) the engine plays via
  ``simulate(..., faults=...)``;
* :mod:`repro.faults.models` — seeded scenario generators
  (:class:`FaultModel` with ``sample(rng)``) for benches and tests;
* :mod:`repro.faults.inject` — deterministic *substrate* fault injection
  (transient/poisoned grid cells) exercising the experiment harness's
  retry and quarantine machinery.

See ``docs/fault_tolerance.md`` for the full model and examples.
"""

from repro.faults.inject import CellFaultSpec, InjectedFault
from repro.faults.models import (
    FaultModel,
    RackFailure,
    RandomCrashes,
    StragglerSlowdowns,
)
from repro.faults.plan import (
    CorrelatedFailure,
    CrashRecover,
    CrashStop,
    DegradedInterval,
    Fault,
    FaultPlan,
    merge_plans,
)

__all__ = [
    "FaultPlan",
    "Fault",
    "CrashStop",
    "CrashRecover",
    "DegradedInterval",
    "CorrelatedFailure",
    "merge_plans",
    "FaultModel",
    "RandomCrashes",
    "RackFailure",
    "StragglerSlowdowns",
    "CellFaultSpec",
    "InjectedFault",
]
