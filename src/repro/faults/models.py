"""Seeded fault-scenario generators (``FaultModel.sample(rng)``).

Benches and tests need *distributions* over fault scenarios, not
hand-written plans: E7 draws dozens of random failure patterns, the
robustness metrics average over them, and everything must be
reproducible from a seed.  A :class:`FaultModel` is a frozen description
of such a distribution; :meth:`~FaultModel.sample` draws one
:class:`~repro.faults.plan.FaultPlan` from a ``numpy`` generator, so the
caller owns the seed and two samplings from equal-seeded generators are
identical.

Models mirror the fault kinds:

* :class:`RandomCrashes` — k ∈ [count range] machines crash at uniform
  times (crash-stop, or crash-recover when a downtime range is given);
* :class:`RackFailure` — one contiguous rack of machines fails together
  (the correlated kind);
* :class:`StragglerSlowdowns` — each machine independently degrades to a
  random speed fraction for a random window.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.faults.plan import (
    CorrelatedFailure,
    CrashRecover,
    CrashStop,
    DegradedInterval,
    Fault,
    FaultPlan,
)

__all__ = ["FaultModel", "RandomCrashes", "RackFailure", "StragglerSlowdowns"]


class FaultModel(abc.ABC):
    """A seeded distribution over fault scenarios.

    Implementations are frozen dataclasses (picklable, comparable) whose
    only entry point is :meth:`sample`; all randomness flows through the
    caller's generator so scenario sets are reproducible by construction.
    """

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> FaultPlan:
        """Draw one fault scenario from ``rng``."""


@dataclass(frozen=True)
class RandomCrashes(FaultModel):
    """``count`` ∈ [lo, hi] distinct machines crash at uniform random times.

    ``count=(0, 2)`` includes the fault-free control arm — a sampled plan
    may be empty, which the engine runs as a normal healthy simulation.
    A finite ``downtime`` range turns the crashes into crash-recover
    faults with per-crash uniform downtimes.
    """

    m: int
    count: tuple[int, int] = (0, 2)
    window: tuple[float, float] = (0.0, 15.0)
    downtime: tuple[float, float] | None = None

    def sample(self, rng: np.random.Generator) -> FaultPlan:
        lo, hi = self.count
        n_failures = int(rng.integers(lo, hi + 1))
        faults: list[Fault] = []
        if n_failures:
            machines = rng.choice(self.m, size=n_failures, replace=False)
            times = rng.uniform(self.window[0], self.window[1], size=n_failures)
            for machine, at in zip(machines, times):
                if self.downtime is None:
                    faults.append(CrashStop(int(machine), float(at)))
                else:
                    down = float(rng.uniform(self.downtime[0], self.downtime[1]))
                    faults.append(CrashRecover(int(machine), float(at), down))
        return FaultPlan(tuple(faults))


@dataclass(frozen=True)
class RackFailure(FaultModel):
    """One rack (contiguous block of ``m // racks`` machines) fails together.

    The correlated-failure regime: strategies whose replicas all live in
    one rack die with it, strategies that spread replicas across racks
    survive.  ``downtime=None`` means permanent loss; a scalar is a fixed
    recovery delay; a ``(lo, hi)`` range draws one uniformly per sample
    (matching :class:`RandomCrashes`).
    """

    m: int
    racks: int
    window: tuple[float, float] = (0.0, 15.0)
    downtime: float | tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.racks <= 0 or self.m % self.racks:
            raise ValueError(
                f"racks must divide m evenly, got m={self.m}, racks={self.racks}"
            )

    def sample(self, rng: np.random.Generator) -> FaultPlan:
        size = self.m // self.racks
        rack = int(rng.integers(0, self.racks))
        at = float(rng.uniform(self.window[0], self.window[1]))
        members = tuple(range(rack * size, (rack + 1) * size))
        if self.downtime is None:
            downtime = float("inf")
        elif isinstance(self.downtime, tuple):
            downtime = float(rng.uniform(self.downtime[0], self.downtime[1]))
        else:
            downtime = float(self.downtime)
        return FaultPlan.of(CorrelatedFailure(members, at, downtime))


@dataclass(frozen=True)
class StragglerSlowdowns(FaultModel):
    """Each machine independently straggles with probability ``prob``.

    A straggling machine runs at a uniform random ``factor`` (drawn from
    ``factors``) for a window starting uniformly in ``window`` and
    lasting a uniform draw from ``durations``.  No machine ever dies, so
    every strategy survives — what differentiates them is makespan
    inflation.
    """

    m: int
    prob: float = 0.3
    factors: tuple[float, float] = (0.3, 0.8)
    window: tuple[float, float] = (0.0, 10.0)
    durations: tuple[float, float] = (2.0, 8.0)

    def sample(self, rng: np.random.Generator) -> FaultPlan:
        faults: list[Fault] = []
        for machine in range(self.m):
            if rng.uniform() >= self.prob:
                continue
            start = float(rng.uniform(self.window[0], self.window[1]))
            duration = float(rng.uniform(self.durations[0], self.durations[1]))
            factor = float(rng.uniform(self.factors[0], self.factors[1]))
            faults.append(DegradedInterval(machine, start, start + duration, factor))
        return FaultPlan(tuple(faults))
