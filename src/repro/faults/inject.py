"""Deterministic fault injection for the experiment substrate itself.

The grid driver's resilience machinery (bounded retry, poison-cell
quarantine — see :mod:`repro.analysis.parallel`) needs *reproducible*
worker failures to be testable: CI smokes a traced sweep with injected
transient faults and asserts it still completes, and the substrate tests
poison specific cells and assert quarantine instead of a crashed sweep.

A :class:`CellFaultSpec` says which grid cells fail and how often.  It is
activated either programmatically (:func:`configure`, for in-process
tests) or through the ``REPRO_INJECT_CELL_FAULTS`` environment variable
(``"every=3,fails=1"`` — which propagates into pool worker processes, so
CI can inject faults into a multiprocess sweep from the command line).
When neither is set, :func:`check` is a dict lookup and a return —
nothing is injected in normal operation.

Attempt counting is per-process: the substrate retries a failed cell
inside the same process (worker or parent), so a ``fails=1`` spec makes
each targeted cell fail exactly once and then succeed on retry.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "ENV_VAR",
    "InjectedFault",
    "CellFaultSpec",
    "configure",
    "active_spec",
    "check",
    "reset",
]

#: Environment variable carrying a :meth:`CellFaultSpec.parse` string.
ENV_VAR = "REPRO_INJECT_CELL_FAULTS"


class InjectedFault(RuntimeError):
    """The synthetic error an injected cell attempt raises."""


@dataclass(frozen=True)
class CellFaultSpec:
    """Which grid cells fail, and how many attempts each costs.

    Attributes
    ----------
    every:
        Inject into cells whose index is a multiple of ``every``
        (``1`` = every cell).  Ignored when ``only`` is set.
    fails:
        Failing attempts per targeted cell before it succeeds;
        ``-1`` means the cell is poisoned and *never* succeeds.
    only:
        Target exactly this cell index instead of the ``every`` pattern.
    """

    every: int = 1
    fails: int = 1
    only: int | None = None

    @staticmethod
    def parse(text: str) -> "CellFaultSpec":
        """Parse ``"every=3,fails=1"`` / ``"only=5,fails=-1"`` form.

        Unknown keys raise ``ValueError`` — a typo in a CI environment
        variable should fail loudly, not silently inject nothing.
        """
        fields: dict[str, int | None] = {"every": 1, "fails": 1, "only": None}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in fields:
                raise ValueError(
                    f"unknown fault-injection key {key!r} in {text!r} "
                    f"(expected {sorted(fields)})"
                )
            fields[key] = int(value)
        spec = CellFaultSpec(**fields)  # type: ignore[arg-type]
        if spec.every <= 0:
            raise ValueError(f"every must be >= 1, got {spec.every}")
        return spec

    def targets(self, index: int) -> bool:
        """Whether this spec injects into cell ``index``."""
        if self.only is not None:
            return index == self.only
        return index % self.every == 0


#: Programmatic override; ``None`` falls back to the environment.
_CONFIGURED: CellFaultSpec | None = None

#: Injected-failure count per cell index, in this process.
_ATTEMPTS: dict[int, int] = {}


def configure(spec: CellFaultSpec | None) -> None:
    """Set (or with ``None``, clear) the in-process injection spec.

    Takes precedence over the environment variable.  Also clears attempt
    counters, so one test's injections never leak into the next.
    """
    global _CONFIGURED
    _CONFIGURED = spec
    _ATTEMPTS.clear()


def active_spec() -> CellFaultSpec | None:
    """The spec in effect: the configured one, else the environment's."""
    if _CONFIGURED is not None:
        return _CONFIGURED
    text = os.environ.get(ENV_VAR, "").strip()
    return CellFaultSpec.parse(text) if text else None


def check(index: int) -> None:
    """Raise :class:`InjectedFault` if cell ``index``'s attempt should fail.

    Called by the substrate at the top of every cell attempt.  No active
    spec (the normal case) returns immediately.
    """
    spec = active_spec()
    if spec is None or not spec.targets(index):
        return
    done = _ATTEMPTS.get(index, 0)
    if spec.fails >= 0 and done >= spec.fails:
        return
    _ATTEMPTS[index] = done + 1
    raise InjectedFault(
        f"injected fault (attempt {done + 1}) for grid cell {index}"
    )


def reset() -> None:
    """Clear configuration and attempt counters (test teardown)."""
    configure(None)
