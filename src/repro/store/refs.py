"""Typed provenance references linking artifacts to their inputs.

Every artifact in the store carries a ``refs`` list answering "what
produced this?" in a machine-resolvable form.  Three kinds exist:

* :class:`CodeRef` — the producing code: module path plus the library
  version and ``git describe`` of the checkout, so an artifact can be
  matched to the exact source that emitted it;
* :class:`ConfigRef` — the producing configuration: the parameter dict
  (canonically hashed) a bench or report builder ran with;
* :class:`ArtifactRef` — a link to another artifact in the store by
  ``(stage, name, artifact_id)``: curated artifacts reference the RAW
  cells they were computed from, and the REPORT artifact references
  every curated input it rendered.

Refs are provenance *metadata*: they travel in manifests but are
deliberately excluded from artifact IDs (see
:func:`repro.store.artifact.compute_artifact_id`), so re-running
identical content from a newer commit dedupes instead of forking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

from repro.store.canonical import content_hash

__all__ = ["CodeRef", "ConfigRef", "ArtifactRef", "Ref", "code_ref", "config_ref", "ref_from_dict"]


@dataclass(frozen=True)
class CodeRef:
    """The code identity that produced an artifact."""

    module: str
    version: str | None = None
    git: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {"kind": "code", "module": self.module, "version": self.version, "git": self.git}


@dataclass(frozen=True)
class ConfigRef:
    """The configuration an artifact was produced with (params + digest)."""

    params: dict[str, Any] = field(default_factory=dict)
    sha256: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {"kind": "config", "params": dict(self.params), "sha256": self.sha256}


@dataclass(frozen=True)
class ArtifactRef:
    """A link to another store artifact by stage, name, and content ID."""

    stage: str
    name: str
    artifact_id: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": "artifact",
            "stage": self.stage,
            "name": self.name,
            "artifact_id": self.artifact_id,
        }


Ref = Union[CodeRef, ConfigRef, ArtifactRef]


def code_ref(module: str) -> CodeRef:
    """A :class:`CodeRef` for ``module`` stamped with the live environment."""
    from repro.obs.provenance import environment_info

    env = environment_info()
    return CodeRef(module=module, version=env.get("repro_version"), git=env.get("git_describe"))


def config_ref(params: dict[str, Any]) -> ConfigRef:
    """A :class:`ConfigRef` for ``params`` with its canonical digest."""
    return ConfigRef(params=dict(params), sha256=content_hash(params))


def ref_from_dict(data: dict[str, Any]) -> Ref:
    """Rebuild a typed ref from its ``as_dict`` form; raises on unknown kinds."""
    kind = data.get("kind")
    if kind == "code":
        return CodeRef(module=data["module"], version=data.get("version"), git=data.get("git"))
    if kind == "config":
        return ConfigRef(params=dict(data.get("params", {})), sha256=data.get("sha256", ""))
    if kind == "artifact":
        return ArtifactRef(stage=data["stage"], name=data["name"], artifact_id=data["artifact_id"])
    raise ValueError(f"unknown ref kind {kind!r}")
