"""The curated-artifact registry: what ``results/`` is supposed to contain.

Every published artifact (paper table, figure, experiment, perf report)
has an :class:`ArtifactSpec` here declaring its display title, the files
it owns under ``results/`` (glob patterns — figure benches emit
parameterized SVG families), and whether it is **volatile**.  Volatile
artifacts carry wall-clock measurements (SLO latencies, speedup
timings, the perf-trajectory history) whose bytes legitimately differ
between runs; they are stored and listed but excluded from the report's
input fingerprint and from ``repro report --check`` byte comparison.

:func:`publish_curated` snapshots one artifact's files into the store as
a CURATED artifact; :func:`adopt_results` blesses a whole on-disk
``results/`` tree (the fresh-clone bootstrap behind
``repro report --adopt``).  The registry's order is the report's section
order, replacing the ``_KNOWN`` list the old report generator kept.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.csvio import results_dir
from repro.store.artifact import Artifact, Stage
from repro.store.refs import Ref, code_ref
from repro.store.store import ArtifactStore

__all__ = [
    "ArtifactSpec",
    "SPECS",
    "spec_for",
    "artifact_files",
    "publish_curated",
    "adopt_results",
]


@dataclass(frozen=True)
class ArtifactSpec:
    """One registered published artifact and the results/ files it owns."""

    name: str
    title: str
    patterns: tuple[str, ...]
    volatile: bool = False
    kind: str = "bench"


def _spec(name: str, title: str, *extra: str, volatile: bool = False, kind: str = "bench") -> ArtifactSpec:
    return ArtifactSpec(
        name=name,
        title=title,
        patterns=(f"{name}.txt", f"{name}.csv", *extra),
        volatile=volatile,
        kind=kind,
    )


#: Registry order == report section order.
SPECS: tuple[ArtifactSpec, ...] = (
    _spec("table1_replication_bounds", "Table 1 — replication-bound guarantees"),
    _spec("table2_memory_bounds", "Table 2 — memory-aware guarantees"),
    _spec("fig1_adversary", "Figure 1 — Theorem-1 adversary", "fig1_adversary.svg"),
    _spec("fig2_group_example", "Figure 2 — group replication example", "fig2_group_example.svg"),
    _spec("fig3_ratio_replication", "Figure 3 — ratio/replication tradeoff", "fig3_alpha_*.svg"),
    _spec("fig4_sabo_schedule", "Figure 4 — SABO schedule", "fig4_sabo_schedule.svg"),
    _spec("fig5_abo_schedule", "Figure 5 — ABO schedule", "fig5_abo_schedule.svg"),
    _spec("fig6_memory_makespan", "Figure 6 — memory/makespan tradeoff", "fig6_a2_*.svg"),
    _spec("e1_empirical_ratios", "E1 — empirical ratios vs guarantees"),
    _spec("e2_lower_bound_convergence", "E2 — lower-bound convergence"),
    _spec("e3_group_phase_ablation", "E3 — LS vs LPT group ablation"),
    _spec("e4_memory_pareto", "E4 — measured memory/makespan Pareto fronts"),
    _spec("e5_general_replication", "E5 — generalized replication policies"),
    _spec("e6_regime_map", "E6 — clairvoyance regime map"),
    _spec("e7_fault_tolerance", "E7 — fault tolerance"),
    _spec("e8_proof_verification", "E8 — numeric proof verification"),
    _spec("e9_robustness_metrics", "E9 — classical robustness metrics"),
    _spec("e10_estimate_refinement", "E10 — estimate refinement"),
    _spec("e11_capacity_sweep", "E11 — capacity sweep"),
    _spec("e12_abo_barrier_ablation", "E12 — ABO barrier ablation"),
    _spec("e13_minmax_regret", "E13 — min-max regret"),
    _spec("e14_risk_aware", "E14 — risk-aware placement"),
    _spec("e15_robust_vs_replication", "E15 — robust scheduling vs replication"),
    _spec("e16_scale_validation", "E16 — scale validation"),
    _spec("e7_slo_report", "E7 — operational SLO report", volatile=True),
    _spec(
        "perf_grid_parallel_speedup",
        "Perf — grid parallelism speedup",
        volatile=True,
        kind="perfbench",
    ),
    _spec(
        "perf_batch_backend_speedup",
        "Perf — batch backend speedup",
        volatile=True,
        kind="perfbench",
    ),
    ArtifactSpec(
        name="BENCH_history",
        title="Perf trajectory history",
        patterns=("BENCH_history.jsonl",),
        volatile=True,
        kind="history",
    ),
)

_BY_NAME = {spec.name: spec for spec in SPECS}


def spec_for(name: str) -> ArtifactSpec:
    """The registered spec for ``name``; unknown names get a default spec.

    Unknown artifacts are treated as deterministic txt/csv pairs so a new
    bench participates in fingerprinting the moment it emits — authors
    register a real spec to add figure files or volatility.
    """
    return _BY_NAME.get(name) or _spec(name, name)


def artifact_files(spec: ArtifactSpec, base: str | Path | None = None) -> dict[str, Path]:
    """The spec's files currently present under ``results/``, name-sorted."""
    d = results_dir(base)
    found: dict[str, Path] = {}
    for pattern in spec.patterns:
        for path in d.glob(pattern):
            if path.is_file():
                found[path.name] = path
    return dict(sorted(found.items()))


def publish_curated(
    name: str,
    *,
    store: ArtifactStore,
    base: str | Path | None = None,
    refs: tuple[Ref, ...] = (),
) -> Artifact | None:
    """Snapshot one artifact's on-disk files into the CURATED stage.

    Returns ``None`` when none of the spec's files exist yet.  Identical
    content is deduplicated by the store, so re-publishing an unchanged
    artifact writes nothing.
    """
    spec = spec_for(name)
    files = artifact_files(spec, base)
    if not files:
        return None
    payload = {"title": spec.title, "volatile": spec.volatile}
    return store.put(
        Stage.CURATED,
        name,
        kind=spec.kind,
        payload=payload,
        files={fname: path.read_bytes() for fname, path in files.items()},
        refs=refs,
    )


def adopt_results(
    store: ArtifactStore, base: str | Path | None = None
) -> list[Artifact]:
    """Bless every registered artifact found on disk into the store.

    The fresh-clone bootstrap: a checkout ships ``results/`` but no
    store; adopting publishes each registered artifact from its committed
    bytes so ``repro report`` / ``--check`` can resolve them without a
    full bench run.
    """
    adopted = []
    provenance = (code_ref("repro.store.publish"),)
    for spec in SPECS:
        artifact = publish_curated(spec.name, store=store, base=base, refs=provenance)
        if artifact is not None:
            adopted.append(artifact)
    return adopted
