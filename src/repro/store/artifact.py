"""The artifact model: staged, content-addressed, ref-linked records.

An :class:`Artifact` is one provenance unit in the store.  It lives in
one of three :class:`Stage`\\ s forming the reproduction pipeline:

* ``RAW`` — measured cell outcomes (the grid cache entries): keyed by
  cell fingerprint, payload-only;
* ``CURATED`` — published bench outputs (the ``results/`` tables,
  CSV series, and SVG figures): keyed by artifact name, carrying the
  published files as content-addressed blobs;
* ``REPORT`` — the assembled ``REPORT.md``, referencing every curated
  input it rendered.

The ``artifact_id`` is a SHA-256 over the canonical encoding of the
artifact's *content* — stage, kind, name, payload, and file hashes.
Refs (provenance metadata) are excluded on purpose: the same bytes
produced by a newer commit get the same ID, so repeated runs dedupe
instead of forking, and ``repro report --check`` compares pure content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping

from repro.store.canonical import content_hash
from repro.store.refs import Ref, ref_from_dict

__all__ = ["Stage", "Artifact", "compute_artifact_id", "MANIFEST_VERSION"]

#: Bump when the manifest document shape changes incompatibly.
MANIFEST_VERSION = 1


class Stage(str, Enum):
    """The three pipeline stages artifacts move through (raw → curated → report)."""

    RAW = "raw"
    CURATED = "curated"
    REPORT = "report"


def compute_artifact_id(
    stage: str, kind: str, name: str, payload: Mapping[str, Any], files: Mapping[str, str]
) -> str:
    """Content-derived ID: SHA-256 over stage/kind/name/payload/file hashes."""
    return content_hash(
        {
            "stage": str(stage),
            "kind": kind,
            "name": name,
            "payload": dict(payload),
            "files": dict(files),
        }
    )


@dataclass(frozen=True)
class Artifact:
    """One staged, content-addressed provenance record.

    Attributes
    ----------
    artifact_id:
        SHA-256 content hash (see :func:`compute_artifact_id`).
    stage:
        ``"raw"`` / ``"curated"`` / ``"report"`` (:class:`Stage` values).
    kind:
        What the payload is: ``"cell"``, ``"bench"``, ``"perfbench"``,
        ``"report"``, ...
    name:
        The lookup key within the stage (cell fingerprint for RAW,
        artifact stem for CURATED/REPORT).
    payload:
        Inline JSON content (the cache entry for RAW cells, parameters
        and summaries elsewhere).
    files:
        Published file name → SHA-256 of its bytes; the bytes live as
        blobs in the store.
    refs:
        Typed provenance links (:mod:`repro.store.refs`).
    """

    artifact_id: str
    stage: str
    kind: str
    name: str
    payload: dict[str, Any] = field(default_factory=dict)
    files: dict[str, str] = field(default_factory=dict)
    refs: tuple[Ref, ...] = ()

    @staticmethod
    def build(
        stage: str | Stage,
        name: str,
        *,
        kind: str,
        payload: Mapping[str, Any] | None = None,
        files: Mapping[str, str] | None = None,
        refs: tuple[Ref, ...] = (),
    ) -> "Artifact":
        """Construct an artifact, deriving its content ID."""
        stage_value = stage.value if isinstance(stage, Stage) else str(stage)
        payload = dict(payload or {})
        files = dict(files or {})
        return Artifact(
            artifact_id=compute_artifact_id(stage_value, kind, name, payload, files),
            stage=stage_value,
            kind=kind,
            name=name,
            payload=payload,
            files=files,
            refs=tuple(refs),
        )

    def as_manifest(self) -> dict[str, Any]:
        """The JSON manifest document persisted by the store."""
        return {
            "v": MANIFEST_VERSION,
            "artifact_id": self.artifact_id,
            "stage": self.stage,
            "kind": self.kind,
            "name": self.name,
            "payload": self.payload,
            "files": self.files,
            "refs": [r.as_dict() for r in self.refs],
        }

    @staticmethod
    def from_manifest(document: dict[str, Any]) -> "Artifact":
        """Rebuild from a manifest document; raises ``ValueError`` on drift.

        The recorded ``artifact_id`` is recomputed from content and must
        match — a manifest whose ID disagrees with its own content has
        been tampered with or corrupted and is rejected.
        """
        if document.get("v") != MANIFEST_VERSION:
            raise ValueError(f"manifest version {document.get('v')!r} != {MANIFEST_VERSION}")
        payload = dict(document["payload"])
        files = dict(document["files"])
        expected = compute_artifact_id(
            document["stage"], document["kind"], document["name"], payload, files
        )
        if document["artifact_id"] != expected:
            raise ValueError(
                f"artifact_id {document['artifact_id']!r} does not match content ({expected!r})"
            )
        return Artifact(
            artifact_id=document["artifact_id"],
            stage=document["stage"],
            kind=document["kind"],
            name=document["name"],
            payload=payload,
            files=files,
            refs=tuple(ref_from_dict(r) for r in document.get("refs", [])),
        )
