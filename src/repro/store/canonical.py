"""Canonical JSON encoding and content hashing for artifact identity.

Artifact IDs must be stable across platforms and processes: the same
logical content must hash to the same ID on Linux and Windows, under any
dict insertion order, for any spelling of the same float.  This module is
the single place that defines "the same logical content":

* dict keys are sorted (insertion order never matters);
* floats serialize through :func:`repr`-faithful ``json.dumps`` (the
  shortest round-trip representation, identical for identical IEEE-754
  doubles on every supported platform);
* :class:`~pathlib.PurePath` values normalize to POSIX separators, so a
  manifest written on Windows hashes like one written on Linux;
* tuples flatten to lists (a tuple and a list of the same values are the
  same content);
* NaN and infinities are **rejected** (`ValueError`) — they do not
  round-trip through JSON and silently coerce to ``null``-like tokens
  otherwise, which would let two different payloads collide.

Everything downstream — cell fingerprints, artifact IDs, the REPORT.md
input fingerprint — reduces to :func:`content_hash` over a document built
from these rules.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path, PurePath
from typing import Any

__all__ = ["canonical_json", "content_hash", "hash_bytes", "hash_file"]


def _normalize(obj: Any, *, _path: str = "$") -> Any:
    """Reduce ``obj`` to plain JSON types under the canonical rules."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if math.isnan(obj) or math.isinf(obj):
            raise ValueError(f"non-finite float at {_path} cannot be canonicalized")
        return obj
    if isinstance(obj, PurePath):
        return obj.as_posix()
    if isinstance(obj, (list, tuple)):
        return [_normalize(v, _path=f"{_path}[{i}]") for i, v in enumerate(obj)]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ValueError(f"non-string key {key!r} at {_path}")
            out[key] = _normalize(value, _path=f"{_path}.{key}")
        return out
    raise ValueError(f"type {type(obj).__name__} at {_path} cannot be canonicalized")


def canonical_json(obj: Any) -> str:
    """The one true JSON spelling of ``obj`` (sorted keys, compact, ASCII)."""
    return json.dumps(
        _normalize(obj),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def content_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def hash_bytes(data: bytes) -> str:
    """SHA-256 hex digest of raw bytes (blob identity)."""
    return hashlib.sha256(data).hexdigest()


def hash_file(path: str | Path) -> str:
    """SHA-256 hex digest of a file's bytes, streamed in 1 MiB chunks."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as fh:
        while chunk := fh.read(1 << 20):
            digest.update(chunk)
    return digest.hexdigest()
