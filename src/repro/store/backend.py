"""Pluggable key/value backends beneath the artifact store.

The store addresses everything by flat POSIX-style keys
(``raw/ab/abcd….json``, ``blobs/12/1234…``); a backend maps those keys
to durable bytes.  :class:`LocalDirBackend` is the shipping
implementation — one file per key under a root directory, written
atomically (temp file + rename) so a crashed writer can never leave a
half-written entry behind.

The interface is deliberately minimal (read / write / delete / list /
size / quarantine) so a remote backend — an object store for multi-host
grid fan-out, the ROADMAP's next step — can drop in without touching the
store, the cache adapter, or the report pipeline.  :func:`open_backend`
is the factory seam: local paths work today; URL schemes raise a clear
``NotImplementedError`` naming this hook.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from pathlib import Path

__all__ = ["StoreBackend", "LocalDirBackend", "open_backend"]


class StoreBackend(ABC):
    """Minimal durable key/value contract the artifact store runs on."""

    @abstractmethod
    def read(self, key: str) -> bytes | None:
        """The bytes at ``key``, or ``None`` when absent (never raises)."""

    @abstractmethod
    def write(self, key: str, data: bytes) -> bool:
        """Atomically persist ``data`` at ``key``; False on I/O failure."""

    @abstractmethod
    def delete(self, key: str) -> int:
        """Remove ``key``; returns the bytes reclaimed (0 when absent)."""

    @abstractmethod
    def exists(self, key: str) -> bool:
        """Whether ``key`` currently holds a value."""

    @abstractmethod
    def size(self, key: str) -> int | None:
        """Stored size in bytes, or ``None`` when absent."""

    @abstractmethod
    def list(self, prefix: str = "") -> Iterator[str]:
        """All keys starting with ``prefix``, in sorted order."""

    @abstractmethod
    def quarantine(self, key: str) -> bool:
        """Move a corrupt entry aside to ``<key>.corrupt``; False on failure."""


class LocalDirBackend(StoreBackend):
    """One file per key under ``root``, with atomic tmp-then-rename writes."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """Filesystem location of ``key`` (keys are POSIX-relative paths)."""
        if key.startswith(("/", "..")) or ".." in key.split("/"):
            raise ValueError(f"unsafe backend key {key!r}")
        return self.root.joinpath(*key.split("/"))

    def read(self, key: str) -> bytes | None:
        try:
            return self.path(key).read_bytes()
        except OSError:
            return None

    def write(self, key: str, data: bytes) -> bool:
        path = self.path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_bytes(data)
            tmp.replace(path)
        except OSError:
            return False
        return True

    def delete(self, key: str) -> int:
        path = self.path(key)
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            return 0
        return size

    def exists(self, key: str) -> bool:
        return self.path(key).is_file()

    def size(self, key: str) -> int | None:
        try:
            return self.path(key).stat().st_size
        except OSError:
            return None

    def list(self, prefix: str = "") -> Iterator[str]:
        if not self.root.is_dir():
            return
        for path in sorted(p for p in self.root.rglob("*") if p.is_file()):
            key = path.relative_to(self.root).as_posix()
            if key.startswith(prefix):
                yield key

    def quarantine(self, key: str) -> bool:
        path = self.path(key)
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:
            return False
        return True


def open_backend(location: "str | Path | StoreBackend") -> StoreBackend:
    """Resolve a store location to a backend.

    Accepts an already-constructed backend (passed through), a local
    path (→ :class:`LocalDirBackend`), or a ``scheme://`` URL — the
    extension point for remote backends, which currently raises
    ``NotImplementedError`` so callers get a precise message instead of
    a mangled local path.
    """
    if isinstance(location, StoreBackend):
        return location
    text = str(location)
    if "://" in text:
        scheme = text.split("://", 1)[0]
        raise NotImplementedError(
            f"remote store backend {scheme!r} is not implemented yet; "
            "implement repro.store.backend.StoreBackend and pass the "
            "instance to ArtifactStore (see docs/artifacts.md)"
        )
    return LocalDirBackend(location)
