"""The content-addressed artifact store: staged manifests + blobs + GC.

One :class:`ArtifactStore` unifies what used to be three disconnected
provenance systems — the grid cell cache, the ``results/*.manifest.json``
sidecars, and the hand-assembled ``REPORT.md`` — behind a single
backend-agnostic layout:

* ``raw/<aa>/<fingerprint>.json`` — RAW cell manifests (payload inline),
  sharded by the first two hex chars like the old cache;
* ``curated/<name>.json`` / ``report/<name>.json`` — keyed manifests for
  published artifacts;
* ``blobs/<aa>/<sha256>`` — the published file bytes, content-addressed
  and deduplicated across artifacts.

Reads are fail-safe: a corrupt manifest (truncated write, hand edit,
ID/content mismatch) counts as a miss, is quarantined to
``<entry>.corrupt``, and is recomputed — never raised.  Writes are
atomic and deduplicating: storing content that already exists under the
same key writes nothing, which is what makes ``repro report`` idempotent.
Hit/miss/store/corrupt counters mirror into the tracer's metrics
registry as ``store.*`` (see docs/observability.md); :meth:`gc` prunes
expired RAW entries, orphaned blobs, quarantined ``.corrupt`` debris,
and (opt-in) pre-store legacy cache shards, reporting reclaimed bytes.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.obs.tracer import get_tracer
from repro.store.artifact import Artifact, Stage
from repro.store.backend import LocalDirBackend, StoreBackend, open_backend
from repro.store.canonical import hash_bytes
from repro.store.refs import ArtifactRef, Ref

__all__ = ["ArtifactStore", "GcReport", "DEFAULT_STORE_DIR", "default_store_root"]

#: Directory name of the unified store (next to ``results/``).
DEFAULT_STORE_DIR = ".repro-store"

#: Pre-store cache shards: ``<aa>/<fingerprint>.json`` at the root.
_LEGACY_SHARD = re.compile(r"^[0-9a-f]{2}/[0-9a-f]{64}\.json$")


def default_store_root() -> Path:
    """``<repo root>/.repro-store`` (editable install) or ``cwd/.repro-store``.

    Mirrors :func:`repro.analysis.csvio.results_dir` resolution so every
    entry point (pytest, CLI, benches) shares one store no matter the
    working directory.
    """
    root = Path(__file__).resolve().parents[3]
    base = root if (root / "pyproject.toml").exists() else Path.cwd()
    return base / DEFAULT_STORE_DIR


@dataclass
class GcReport:
    """What one :meth:`ArtifactStore.gc` pass removed (or would remove)."""

    expired_raw: int = 0
    orphan_blobs: int = 0
    swept_corrupt: int = 0
    pruned_legacy: int = 0
    reclaimed_bytes: int = 0
    dry_run: bool = False

    @property
    def removed(self) -> int:
        """Total entries removed across every category."""
        return self.expired_raw + self.orphan_blobs + self.swept_corrupt + self.pruned_legacy

    def as_dict(self) -> dict[str, Any]:
        return {
            "expired_raw": self.expired_raw,
            "orphan_blobs": self.orphan_blobs,
            "swept_corrupt": self.swept_corrupt,
            "pruned_legacy": self.pruned_legacy,
            "reclaimed_bytes": self.reclaimed_bytes,
            "dry_run": self.dry_run,
        }


@dataclass
class _Counters:
    """Mutable hit/miss/store bookkeeping for one store instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    deduped: int = 0
    corrupt: int = 0
    quarantined: int = 0
    evicted: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "deduped": self.deduped,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "evicted": self.evicted,
        }


class ArtifactStore:
    """Staged, content-addressed artifact storage over a pluggable backend."""

    def __init__(self, location: str | Path | StoreBackend | None = None) -> None:
        self.backend = open_backend(location if location is not None else default_store_root())
        self.counters = _Counters()

    # -- key layout --------------------------------------------------------

    @staticmethod
    def _manifest_key(stage: str | Stage, name: str) -> str:
        stage = stage.value if isinstance(stage, Stage) else str(stage)
        if stage == Stage.RAW.value:
            return f"raw/{name[:2]}/{name}.json"
        return f"{stage}/{name}.json"

    @staticmethod
    def _blob_key(sha256: str) -> str:
        return f"blobs/{sha256[:2]}/{sha256}"

    @property
    def root(self) -> Path:
        """Filesystem root (local backends only)."""
        if isinstance(self.backend, LocalDirBackend):
            return self.backend.root
        raise TypeError("store backend has no local root")

    def manifest_path(self, stage: str | Stage, name: str) -> Path:
        """On-disk manifest location (local backends only; for tests/tools)."""
        if not isinstance(self.backend, LocalDirBackend):
            raise TypeError("store backend has no local paths")
        return self.backend.path(self._manifest_key(stage, name))

    # -- read path ---------------------------------------------------------

    def get(self, stage: str | Stage, name: str) -> Artifact | None:
        """The artifact at ``(stage, name)``, or ``None``.

        Corrupt manifests count as a miss, are quarantined aside, and
        tick the ``store.corrupt`` / ``store.quarantined`` counters.
        """
        key = self._manifest_key(stage, name)
        raw = self.backend.read(key)
        if raw is None:
            self.counters.misses += 1
            get_tracer().count("store.misses")
            return None
        try:
            artifact = Artifact.from_manifest(json.loads(raw.decode("utf-8")))
            if artifact.name != name:
                raise ValueError(f"manifest at {key!r} names {artifact.name!r}")
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            self._mark_corrupt(key)
            self.counters.misses += 1
            get_tracer().count("store.misses")
            return None
        self.counters.hits += 1
        get_tracer().count("store.hits")
        return artifact

    def contains(self, stage: str | Stage, name: str) -> bool:
        """Whether a manifest exists at ``(stage, name)`` (no validation)."""
        return self.backend.exists(self._manifest_key(stage, name))

    def names(self, stage: str | Stage) -> list[str]:
        """Every artifact name recorded in ``stage``, sorted."""
        stage_value = stage.value if isinstance(stage, Stage) else str(stage)
        names = []
        for key in self.backend.list(f"{stage_value}/"):
            if key.endswith(".json"):
                names.append(key.rsplit("/", 1)[-1][: -len(".json")])
        return sorted(names)

    def resolve(self, ref: ArtifactRef) -> Artifact | None:
        """Follow an :class:`ArtifactRef`; ``None`` when missing or drifted.

        The referenced artifact must still carry the ref's content ID —
        a name that now holds different content does not resolve.
        """
        artifact = self.get(ref.stage, ref.name)
        if artifact is None or artifact.artifact_id != ref.artifact_id:
            return None
        return artifact

    def blob(self, sha256: str) -> bytes | None:
        """Blob bytes by content hash; corrupt blobs quarantine to a miss."""
        key = self._blob_key(sha256)
        data = self.backend.read(key)
        if data is None:
            return None
        if hash_bytes(data) != sha256:
            self._mark_corrupt(key)
            return None
        return data

    def file_bytes(self, artifact: Artifact, name: str) -> bytes | None:
        """The bytes of one published file of ``artifact``, from its blob."""
        sha = artifact.files.get(name)
        return self.blob(sha) if sha else None

    # -- write path --------------------------------------------------------

    def put(
        self,
        stage: str | Stage,
        name: str,
        *,
        kind: str,
        payload: Mapping[str, Any] | None = None,
        files: Mapping[str, bytes] | None = None,
        refs: tuple[Ref, ...] = (),
    ) -> Artifact:
        """Store an artifact; returns it (existing or newly written).

        Identical content under the same key is a no-op (``deduped``
        tick, zero writes) — the property ``repro report`` idempotence
        rests on.  Different content under the same key supersedes it:
        the key tracks the latest artifact, prior blobs become GC-able
        orphans.  Raises ``OSError`` when the backend cannot persist.
        """
        file_hashes = {fname: hash_bytes(data) for fname, data in (files or {}).items()}
        artifact = Artifact.build(
            stage, name, kind=kind, payload=payload, files=file_hashes, refs=refs
        )
        key = self._manifest_key(stage, name)
        existing = self.backend.read(key)
        if existing is not None:
            try:
                prior = Artifact.from_manifest(json.loads(existing.decode("utf-8")))
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                prior = None
            if prior is not None and prior.artifact_id == artifact.artifact_id:
                self.counters.deduped += 1
                return prior
        for fname, data in (files or {}).items():
            blob_key = self._blob_key(file_hashes[fname])
            if not self.backend.exists(blob_key):
                if not self.backend.write(blob_key, data):
                    raise OSError(f"store backend failed writing blob for {fname!r}")
        document = json.dumps(
            artifact.as_manifest(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        if not self.backend.write(key, document):
            raise OSError(f"store backend failed writing manifest {key!r}")
        self.counters.stores += 1
        get_tracer().count("store.stores")
        return artifact

    def quarantine(self, stage: str | Stage, name: str) -> None:
        """Move the manifest at ``(stage, name)`` aside as ``.corrupt``."""
        self._mark_corrupt(self._manifest_key(stage, name))

    def _mark_corrupt(self, key: str) -> None:
        self.counters.corrupt += 1
        get_tracer().count("store.corrupt")
        if self.backend.quarantine(key):
            self.counters.quarantined += 1
            get_tracer().count("store.quarantined")

    # -- bookkeeping -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """JSON-ready counter snapshot (manifests, CLI summaries)."""
        stats: dict[str, Any] = self.counters.as_dict()
        if isinstance(self.backend, LocalDirBackend):
            stats["dir"] = str(self.backend.root)
        return stats

    # -- garbage collection ------------------------------------------------

    def gc(
        self,
        *,
        max_age_days: float | None = None,
        prune_legacy: bool = False,
        dry_run: bool = False,
    ) -> GcReport:
        """Prune the store; returns what was (or would be) reclaimed.

        * RAW manifests older than ``max_age_days`` (file mtime) are
          evicted — expired measurements recompute on next use;
        * blobs referenced by no manifest are orphans and are removed;
        * ``.corrupt`` / ``.tmp`` debris is swept;
        * with ``prune_legacy=True``, pre-store cache shards
          (``<aa>/<fp>.json`` at the root) are removed — cold entries
          that only lazy migration could still revive (warm entries
          migrate on first reuse, see docs/artifacts.md).

        Local backends only (needs mtimes); ``dry_run`` counts without
        deleting.  Ticks ``store.gc_removed`` with the entry count.
        """
        if not isinstance(self.backend, LocalDirBackend):
            raise TypeError("gc requires a local store backend")
        report = GcReport(dry_run=dry_run)
        root = self.backend.root
        if not root.is_dir():
            return report
        cutoff = time.time() - max_age_days * 86400.0 if max_age_days is not None else None

        def _remove(path: Path) -> int:
            size = path.stat().st_size if path.is_file() else 0
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    return 0
            return size

        for path in sorted(root.rglob("*")):
            if not path.is_file():
                continue
            key = path.relative_to(root).as_posix()
            if path.suffix in (".corrupt", ".tmp") or path.name.endswith(
                (".json.corrupt", ".json.tmp")
            ):
                report.reclaimed_bytes += _remove(path)
                report.swept_corrupt += 1
            elif cutoff is not None and key.startswith("raw/") and path.stat().st_mtime < cutoff:
                report.reclaimed_bytes += _remove(path)
                report.expired_raw += 1
                self.counters.evicted += 1
            elif prune_legacy and _LEGACY_SHARD.match(key):
                report.reclaimed_bytes += _remove(path)
                report.pruned_legacy += 1

        referenced: set[str] = set()
        for stage in Stage:
            for key in self.backend.list(f"{stage.value}/"):
                raw = self.backend.read(key)
                if raw is None:
                    continue
                try:
                    artifact = Artifact.from_manifest(json.loads(raw.decode("utf-8")))
                except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                    continue
                referenced.update(artifact.files.values())
        for key in list(self.backend.list("blobs/")):
            sha = key.rsplit("/", 1)[-1]
            if sha not in referenced:
                path = self.backend.path(key)
                report.reclaimed_bytes += _remove(path)
                report.orphan_blobs += 1

        if not dry_run:
            for directory in sorted(root.rglob("*"), reverse=True):
                if directory.is_dir():
                    try:
                        directory.rmdir()  # only succeeds when empty
                    except OSError:
                        pass
        if report.removed:
            get_tracer().count("store.gc_removed", report.removed)
        return report
