"""Raw-ref recording: which RAW cells fed the artifact being produced.

The cache adapter (:mod:`repro.analysis.cache`) announces every RAW cell
it serves or stores here; the bench harness drains the accumulated refs
when it publishes a CURATED artifact, so each published table/figure
carries machine-resolvable links to the exact measured cells it was
computed from — without threading a recorder handle through ``run_grid``
and every strategy underneath it.

The default recorder is process-global (benches run sequentially in one
process; the harness drains between artifacts).  :func:`recording` opens
a scoped recorder on top for tests and nested use — refs are delivered
to every active recorder, so a scope never steals from the global one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.store.artifact import Stage
from repro.store.refs import ArtifactRef

__all__ = ["RefRecorder", "record_raw_ref", "drain_raw_refs", "recording"]


class RefRecorder:
    """Accumulates :class:`ArtifactRef`\\ s, deduplicated by name."""

    def __init__(self) -> None:
        self._refs: dict[str, ArtifactRef] = {}

    def record(self, ref: ArtifactRef) -> None:
        """Note one ref (same name overwrites — latest content wins)."""
        self._refs[ref.name] = ref

    def drain(self) -> tuple[ArtifactRef, ...]:
        """All recorded refs in name order; empties the recorder."""
        refs = tuple(self._refs[name] for name in sorted(self._refs))
        self._refs.clear()
        return refs

    def __len__(self) -> int:
        return len(self._refs)


_GLOBAL = RefRecorder()
_ACTIVE: list[RefRecorder] = [_GLOBAL]


def record_raw_ref(fingerprint: str, artifact_id: str) -> None:
    """Announce a RAW cell (by fingerprint + content ID) to every recorder."""
    ref = ArtifactRef(stage=Stage.RAW.value, name=fingerprint, artifact_id=artifact_id)
    for recorder in _ACTIVE:
        recorder.record(ref)


def drain_raw_refs() -> tuple[ArtifactRef, ...]:
    """Drain the process-global recorder (the bench harness entry point)."""
    return _GLOBAL.drain()


@contextmanager
def recording() -> Iterator[RefRecorder]:
    """Scoped recorder: refs announced inside the block land in it too."""
    recorder = RefRecorder()
    _ACTIVE.append(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.remove(recorder)
