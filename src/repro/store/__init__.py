"""Content-addressed artifact store: the repo's unified provenance spine.

One store under ``.repro-store/`` holds every stage of the reproduction
pipeline — RAW measured grid cells (what the cell cache now adapts
onto), CURATED published ``results/`` artifacts, and the assembled
REPORT — each a content-addressed :class:`~repro.store.artifact.Artifact`
linked to its inputs by typed refs.  See docs/artifacts.md for the
layout, identity rules, and the ``repro report`` pipeline built on top.
"""

from repro.store.artifact import MANIFEST_VERSION, Artifact, Stage, compute_artifact_id
from repro.store.backend import LocalDirBackend, StoreBackend, open_backend
from repro.store.canonical import canonical_json, content_hash, hash_bytes, hash_file
from repro.store.publish import (
    SPECS,
    ArtifactSpec,
    adopt_results,
    artifact_files,
    publish_curated,
    spec_for,
)
from repro.store.refs import (
    ArtifactRef,
    CodeRef,
    ConfigRef,
    Ref,
    code_ref,
    config_ref,
    ref_from_dict,
)
from repro.store.session import RefRecorder, drain_raw_refs, record_raw_ref, recording
from repro.store.store import DEFAULT_STORE_DIR, ArtifactStore, GcReport, default_store_root

__all__ = [
    "Artifact",
    "ArtifactRef",
    "ArtifactSpec",
    "ArtifactStore",
    "CodeRef",
    "ConfigRef",
    "DEFAULT_STORE_DIR",
    "GcReport",
    "LocalDirBackend",
    "MANIFEST_VERSION",
    "Ref",
    "RefRecorder",
    "SPECS",
    "StoreBackend",
    "Stage",
    "adopt_results",
    "artifact_files",
    "canonical_json",
    "code_ref",
    "compute_artifact_id",
    "config_ref",
    "content_hash",
    "default_store_root",
    "drain_raw_refs",
    "hash_bytes",
    "hash_file",
    "open_backend",
    "publish_curated",
    "record_raw_ref",
    "recording",
    "ref_from_dict",
    "spec_for",
]
