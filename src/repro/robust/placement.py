"""Robust pinned placement: scenario-optimized assignment, no replication.

The robust-scheduling literature the paper cites answers uncertainty by
*optimizing the schedule against scenarios* rather than adding runtime
flexibility.  This module implements that alternative faithfully so the
two philosophies can be compared head-to-head (bench E15):

:class:`RobustPinnedPlacement`
    A no-replication strategy whose Phase 1 does not trust LPT on point
    estimates: it local-searches the assignment to minimize the *worst
    makespan over a scenario set* (extreme-corner draws from the α-band,
    plus the self-adversarial scenario that inflates whichever machine is
    currently most loaded).  Phase 2 is empty, as for any pinned
    placement.

The punchline the bench verifies: scenario-optimization helps on the
scenarios it trained on, but against the *adaptive* adversary of
Theorem 1 no pinned placement can beat `α²m/(α²+m−1)` — flexibility, not
foresight, is what the bound rewards.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive_int
from repro.core.model import Instance
from repro.core.placement import Placement, single_machine_placement
from repro.core.strategy import FixedOrderPolicy, OnlinePolicy, TwoPhaseStrategy
from repro.registry import Capabilities, Int, register_strategy
from repro.schedulers.lpt import lpt_assignment_by_task

__all__ = ["RobustPinnedPlacement"]


@register_strategy(
    "robust_pinned",
    params=(
        Int(
            "s",
            attr="scenarios",
            ge=1,
            default=12,
            omit_default=False,
            doc="number of extreme-corner scenarios optimized against",
        ),
        Int(
            "iters",
            attr="iterations",
            ge=1,
            default=40,
            doc="local-search reassignment passes",
        ),
        Int("seed", default=0, doc="scenario sampling seed"),
    ),
    family="robust",
    theorem="Theorem 1 comparison (bench E15)",
    capabilities=Capabilities(replication_factor="none", supports_batch=True),
)
class RobustPinnedPlacement(TwoPhaseStrategy):
    """Min-max pinned assignment over sampled extreme scenarios.

    Parameters
    ----------
    scenarios:
        Number of extreme-corner scenarios (each task independently at
        ``α`` or ``1/α``) the search optimizes against.  The adversarial
        "inflate the loaded machine" move is handled implicitly: it is the
        scenario structure that dominates the max as the search rebalances.
    iterations:
        Maximum single-task reassignment passes of the local search.
    seed:
        Scenario sampling seed (the strategy itself stays deterministic).
    """

    def __init__(self, scenarios: int = 12, iterations: int = 40, seed: int = 0) -> None:
        self.scenarios = check_positive_int(scenarios, "scenarios")
        self.iterations = check_positive_int(iterations, "iterations")
        self.seed = seed
        self.name = f"robust_pinned[s={self.scenarios}]"

    # -- scenario machinery -------------------------------------------------------
    def _scenario_matrix(self, instance: Instance) -> np.ndarray:
        """``(scenarios, n)`` actual durations; row 0 is the truthful corner."""
        rng = np.random.default_rng(self.seed)
        est = np.asarray(instance.estimates)
        a = instance.alpha
        rows = [est]
        for _ in range(self.scenarios - 1):
            factors = np.where(rng.random(instance.n) < 0.5, a, 1.0 / a)
            rows.append(est * factors)
        return np.stack(rows)

    @staticmethod
    def _worst_makespan(loads: np.ndarray) -> float:
        """``loads``: (scenarios, m) per-scenario machine loads."""
        return float(loads.max(axis=1).max())

    def place(self, instance: Instance) -> Placement:
        durations = self._scenario_matrix(instance)  # (s, n)
        assignment = list(lpt_assignment_by_task(list(instance.estimates), instance.m))
        s, m, n = durations.shape[0], instance.m, instance.n
        loads = np.zeros((s, m))
        for j, i in enumerate(assignment):
            loads[:, i] += durations[:, j]

        current = self._worst_makespan(loads)
        # First-improvement local search over single-task reassignments.
        for _ in range(self.iterations):
            improved = False
            for j in range(n):
                src = assignment[j]
                for dst in range(m):
                    if dst == src:
                        continue
                    loads[:, src] -= durations[:, j]
                    loads[:, dst] += durations[:, j]
                    cand = self._worst_makespan(loads)
                    if cand < current - 1e-12:
                        assignment[j] = dst
                        current = cand
                        improved = True
                        break
                    loads[:, src] += durations[:, j]
                    loads[:, dst] -= durations[:, j]
            if not improved:
                break
        return single_machine_placement(
            instance,
            assignment,
            meta={"strategy": self.name, "trained_worst_makespan": current},
        )

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        return FixedOrderPolicy(instance.lpt_order())
