"""Robust-scheduling alternatives: scenario-optimized placement without replication."""

from repro.robust.placement import RobustPinnedPlacement

__all__ = ["RobustPinnedPlacement"]
