"""Heterogeneous (per-task) uncertainty.

The paper gives every task the same α, but estimate quality varies wildly
in practice: a task type profiled a thousand times is nearly certain, a
novel kernel is a guess.  This extension models per-task factors
``alpha_j`` under a global cap (the instance's ``alpha``), so every
heterogeneous realization is also a valid realization of the paper's
model — the theory's guarantees still apply, they are just pessimistic
for the well-predicted tasks.

:class:`HeteroUncertainty`
    The vector of per-task factors, validated against the global cap,
    with the risk scores replication decisions want.
:func:`hetero_realization`
    Stochastic realizations honoring the per-task bands (each task's
    factor drawn log-uniform within *its own* band).
:func:`hetero_workload`
    A mixed-certainty workload generator: a fraction of tasks are
    "profiled" (tight band) and the rest "novel" (full band).

The matching placement strategy is
:class:`repro.hetero.strategies.RiskAwareReplication`; bench E14 measures
what risk-awareness buys over size-only selection.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro._validation import check_alpha, check_fraction
from repro.core.model import Instance
from repro.uncertainty.realization import Realization, factors_realization
from repro.workloads.generators import uniform_instance

__all__ = ["HeteroUncertainty", "hetero_realization", "hetero_workload"]


@dataclass(frozen=True)
class HeteroUncertainty:
    """Per-task uncertainty factors under the instance's global cap.

    ``alphas[j]`` is task ``j``'s own factor: its actual time lies in
    ``[p̃_j/alphas[j], alphas[j]·p̃_j]``.  Every ``alphas[j]`` must be in
    ``[1, instance.alpha]`` so heterogeneous realizations remain valid for
    the homogeneous model too.
    """

    instance: Instance
    alphas: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.alphas) != self.instance.n:
            raise ValueError(
                f"alphas must cover all {self.instance.n} tasks, got {len(self.alphas)}"
            )
        cap = self.instance.alpha
        for j, a in enumerate(self.alphas):
            check_alpha(a)
            if a > cap * (1 + 1e-12):
                raise ValueError(
                    f"alphas[{j}]={a} exceeds the instance's global alpha {cap}"
                )

    # -- risk scores -----------------------------------------------------------
    def risk(self, tid: int) -> float:
        """Worst-case makespan exposure of task ``tid``.

        The width of the task's actual-time interval:
        ``p̃_j·(α_j − 1/α_j)`` — how much one task alone can move a
        machine's load between the adversary's best and worst case.  A
        long-but-certain task has low risk; a short-but-wild one may
        out-risk it.
        """
        a = self.alphas[tid]
        return self.instance.tasks[tid].estimate * (a - 1.0 / a)

    def risks(self) -> list[float]:
        """All risk scores, task-id indexed."""
        return [self.risk(j) for j in range(self.instance.n)]

    def risk_order(self) -> list[int]:
        """Task ids by non-increasing risk (ties by id)."""
        rs = self.risks()
        return sorted(range(self.instance.n), key=lambda j: (-rs[j], j))

    def total_risk(self) -> float:
        return math.fsum(self.risks())


def hetero_realization(
    hetero: HeteroUncertainty,
    seed: int | np.random.Generator | None = 0,
    *,
    extreme: bool = False,
) -> Realization:
    """A realization honoring each task's own band.

    ``extreme=False`` draws each factor log-uniform within the task's
    band; ``extreme=True`` puts each task at one of *its* band edges
    (fair-coin), the heterogeneous analogue of ``bimodal_extreme``.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    factors = []
    for a in hetero.alphas:
        log_a = math.log(a)
        if log_a == 0.0:
            factors.append(1.0)
        elif extreme:
            factors.append(a if rng.random() < 0.5 else 1.0 / a)
        else:
            factors.append(math.exp(rng.uniform(-log_a, log_a)))
    return factors_realization(
        hetero.instance, factors, label="hetero_extreme" if extreme else "hetero"
    )


def hetero_workload(
    n: int,
    m: int,
    *,
    alpha_novel: float = 2.0,
    alpha_profiled: float = 1.05,
    novel_fraction: float = 0.3,
    seed: int = 0,
) -> HeteroUncertainty:
    """A mixed-certainty workload: mostly profiled tasks, some novel ones.

    Which tasks are novel is drawn uniformly (seeded), independent of
    their size — so size-based and risk-based replication genuinely
    disagree.
    """
    check_fraction(novel_fraction, "novel_fraction")
    check_alpha(alpha_novel)
    check_alpha(alpha_profiled)
    if alpha_profiled > alpha_novel:
        raise ValueError(
            f"alpha_profiled ({alpha_profiled}) must be <= alpha_novel ({alpha_novel})"
        )
    rng = np.random.default_rng(seed)
    instance = uniform_instance(n, m, alpha_novel, rng)
    novel = rng.random(n) < novel_fraction
    alphas = tuple(alpha_novel if is_novel else alpha_profiled for is_novel in novel)
    return HeteroUncertainty(instance, alphas)
