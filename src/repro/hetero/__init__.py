"""Heterogeneous (per-task) uncertainty: model, realizations, risk-aware placement."""

from repro.hetero.strategies import RiskAwareReplication
from repro.hetero.uncertainty import HeteroUncertainty, hetero_realization, hetero_workload

__all__ = [
    "HeteroUncertainty",
    "hetero_realization",
    "hetero_workload",
    "RiskAwareReplication",
]
