"""Risk-aware replication for heterogeneous uncertainty.

With per-task uncertainty, the right question is not "which tasks are
big?" but "which tasks can *move* the schedule?".
:class:`RiskAwareReplication` replicates by descending risk score
``p̃_j·(α_j − 1/α_j)`` — a long-but-profiled task stays pinned, a
short-but-wild one gets copies.  Structure mirrors
:class:`~repro.core.strategies.selective.SelectiveReplication` (same
pinning of the remainder, same pinned-aware Phase-2 dispatch) so bench
E14's comparison isolates the *selection criterion*.
"""

from __future__ import annotations

import heapq

from repro._validation import check_fraction
from repro.core.model import Instance
from repro.core.placement import Placement
from repro.core.strategies.selective import PinnedAwarePolicy
from repro.core.strategy import OnlinePolicy, TwoPhaseStrategy
from repro.hetero.uncertainty import HeteroUncertainty
from repro.registry import (
    Capabilities,
    Float,
    UnrepresentableStrategy,
    register_strategy,
)

__all__ = ["RiskAwareReplication"]


def _risk_aware_extract(strategy: RiskAwareReplication) -> dict[str, object]:
    if strategy.hetero is not None:
        raise UnrepresentableStrategy(
            "risk_aware built with an explicit HeteroUncertainty profile has "
            "no spec form; only the fraction-only constructor round-trips"
        )
    return {"fraction": strategy.fraction}


@register_strategy(
    "risk_aware",
    params=(
        Float(
            "fraction",
            positional=True,
            ge=0.0,
            le=1.0,
            doc="share of the total risk to replicate everywhere",
        ),
    ),
    family="hetero",
    theorem="§7 heterogeneous extension (bench E14)",
    capabilities=Capabilities(
        supports_releases=False,
        supports_hetero=True,
        replication_factor="selective",
        supports_batch=True,
    ),
    builder=lambda fraction: RiskAwareReplication(fraction),
    extract=_risk_aware_extract,
)
class RiskAwareReplication(TwoPhaseStrategy):
    """Replicate the riskiest tasks everywhere, pin the rest with LPT.

    Parameters
    ----------
    hetero:
        The per-task uncertainty profile (carries the instance).  May be
        omitted (spec form ``risk_aware[f]``): a uniform profile at the
        instance's α is derived at placement time, so the strategy stays
        instance-independent like the rest of the registry.
    fraction:
        Share of the *total risk* to replicate: riskiest tasks are
        replicated until they cover ``fraction`` of
        :math:`\\sum_j p̃_j(α_j − 1/α_j)`.
    """

    def __init__(
        self,
        hetero: HeteroUncertainty | float,
        fraction: float | None = None,
    ) -> None:
        if isinstance(hetero, HeteroUncertainty):
            if fraction is None:
                raise TypeError(
                    "RiskAwareReplication(hetero, fraction): fraction is required"
                )
            self.hetero: HeteroUncertainty | None = hetero
        else:
            if fraction is not None:
                raise TypeError(
                    "RiskAwareReplication(fraction) takes no second argument "
                    "without an uncertainty profile"
                )
            hetero, fraction = None, hetero
            self.hetero = None
        self.fraction = check_fraction(fraction, "fraction")
        self.name = f"risk_aware[{self.fraction:g}]"

    def _profile_for(self, instance: Instance) -> HeteroUncertainty:
        if self.hetero is None:
            return HeteroUncertainty(instance, (instance.alpha,) * instance.n)
        if instance != self.hetero.instance:
            raise ValueError(
                "RiskAwareReplication must be given the instance its "
                "uncertainty profile was built for"
            )
        return self.hetero

    def _critical_set(self, hetero: HeteroUncertainty) -> set[int]:
        target = self.fraction * hetero.total_risk()
        covered = 0.0
        chosen: set[int] = set()
        for j in hetero.risk_order():
            if covered >= target:
                break
            risk = hetero.risk(j)
            if risk <= 0.0:
                break  # remaining tasks are certain; nothing to insure
            chosen.add(j)
            covered += risk
        return chosen

    def place(self, instance: Instance) -> Placement:
        critical = self._critical_set(self._profile_for(instance))
        pinned = [j for j in range(instance.n) if j not in critical]
        all_machines = frozenset(range(instance.m))
        sets: list[frozenset[int]] = [all_machines] * instance.n
        if pinned:
            # LPT the pinned remainder (uniform offsets as in selective.py).
            order = sorted(pinned, key=lambda j: (-instance.tasks[j].estimate, j))
            heap = [(0.0, i) for i in range(instance.m)]
            heapq.heapify(heap)
            for j in order:
                load, i = heapq.heappop(heap)
                sets[j] = frozenset((i,))
                heapq.heappush(heap, (load + instance.tasks[j].estimate, i))
        return Placement(
            instance,
            tuple(sets),
            meta={
                "strategy": self.name,
                "critical": tuple(sorted(critical)),
                "pinned": tuple(pinned),
            },
        )

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        return PinnedAwarePolicy(instance, placement)
