"""Risk-aware replication for heterogeneous uncertainty.

With per-task uncertainty, the right question is not "which tasks are
big?" but "which tasks can *move* the schedule?".
:class:`RiskAwareReplication` replicates by descending risk score
``p̃_j·(α_j − 1/α_j)`` — a long-but-profiled task stays pinned, a
short-but-wild one gets copies.  Structure mirrors
:class:`~repro.core.strategies.selective.SelectiveReplication` (same
pinning of the remainder, same pinned-aware Phase-2 dispatch) so bench
E14's comparison isolates the *selection criterion*.
"""

from __future__ import annotations

import heapq

from repro._validation import check_fraction
from repro.core.model import Instance
from repro.core.placement import Placement
from repro.core.strategies.selective import PinnedAwarePolicy
from repro.core.strategy import OnlinePolicy, TwoPhaseStrategy
from repro.hetero.uncertainty import HeteroUncertainty

__all__ = ["RiskAwareReplication"]


class RiskAwareReplication(TwoPhaseStrategy):
    """Replicate the riskiest tasks everywhere, pin the rest with LPT.

    Parameters
    ----------
    hetero:
        The per-task uncertainty profile (carries the instance).
    fraction:
        Share of the *total risk* to replicate: riskiest tasks are
        replicated until they cover ``fraction`` of
        :math:`\\sum_j p̃_j(α_j − 1/α_j)`.
    """

    def __init__(self, hetero: HeteroUncertainty, fraction: float) -> None:
        self.hetero = hetero
        self.fraction = check_fraction(fraction, "fraction")
        self.name = f"risk_aware[{self.fraction:g}]"

    def _critical_set(self) -> set[int]:
        target = self.fraction * self.hetero.total_risk()
        covered = 0.0
        chosen: set[int] = set()
        for j in self.hetero.risk_order():
            if covered >= target:
                break
            risk = self.hetero.risk(j)
            if risk <= 0.0:
                break  # remaining tasks are certain; nothing to insure
            chosen.add(j)
            covered += risk
        return chosen

    def place(self, instance: Instance) -> Placement:
        if instance != self.hetero.instance:
            raise ValueError(
                "RiskAwareReplication must be given the instance its "
                "uncertainty profile was built for"
            )
        critical = self._critical_set()
        pinned = [j for j in range(instance.n) if j not in critical]
        all_machines = frozenset(range(instance.m))
        sets: list[frozenset[int]] = [all_machines] * instance.n
        if pinned:
            # LPT the pinned remainder (uniform offsets as in selective.py).
            order = sorted(pinned, key=lambda j: (-instance.tasks[j].estimate, j))
            heap = [(0.0, i) for i in range(instance.m)]
            heapq.heapify(heap)
            for j in order:
                load, i = heapq.heappop(heap)
                sets[j] = frozenset((i,))
                heapq.heappush(heap, (load + instance.tasks[j].estimate, i))
        return Placement(
            instance,
            tuple(sets),
            meta={
                "strategy": self.name,
                "critical": tuple(sorted(critical)),
                "pinned": tuple(pinned),
            },
        )

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        return PinnedAwarePolicy(instance, placement)
