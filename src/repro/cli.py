"""Command-line interface: ``python -m repro <command>`` / ``repro <command>``.

Each reproduced artifact (table/figure) and the demo runners are exposed as
subcommands so results can be regenerated without pytest:

===================  ====================================================
``table1``           Table 1 — replication-bound guarantee summary
``table2``           Table 2 — memory-aware guarantee summary
``fig1``             Figure 1 — Theorem-1 adversary schedules
``fig2``             Figure 2 — group-replication two-phase example
``fig3``             Figure 3 — ratio-vs-replication curves (m=210)
``fig4``             Figure 4 — SABO schedule example
``fig5``             Figure 5 — ABO schedule example
``fig6``             Figure 6 — memory/makespan guarantee tradeoff
``run``              Run one strategy on a generated workload
``sweep``            Empirical ratio sweep over all strategies
``strategies``       List/describe the registered strategy plugins
``obs``              Traced demo run + metrics summary (observability)
``obs analyze``      Span aggregates + critical path of a JSONL trace
``obs export``       OpenMetrics text exposition of a JSONL trace
``bench``            Perf scenarios → ``BENCH_perf.json`` (``--check`` gates)
``report``           Render ``results/`` + REPORT.md from the artifact store
``cache``            Artifact-store maintenance (``gc`` / ``stats``)
``serve``            Placement-as-a-service daemon (``docs/service.md``)
``loadgen``          Synthetic-tenant load generator against ``serve``
``soak``             Chaos soak: load + scheduled faults (``docs/chaos.md``)
===================  ====================================================

``run`` and ``sweep`` accept ``--trace PATH`` (write a JSONL event trace,
see ``docs/observability.md``) and ``--metrics`` (print the counter/timer
table); ``repro obs`` is the same machinery with tracing always on.
``sweep`` additionally runs through the parallel grid backend:
``--workers N`` fans cells over a process pool (identical results to
serial), and cell outcomes are cached in the artifact store under
``.repro-store/`` between invocations (``--no-cache`` / ``--cache-dir``
override; see ``docs/performance.md`` and ``docs/artifacts.md``).  Strategies with the ``supports_batch``
capability take the vectorized batch backend (bit-identical records);
``--no-batch`` forces every cell through the event kernel.  ``sweep``
also exports telemetry (``--metrics-out [PATH]`` writes an OpenMetrics
artifact, default ``results/telemetry.prom``) and profiles grid cells
opt-in (``--profile`` → cProfile top-N per cell, folded into span
attributes and the grid manifest).  Long traces rotate with
``--trace-max-bytes`` (every segment stays validate-clean).

The figure/table commands delegate to the same code paths the benchmark
suite uses (`benchmarks/` merely wraps them with pytest-benchmark), so CLI
output and bench output always agree.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from contextlib import contextmanager
from typing import Iterator

from repro.analysis import format_table, measured_ratio, summarize
from repro.core.strategies import full_sweep, make_strategy
from repro.obs import JsonlSink, MemorySink, get_tracer
from repro.obs import disable as obs_disable
from repro.obs import enable as obs_enable
from repro.reporting import (
    fig1_report,
    fig2_report,
    fig3_report,
    fig4_report,
    fig5_report,
    fig6_report,
    table1_report,
    table2_report,
)
from repro.uncertainty import sample_realization
from repro.workloads import generate

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of 'Replicated Data Placement "
        "for Uncertain Scheduling' and run its algorithms.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for cmd, doc in [
        ("table1", "Table 1: replication-bound guarantees"),
        ("table2", "Table 2: memory-aware guarantees"),
        ("fig1", "Figure 1: Theorem-1 adversary example"),
        ("fig2", "Figure 2: group replication example"),
        ("fig4", "Figure 4: SABO schedule example"),
        ("fig5", "Figure 5: ABO schedule example"),
    ]:
        sub.add_parser(cmd, help=doc)

    fig3 = sub.add_parser("fig3", help="Figure 3: ratio-replication tradeoff")
    fig3.add_argument("--m", type=int, default=210, help="machine count (paper: 210)")
    fig3.add_argument(
        "--alpha",
        type=float,
        nargs="+",
        default=[1.1, 1.5, 2.0],
        help="uncertainty factors (paper: 1.1 1.5 2)",
    )

    fig6 = sub.add_parser("fig6", help="Figure 6: memory-makespan tradeoff")
    fig6.add_argument("--m", type=int, default=5, help="machine count (paper: 5)")

    run = sub.add_parser("run", help="run one strategy end to end")
    run.add_argument("strategy", help="e.g. lpt_no_choice, ls_group[k=2]")
    run.add_argument("--family", default="uniform", help="workload family")
    run.add_argument("--n", type=int, default=40)
    run.add_argument("--m", type=int, default=6)
    run.add_argument("--alpha", type=float, default=1.5)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--model", default="log_uniform", help="realization model")
    run.add_argument("--gantt", action="store_true", help="print the Gantt chart")
    _add_obs_flags(run)

    sweep = sub.add_parser("sweep", help="ratio sweep over all strategies")
    sweep.add_argument("--family", default="uniform")
    sweep.add_argument("--n", type=int, default=16)
    sweep.add_argument("--m", type=int, default=4)
    sweep.add_argument("--alpha", type=float, default=1.5)
    sweep.add_argument("--seed", type=int, default=0, help="workload generator seed")
    sweep.add_argument("--seeds", type=int, default=5, help="realization seeds per strategy")
    sweep.add_argument("--model", default="bimodal_extreme")
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="grid worker processes (1 = serial; results are identical)",
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk cell cache for this sweep",
    )
    sweep.add_argument(
        "--no-batch",
        action="store_true",
        help="disable the vectorized batch backend (records are identical "
        "either way; this forces every cell through the event kernel)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="cell cache / artifact store directory (default: .repro-store)",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=3,
        metavar="N",
        help="attempts per grid cell before quarantining it (default: 3)",
    )
    sweep.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget; a timed-out attempt counts as a failure",
    )
    sweep.add_argument(
        "--metrics-out",
        nargs="?",
        const="results/telemetry.prom",
        default=None,
        metavar="PATH",
        help="write the metrics registry as OpenMetrics text "
        "(default path when the flag is bare: results/telemetry.prom)",
    )
    sweep.add_argument(
        "--profile",
        action="store_true",
        help="profile each grid cell under cProfile; top rows land in the "
        "cell's span attributes and the grid manifest (implies metrics "
        "collection; costs real overhead)",
    )
    sweep.add_argument(
        "--profile-top",
        type=int,
        default=5,
        metavar="N",
        help="profile rows kept per cell (default: 5)",
    )
    _add_obs_flags(sweep)

    strategies = sub.add_parser(
        "strategies",
        help="list the registered strategy plugins, or describe one spec",
    )
    strategies.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="a strategy spec to describe (omit to list every plugin)",
    )
    strategies.add_argument(
        "--m",
        type=int,
        default=None,
        metavar="M",
        help="also print the sweep specs enumerated for M machines",
    )
    strategies.add_argument(
        "--capability",
        action="append",
        default=None,
        metavar="FLAG",
        help="filter the listing to plugins with FLAG set "
        "(supports_faults, supports_releases, supports_hetero, memory_aware); "
        "repeatable",
    )

    obs = sub.add_parser(
        "obs",
        help="traced demo run: JSONL trace out, metrics summary table",
    )
    obs.add_argument("--strategy", default="lpt_no_choice")
    obs.add_argument("--family", default="uniform")
    obs.add_argument("--n", type=int, default=40)
    obs.add_argument("--m", type=int, default=6)
    obs.add_argument("--alpha", type=float, default=1.5)
    obs.add_argument("--seed", type=int, default=0)
    obs.add_argument("--model", default="log_uniform")
    obs.add_argument(
        "--trace-out", default=None, metavar="PATH", help="write the JSONL trace here"
    )
    obs.add_argument(
        "--metrics",
        action="store_true",
        help="print the counter/gauge/timer summary table",
    )
    obs.add_argument(
        "--inject",
        default=None,
        metavar="SPEC",
        help="also run a small resilient grid with injected cell faults "
        "(e.g. 'every=2,fails=1') and print its SLO report; the exit code "
        "reflects the SLO verdict",
    )

    obs_sub = obs.add_subparsers(dest="obs_command", required=False)
    analyze = obs_sub.add_parser(
        "analyze",
        help="span aggregates, self-time, and the critical path of a trace",
    )
    analyze.add_argument("trace", help="path to the trace .jsonl file")
    analyze.add_argument(
        "--json", action="store_true", help="emit the full analysis as JSON"
    )
    analyze.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="critical-path rows to show before folding the tail (default: 15)",
    )
    export = obs_sub.add_parser(
        "export",
        help="rebuild metrics from a trace and print/write OpenMetrics text",
    )
    export.add_argument("trace", help="path to the trace .jsonl file")
    export.add_argument(
        "--format",
        choices=["openmetrics"],
        default="openmetrics",
        help="exposition format (only openmetrics today)",
    )
    export.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the exposition here instead of stdout",
    )

    proofs = sub.add_parser(
        "proofs", help="replay every proof's inequalities on a concrete instance"
    )
    proofs.add_argument("--family", default="uniform")
    proofs.add_argument("--n", type=int, default=12)
    proofs.add_argument("--m", type=int, default=4)
    proofs.add_argument("--alpha", type=float, default=1.5)
    proofs.add_argument("--seed", type=int, default=0)

    regimes = sub.add_parser(
        "regimes", help="clairvoyance/replication regime analysis for (alpha, m)"
    )
    regimes.add_argument("--m", type=int, default=30)
    regimes.add_argument(
        "--alpha", type=float, nargs="+", default=[1.1, 1.3, 1.5, 2.0]
    )

    report = sub.add_parser(
        "report",
        help="render results/ and REPORT.md from the content-addressed "
        "artifact store (see docs/artifacts.md)",
    )
    report.add_argument(
        "--check",
        action="store_true",
        help="verify the working tree byte-for-byte against the store "
        "instead of writing; exit 1 on any drift",
    )
    report.add_argument(
        "--adopt",
        action="store_true",
        help="first bless the on-disk results/ tree into the store "
        "(fresh-clone bootstrap)",
    )
    report.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="artifact store root (default: .repro-store)",
    )

    cache = sub.add_parser(
        "cache", help="inspect and maintain the artifact store / cell cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_gc = cache_sub.add_parser(
        "gc",
        help="prune expired raw cells, orphaned blobs, corrupt debris, "
        "and (opt-in) legacy .repro-cache shards",
    )
    cache_gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="DAYS",
        help="evict raw cell entries older than DAYS (default: keep all)",
    )
    cache_gc.add_argument(
        "--prune-legacy",
        action="store_true",
        help="also remove pre-store v2 cache shards (cold entries only "
        "lazy migration could still revive)",
    )
    cache_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without deleting anything",
    )
    cache_gc.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="artifact store root (default: .repro-store)",
    )
    cache_stats = cache_sub.add_parser(
        "stats", help="per-stage entry counts and on-disk size of the store"
    )
    cache_stats.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="artifact store root (default: .repro-store)",
    )

    bench = sub.add_parser(
        "bench",
        help="time the perf scenarios and write/check BENCH_perf.json",
    )
    bench.add_argument(
        "--quick", action="store_true", help="small grid, 3 repeats (the CI mode)"
    )
    bench.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per scenario"
    )
    bench.add_argument(
        "--out", default=None, metavar="PATH", help="artifact path override"
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="re-measure and gate batch_speedup_x against --baseline",
    )
    bench.add_argument(
        "--baseline", default=None, metavar="PATH", help="baseline for --check"
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative batch_speedup_x band for --check (default 0.30)",
    )
    bench.add_argument(
        "--floor",
        type=float,
        default=None,
        help="absolute batch_speedup_x floor for --check (default 2.0)",
    )
    bench.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="perf-trajectory JSONL (default: results/BENCH_history.jsonl)",
    )
    bench.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending the perf-trajectory row",
    )

    serve = sub.add_parser(
        "serve",
        help="run the placement-as-a-service daemon (see docs/service.md)",
    )
    serve.add_argument(
        "--strategy", default="ls_group[k=2]", help="placement family spec"
    )
    serve.add_argument("--m", type=int, default=8, help="simulated machine count")
    serve.add_argument("--alpha", type=float, default=1.5)
    serve.add_argument(
        "--model",
        default="log_uniform",
        help="actual-duration model (truthful, log_uniform, bimodal_extreme)",
    )
    serve.add_argument("--seed", type=int, default=0, help="duration-draw seed")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="TCP port (0 = pick free; default 8765, or TCP off when --socket set)",
    )
    serve.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="also/instead listen on a unix domain socket at PATH",
    )
    serve.add_argument(
        "--pace",
        type=float,
        default=0.0,
        help="virtual seconds per real second (0 = run the cluster eagerly)",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="keep an OpenMetrics exposition refreshed at PATH (scrapable file)",
    )
    _add_obs_flags(serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive seeded synthetic tenants against a running daemon",
    )
    loadgen.add_argument("--tenants", type=int, default=100)
    loadgen.add_argument(
        "--tasks", type=int, default=5, help="tasks submitted per tenant"
    )
    loadgen.add_argument("--seed", type=int, default=0, help="workload seed")
    loadgen.add_argument(
        "--concurrency",
        type=int,
        default=64,
        help="max simultaneous tenant connections (fd cap)",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=None, help="daemon TCP port")
    loadgen.add_argument(
        "--socket", default=None, metavar="PATH", help="daemon unix socket path"
    )
    loadgen.add_argument(
        "--drain",
        action="store_true",
        help="finish by draining the daemon's queue (keeps it running)",
    )
    loadgen.add_argument(
        "--shutdown",
        action="store_true",
        help="finish by draining and stopping the daemon",
    )
    loadgen.add_argument(
        "--json", default=None, metavar="PATH", help="write the full report as JSON"
    )

    soak = sub.add_parser(
        "soak",
        help="chaos soak: sustained load + scheduled faults (docs/chaos.md)",
    )
    soak.add_argument("--zones", type=int, default=1, help="fleet zones")
    soak.add_argument("--racks-per-zone", type=int, default=4)
    soak.add_argument("--machines-per-rack", type=int, default=2)
    soak.add_argument(
        "--strategy", default="ls_group[k=2]", help="placement family spec"
    )
    soak.add_argument("--alpha", type=float, default=1.5)
    soak.add_argument(
        "--model",
        default="log_uniform",
        help="actual-duration model (truthful, log_uniform, bimodal_extreme)",
    )
    soak.add_argument("--seed", type=int, default=0, help="workload + duration seed")
    soak.add_argument(
        "--duration", type=float, default=30.0, help="arrival window (virtual s)"
    )
    soak.add_argument(
        "--rate", type=float, default=4.0, help="mean arrivals per virtual second"
    )
    soak.add_argument("--est-low", type=float, default=0.5)
    soak.add_argument("--est-high", type=float, default=4.0)
    soak.add_argument(
        "--sample-every", type=float, default=1.0, help="availability sample grid (s)"
    )
    soak.add_argument(
        "--chaos",
        action="append",
        default=None,
        metavar="SPEC",
        help="chaos schedule spec, repeatable (rack:at=8,downtime=10 | "
        "zone:... | cascade:... | flap:... | none)",
    )
    soak.add_argument(
        "--objective",
        action="append",
        default=None,
        metavar="OBJ",
        help="SLO objective line, repeatable (default: availability + no strandings)",
    )
    soak.add_argument(
        "--out",
        default=None,
        metavar="PREFIX",
        help="write <PREFIX>_curve.csv and <PREFIX>_report.json (+ manifests)",
    )
    soak.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when the SLO verdict fails",
    )
    soak.add_argument(
        "--live",
        action="store_true",
        help="drive the real daemon over HTTP instead of pure virtual time",
    )
    soak.add_argument(
        "--socket", default=None, metavar="PATH", help="unix socket for --live"
    )
    soak.add_argument(
        "--pace",
        type=float,
        default=1.0,
        help="--live only: virtual seconds per wall second",
    )
    soak.add_argument(
        "--bulkhead",
        type=int,
        default=None,
        metavar="N",
        help="--live only: cap in-flight tasks at N (503 overloaded beyond)",
    )
    soak.add_argument(
        "--breaker",
        action="store_true",
        help="--live only: put a circuit breaker on the admission path",
    )
    _add_obs_flags(soak)
    return parser


def _add_obs_flags(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="enable tracing and write the JSONL event trace to PATH",
    )
    sub_parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the observability counter/timer table after the run",
    )
    sub_parser.add_argument(
        "--trace-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="rotate the trace file past BYTES (trace.jsonl → trace.1.jsonl; "
        "every segment stays schema-valid on its own)",
    )


def _print_metrics() -> None:
    rows = get_tracer().registry.rows()
    if rows:
        print()
        print(format_table(rows, title="observability metrics"))


@contextmanager
def _observability(
    trace_path: str | None,
    want_metrics: bool,
    *,
    metrics_out: str | None = None,
    max_bytes: int | None = None,
    force: bool = False,
) -> Iterator[None]:
    """Enable the global tracer for one CLI command if asked to.

    ``--trace PATH`` attaches a JSONL sink (rotating past ``max_bytes``
    when set); ``--metrics`` / ``--metrics-out`` / ``force`` alone use a
    memory sink just to light the counters up.  The teardown is
    exception-safe: even when the command (or the counter snapshot)
    raises, the sinks are flushed and closed, so a crashed traced run
    still leaves a valid, ``obs.validate``-clean trace on disk.
    """
    if not trace_path and not want_metrics and not metrics_out and not force:
        yield
        return
    sinks = (
        [JsonlSink(trace_path, max_bytes=max_bytes)]
        if trace_path
        else [MemorySink()]
    )
    obs_enable(*sinks)
    try:
        yield
    finally:
        try:
            get_tracer().snapshot_counters()
            if metrics_out:
                from repro.obs.export import write_exposition

                path = write_exposition(
                    get_tracer().registry.summary(), metrics_out
                )
                print(f"\ntelemetry written to {path}")
            if want_metrics:
                _print_metrics()
        finally:
            obs_disable()
            if trace_path:
                print(f"\ntrace written to {trace_path}")


def _cmd_run(args: argparse.Namespace) -> int:
    instance = generate(args.family, args.n, args.m, args.alpha, args.seed)
    realization = sample_realization(instance, args.model, args.seed + 1)
    strategy = make_strategy(args.strategy)
    record = measured_ratio(strategy, instance, realization)
    out = record.outcome
    print(f"strategy     : {out.strategy_name}")
    print(f"instance     : {instance.name} (alpha={instance.alpha})")
    print(f"realization  : {realization.label}")
    print(f"replication  : {out.replication} (total replicas {out.placement.total_replicas()})")
    print(f"makespan     : {out.makespan:.6g}")
    print(
        f"optimum      : {record.optimum.value:.6g} "
        f"({record.optimum.method}{'' if record.optimum.optimal else ', lower bound'})"
    )
    print(f"ratio        : {record.ratio:.4f}")
    if record.guarantee is not None:
        print(f"guarantee    : {record.guarantee:.4f} (within: {record.within_guarantee})")
    if args.gantt:
        from repro.simulation import render_gantt

        print()
        print(render_gantt(out.trace, instance.m))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Ratio sweep through :func:`repro.analysis.run_grid`.

    One instance (from ``--seed``), every strategy applicable to ``m``,
    ``--seeds`` realization draws — fanned over ``--workers`` processes
    and served from the cell cache when warm (``--no-cache`` opts out).
    Crashing cells are retried ``--retries`` times (quarantined after);
    ``--cell-timeout`` bounds each attempt's wall clock.
    """
    from repro.analysis import CellCache, ExperimentGrid, RetryPolicy

    instance = generate(args.family, args.n, args.m, args.alpha, args.seed)
    strategies = full_sweep(args.m)
    cache = None
    if not args.no_cache:
        cache = CellCache(args.cache_dir) if args.cache_dir else CellCache()
    grid = ExperimentGrid(
        strategies=list(strategies),
        instances=[instance],
        realization_models=[args.model],
        seeds=tuple(1000 + s for s in range(args.seeds)),
        workers=args.workers,
        cache=cache,
        retry=RetryPolicy(max_attempts=max(1, args.retries), timeout_s=args.cell_timeout),
        batch=not args.no_batch,
    )
    records = grid.run()
    by_strategy: dict[str, list] = {s.name: [] for s in strategies}
    for rec in records:
        by_strategy[rec.strategy].append(rec)
    rows = []
    for name, recs in by_strategy.items():
        if not recs:
            continue
        s = summarize([r.ratio for r in recs])
        rows.append(
            {
                "strategy": name,
                "replication": recs[0].replication,
                "mean ratio": s.mean,
                "max ratio": s.maximum,
                "guarantee": recs[0].guarantee if recs[0].guarantee is not None else "",
            }
        )
    print(
        format_table(
            rows,
            title=(
                f"Empirical ratios: {args.family}(n={args.n}, m={args.m}), "
                f"alpha={args.alpha}, model={args.model}, seeds={args.seeds}"
            ),
        )
    )
    if cache is not None:
        stats = cache.stats()
        quarantined = (
            f", {stats['quarantined']} corrupt shards quarantined"
            if stats["quarantined"]
            else ""
        )
        print(
            f"\ncell cache: {stats['hits']} hits / {stats['misses']} misses "
            f"(hit rate {stats['hit_rate']:.0%}) in {stats['dir']}{quarantined}"
        )
    if grid.batched_cells:
        print(f"batch backend: {grid.batched_cells} cells via the vectorized sweep")
    res = grid.resilience
    if res["retries"] or res["timeouts"] or res["quarantined"]:
        print(
            f"resilience: {res['retries']} cell retries, {res['timeouts']} timeouts, "
            f"{res['quarantined']} cells quarantined"
        )
    for skip in grid.skipped:
        if skip.kind == "quarantined":
            print(f"  quarantined: {skip}")
    return 0


def _print_params(entry) -> None:
    if entry.params:
        print("parameters   :")
        for p in entry.params:
            default = "" if p.required else f" (default {p.default!r})"
            print(f"  {p.key:10s} {p.describe():24s}{default}  {p.doc}")


def _cmd_strategies(args: argparse.Namespace) -> int:
    """List the registered plugins, or describe one spec in detail."""
    import repro.registry as registry

    if args.spec is not None:
        try:
            entry = registry.get_entry(args.spec)
        except KeyError:
            entry = None
        if entry is not None and any(p.required for p in entry.params):
            # A bare family name whose spec needs parameters: show the
            # entry's help instead of a parse error.
            print(f"name         : {entry.name}")
            print(f"spec         : {entry.template()}")
            print(f"class        : {entry.cls.__module__}.{entry.cls.__qualname__}")
            print(f"family       : {entry.family}")
            print(f"paper        : {entry.theorem or '—'}")
            print(f"summary      : {entry.summary}")
            print(f"capabilities : {', '.join(entry.capabilities.flags()) or '—'}")
            print(f"replication  : {entry.capabilities.replication_factor}")
            _print_params(entry)
            return 0
        try:
            strategy = registry.make_strategy(args.spec)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        entry = registry.entry_for(strategy)
        caps = registry.capabilities_of(strategy)
        print(f"spec         : {args.spec}")
        print(f"canonical    : {registry.describe_strategy(strategy)}")
        print(f"class        : {type(strategy).__module__}.{type(strategy).__qualname__}")
        print(f"family       : {entry.family}")
        print(f"paper        : {entry.theorem or '—'}")
        print(f"summary      : {entry.summary}")
        print(f"capabilities : {', '.join(caps.flags()) or '—'}")
        print(f"replication  : {caps.replication_factor}")
        _print_params(entry)
        return 0

    wanted = None
    if args.capability:
        valid = {"supports_faults", "supports_releases", "supports_hetero", "memory_aware"}
        bad = [c for c in args.capability if c not in valid]
        if bad:
            print(
                f"unknown capability flag(s): {', '.join(bad)} "
                f"(valid: {', '.join(sorted(valid))})",
                file=sys.stderr,
            )
            return 1
        wanted = set(args.capability)
    rows = []
    for entry in registry.strategy_entries():
        caps = entry.capabilities
        if wanted and not wanted.issubset(caps.flags()):
            continue
        rows.append(
            {
                "name": entry.name,
                "family": entry.family,
                "spec": entry.template(),
                "capabilities": ",".join(caps.flags()) or "—",
                "replication": caps.replication_factor,
                "paper": entry.theorem or "—",
            }
        )
    print(format_table(rows, title=f"{len(rows)} registered strategy plugins"))
    if args.m is not None:
        print()
        print(f"sweep specs for m={args.m}:")
        for spec in registry.strategy_names(args.m, include_ablation=True):
            print(f"  {spec}")
    return 0


def _cmd_proofs(args: argparse.Namespace) -> int:
    from repro.theory import verify_all

    instance = generate(args.family, args.n, args.m, args.alpha, args.seed)
    realization = sample_realization(instance, "bimodal_extreme", args.seed + 1)
    checks = verify_all(instance, realization)
    for check in checks:
        print(check.render())
        print()
    failures = [s for c in checks for s in c.failures()]
    total = sum(len(c.steps) for c in checks)
    print(f"{len(checks)} chains, {total} inequalities, {len(failures)} failures")
    return 1 if failures else 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Demo the observability layer on one end-to-end strategy run.

    With ``--inject SPEC`` the demo additionally runs a small resilient
    grid under injected cell faults — exercising the retry/recovery spans
    — and prints an SLO report over the run; the exit code then reflects
    the SLO verdict, making this a one-command end-to-end check of the
    faults + obs + SLO stack.
    """
    from repro.faults import inject

    try:
        injected = (
            inject.CellFaultSpec.parse(args.inject) if args.inject else None
        )
    except ValueError as exc:
        print(f"repro obs: {exc}", file=sys.stderr)
        return 2
    slo_failed = False
    sinks = [JsonlSink(args.trace_out)] if args.trace_out else [MemorySink()]
    tracer = obs_enable(*sinks)
    memory = sinks[0] if isinstance(sinks[0], MemorySink) else None
    try:
        instance = generate(args.family, args.n, args.m, args.alpha, args.seed)
        realization = sample_realization(instance, args.model, args.seed + 1)
        strategy = make_strategy(args.strategy)
        record = measured_ratio(strategy, instance, realization)
        counters = tracer.registry.counters
        print(f"strategy     : {record.outcome.strategy_name}")
        print(f"instance     : {instance.name} (alpha={instance.alpha})")
        print(f"makespan     : {record.outcome.makespan:.6g}  ratio {record.ratio:.4f}")
        print(f"dispatches   : {counters['sim.dispatches'].value}")
        print(f"completions  : {counters['sim.completions'].value}")
        print(f"events       : {counters['sim.events_processed'].value}")
        spans = tracer.registry.timers
        for name in sorted(spans):
            if name.startswith("span."):
                t = spans[name]
                print(f"{name:13s}: {t.count} × mean {t.mean * 1e3:.3f} ms")
        if memory is not None:
            print(f"buffered     : {len(memory.events)} trace events (in memory)")
        if injected is not None:
            slo_failed = not _obs_inject_demo(args, instance, strategy, injected)
        if args.metrics:
            _print_metrics()
    finally:
        inject.reset()
        tracer.snapshot_counters()
        obs_disable()
    if args.trace_out:
        print(f"\ntrace written to {args.trace_out}")
        print(f"validate with: python -m repro.obs.validate {args.trace_out}")
    return 1 if slo_failed else 0


def _obs_inject_demo(args, instance, strategy, spec) -> bool:
    """Fault-injected grid + SLO report for ``repro obs --inject``.

    Returns the SLO verdict.  The grid runs the demo strategy over a few
    seeds with the resilient executor, so injected faults surface as
    ``grid.cell_retry`` events and retry counters rather than failures;
    the SLO report then asserts the recovery actually happened.
    """
    from repro.analysis import ExperimentGrid, RetryPolicy
    from repro.faults import inject
    from repro.obs.slo import evaluate

    inject.configure(spec)
    seeds = (args.seed, args.seed + 1, args.seed + 2)
    grid = ExperimentGrid(
        strategies=[strategy],
        instances=[instance],
        realization_models=[args.model],
        seeds=seeds,
        retry=RetryPolicy(max_attempts=max(2, spec.fails + 1), backoff_s=0.0),
    )
    grid.run()
    inject.reset()
    print(
        f"\ninjected     : {args.inject} over {len(seeds)} cells "
        f"({grid.resilience['retries']} retries, "
        f"{grid.resilience['quarantined']} quarantined)"
    )
    report = evaluate(
        [
            f"count(grid.cells_done) >= {len(seeds)}",
            "count(grid.cell_retries) >= 1",
            "quarantined == 0",
            "p99(grid.cell) < 5s",
        ],
        registry=get_tracer().registry,
        extras={"quarantined": float(grid.resilience["quarantined"])},
    )
    print()
    print(
        format_table(
            report.rows(),
            title=f"SLO report: {'PASS' if report.passed else 'FAIL'}",
        )
    )
    return report.passed


def _cmd_obs_analyze(args: argparse.Namespace) -> int:
    """``repro obs analyze trace.jsonl`` — tables or ``--json``."""
    import json as json_mod

    from repro.obs.analyze import analyze_file

    try:
        analysis = analyze_file(args.trace, top=args.top)
    except (OSError, ValueError) as exc:
        print(f"error: cannot analyze {args.trace}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json_mod.dumps(analysis.as_dict(), indent=2, default=str))
        return 0
    print(
        f"trace        : {args.trace} ({analysis.events} events"
        + (f", {analysis.workers} workers" if analysis.workers else "")
        + ")"
    )
    print(f"root span    : {analysis.root_name} ({analysis.root_duration_s:.6f} s)")
    if analysis.spans:
        print()
        print(format_table(analysis.spans, title="span aggregates"))
    if analysis.attribution:
        print()
        print(
            format_table(
                analysis.attribution,
                title=(
                    f"critical path (self-time attribution; total "
                    f"{analysis.total_attributed_s:.6f} s = "
                    f"{1 - analysis.attribution_error:.2%} of root)"
                ),
            )
        )
    if analysis.chain:
        print()
        print(format_table(analysis.chain, title="dominant chain (root → heaviest leaf)"))
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    """``repro obs export trace.jsonl`` — OpenMetrics text exposition."""
    from repro.obs.export import registry_from_trace, render_openmetrics

    try:
        registry = registry_from_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: cannot export {args.trace}: {exc}", file=sys.stderr)
        return 1
    text = render_openmetrics(registry.summary())
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text, encoding="utf-8")
        print(f"exposition written to {out}")
    else:
        print(text, end="")
    return 0


def _cmd_regimes(args: argparse.Namespace) -> int:
    from repro.analysis.regimes import clairvoyance_value, dominant_strategy_map

    rows = []
    for entry in dominant_strategy_map(args.alpha, args.m):
        rows.append(
            {
                "alpha": entry["alpha"],
                "best strategy": entry["best_strategy"],
                "best guarantee": entry["best_guarantee"],
                "at replication": entry["best_replication"],
                "value of estimates": clairvoyance_value(entry["alpha"], args.m),
            }
        )
    print(
        format_table(
            rows, title=f"Regime analysis at m={args.m} (guarantee space)"
        )
    )
    print(
        "\n'value of estimates' is Graham's estimate-free bound minus the best "
        "estimate-aware bound; it hits zero at alpha=sqrt(2)."
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """``repro report [--check] [--adopt]`` — the store-backed report pipeline."""
    from repro.analysis.report import (
        UnresolvableArtifactError,
        check_report,
        generate_report,
    )
    from repro.store import ArtifactStore

    store = ArtifactStore(args.store) if args.store else ArtifactStore()
    try:
        if args.check:
            problems = check_report(store=store, adopt=args.adopt)
            if problems:
                print("repro report --check FAILED:", file=sys.stderr)
                for problem in problems:
                    print(f"  - {problem}", file=sys.stderr)
                return 1
            print("results/ matches the artifact store byte-for-byte")
            return 0
        path = generate_report(store=store, adopt=args.adopt)
        print(f"report written to {path}")
        return 0
    except (UnresolvableArtifactError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_cache(args: argparse.Namespace) -> int:
    """``repro cache gc|stats`` — artifact-store maintenance."""
    from repro.store import ArtifactStore, Stage

    store = ArtifactStore(args.store) if args.store else ArtifactStore()
    if args.cache_command == "gc":
        report = store.gc(
            max_age_days=args.max_age_days,
            prune_legacy=args.prune_legacy,
            dry_run=args.dry_run,
        )
        verb = "would reclaim" if args.dry_run else "reclaimed"
        print(
            f"cache gc: {report.expired_raw} expired raw entries, "
            f"{report.orphan_blobs} orphan blobs, "
            f"{report.swept_corrupt} corrupt/tmp files, "
            f"{report.pruned_legacy} legacy shards — "
            f"{verb} {report.reclaimed_bytes} bytes"
        )
        return 0
    # stats
    backend = store.backend
    total = 0
    blobs = 0
    for key in backend.list(""):
        size = backend.size(key) or 0
        total += size
        if key.startswith("blobs/"):
            blobs += 1
    print(f"store: {store.stats().get('dir', '<remote>')}")
    for stage in Stage:
        print(f"  {stage.value:>7}: {len(store.names(stage))} artifacts")
    print(f"  {'blobs':>7}: {blobs} files")
    print(f"  {'size':>7}: {total} bytes")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.daemon import ServiceDaemon
    from repro.service.scheduler import ServiceScheduler

    port = args.port
    if port is None:
        port = None if args.socket else 8765
    scheduler = ServiceScheduler(
        args.strategy, m=args.m, alpha=args.alpha, model=args.model, seed=args.seed
    )
    daemon = ServiceDaemon(
        scheduler,
        host=args.host,
        port=port,
        socket_path=args.socket,
        metrics_out=args.metrics_out,
        pace=args.pace,
    )

    async def _run() -> None:
        server = asyncio.ensure_future(daemon.serve())
        await daemon.started.wait()
        listening = []
        if daemon.port is not None:
            listening.append(f"http://{args.host}:{daemon.port}")
        if args.socket:
            listening.append(f"unix:{args.socket}")
        print(
            f"repro service listening on {' and '.join(listening)} "
            f"({scheduler.placer.canonical_spec}, m={scheduler.m}, "
            f"alpha={scheduler.alpha}, model={scheduler.model})",
            flush=True,
        )
        await server

    with _observability(
        args.trace, args.metrics, max_bytes=args.trace_max_bytes, force=True
    ):
        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            pass
    print("service stopped")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service.loadgen import make_workload, run_loadgen

    if (args.port is None) == (args.socket is None):
        print("loadgen: pass exactly one of --port or --socket", file=sys.stderr)
        return 2
    workload = make_workload(args.tenants, args.tasks, seed=args.seed)
    report = asyncio.run(
        run_loadgen(
            workload,
            host=args.host,
            port=args.port,
            socket_path=args.socket,
            concurrency=args.concurrency,
            drain=args.drain and not args.shutdown,
            shutdown=args.shutdown,
        )
    )
    payload = report.as_dict()
    if args.json:
        from pathlib import Path

        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"report written to {out}")
    print(f"tenants      : {report.tenants} ({report.tasks} unique tasks)")
    print(f"requests     : {report.requests} ({report.deduplicated} deduplicated)")
    print(f"errors       : {report.errors} ({report.retries} transport retries)")
    print(f"wall         : {report.wall_s:.3f}s ({report.throughput_rps:.0f} req/s)")
    print(
        f"latency      : p50 {report.latency_p50_ms:.2f}ms, "
        f"p99 {report.latency_p99_ms:.2f}ms"
    )
    print(f"digest       : {report.decision_digest[:16]}…")
    status = report.final_status
    if status:
        dropped = status.get("admitted", 0) - status.get("done", 0)
        if args.drain or args.shutdown:
            print(f"dropped      : {dropped} of {status.get('admitted', 0)} admitted")
    if report.errors:
        return 1
    if (args.drain or args.shutdown) and status.get("admitted") != status.get("done"):
        return 1
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.chaos import ChaosSchedule, FleetTopology, SoakConfig
    from repro.chaos.soak import run_soak, run_soak_live

    topology = FleetTopology(
        zones=args.zones,
        racks_per_zone=args.racks_per_zone,
        machines_per_rack=args.machines_per_rack,
    )
    schedule = ChaosSchedule()
    for spec in args.chaos or []:
        try:
            schedule = schedule.merge(ChaosSchedule.parse(spec, topology))
        except ValueError as exc:
            print(f"soak: {exc}", file=sys.stderr)
            return 2
    config_kw = dict(
        topology=topology,
        strategy=args.strategy,
        alpha=args.alpha,
        model=args.model,
        seed=args.seed,
        duration=args.duration,
        rate=args.rate,
        est_low=args.est_low,
        est_high=args.est_high,
        sample_every=args.sample_every,
        schedule=schedule,
    )
    if args.objective:
        config_kw["objectives"] = tuple(args.objective)
    try:
        config = SoakConfig(**config_kw)
    except ValueError as exc:
        print(f"soak: {exc}", file=sys.stderr)
        return 2
    if args.live:
        report = run_soak_live(
            config,
            socket_path=args.socket,
            pace=args.pace,
            bulkhead_capacity=args.bulkhead,
            breaker=args.breaker,
        )
    else:
        report = run_soak(config)
    summary = report.summary
    mode = "live" if report.live else "virtual"
    print(
        f"soak ({mode}): {topology.describe()}, "
        f"{len(schedule.actions)} chaos action(s), seed {config.seed}"
    )
    print(
        f"tasks        : {summary['tasks_admitted']} admitted, "
        f"{summary['tasks_done']} done, {summary['shed']} shed, "
        f"{summary['stranded']} stranded"
    )
    print(
        f"failures     : {summary['machine_failures']} machine failures, "
        f"{summary['replaced']} tasks re-placed, "
        f"{summary['restarts']} restarts"
    )
    print(
        f"availability : min {summary['min_availability']:.3f}, "
        f"mean {summary['mean_availability']:.3f} "
        f"(diversity rack {summary['diversity_rack']:.2f} / "
        f"zone {summary['diversity_zone']:.2f})"
    )
    print(
        f"makespan     : {summary['makespan']:.3f} vs control "
        f"{summary['control_makespan']:.3f} "
        f"(inflation {summary['inflation']:.3f}, "
        f"capacity bound {summary['capacity_bound']:.3f})"
    )
    print(f"digest       : {report.digest[:16]}…")
    for row in report.slo.rows():
        print(
            f"slo          : {row['status']}  {row['objective']} "
            f"(observed {row['observed']}, need {row['threshold']})"
        )
    if args.out:
        paths = report.write_artifacts(args.out)
        print(f"artifacts    : {paths['curve']} and {paths['report']}")
    if args.check and not report.passed:
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    command = args.command
    if command == "table1":
        print(table1_report())
    elif command == "table2":
        print(table2_report())
    elif command == "fig1":
        print(fig1_report())
    elif command == "fig2":
        print(fig2_report())
    elif command == "fig3":
        print(fig3_report(m=args.m, alphas=tuple(args.alpha)))
    elif command == "fig4":
        print(fig4_report())
    elif command == "fig5":
        print(fig5_report())
    elif command == "fig6":
        print(fig6_report(m=args.m))
    elif command == "run":
        with _observability(args.trace, args.metrics, max_bytes=args.trace_max_bytes):
            return _cmd_run(args)
    elif command == "sweep":
        import os

        from repro.obs import profiling

        profile_env_set = False
        if args.profile:
            os.environ[profiling.ENV_VAR] = f"top={max(1, args.profile_top)}"
            profile_env_set = True
        try:
            with _observability(
                args.trace,
                args.metrics,
                metrics_out=args.metrics_out,
                max_bytes=args.trace_max_bytes,
                force=args.profile,
            ):
                return _cmd_sweep(args)
        finally:
            if profile_env_set:
                os.environ.pop(profiling.ENV_VAR, None)
                profiling.reset()
    elif command == "strategies":
        return _cmd_strategies(args)
    elif command == "obs":
        obs_command = getattr(args, "obs_command", None)
        if obs_command == "analyze":
            return _cmd_obs_analyze(args)
        if obs_command == "export":
            return _cmd_obs_export(args)
        return _cmd_obs(args)
    elif command == "proofs":
        return _cmd_proofs(args)
    elif command == "regimes":
        return _cmd_regimes(args)
    elif command == "report":
        return _cmd_report(args)
    elif command == "cache":
        return _cmd_cache(args)
    elif command == "bench":
        from repro.tools.perfbench import main as perfbench_main

        forwarded: list[str] = []
        if args.quick:
            forwarded.append("--quick")
        if args.repeats is not None:
            forwarded.extend(["--repeats", str(args.repeats)])
        if args.out:
            forwarded.extend(["--out", args.out])
        if args.check:
            forwarded.append("--check")
        if args.baseline:
            forwarded.extend(["--baseline", args.baseline])
        if args.tolerance is not None:
            forwarded.extend(["--tolerance", str(args.tolerance)])
        if args.floor is not None:
            forwarded.extend(["--floor", str(args.floor)])
        if args.history:
            forwarded.extend(["--history", args.history])
        if args.no_history:
            forwarded.append("--no-history")
        return perfbench_main(forwarded)
    elif command == "serve":
        return _cmd_serve(args)
    elif command == "loadgen":
        return _cmd_loadgen(args)
    elif command == "soak":
        with _observability(args.trace, args.metrics, max_bytes=args.trace_max_bytes):
            return _cmd_soak(args)
    else:  # pragma: no cover — argparse enforces the choices
        raise AssertionError(f"unhandled command {command}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
