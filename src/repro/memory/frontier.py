"""Guarantee curves and impossibility frontier for Figure 6.

Figure 6 of the paper plots, in the (makespan guarantee, memory guarantee)
plane, the curves traced by :math:`SABO_\\Delta` and :math:`ABO_\\Delta`
as :math:`\\Delta` sweeps over :math:`(0, \\infty)`, against the bold
impossibility lines inherited from the SBO paper (no algorithm can beat
:math:`(1+\\Delta)` on makespan *and* :math:`(1+1/\\Delta)` on memory
simultaneously, i.e. the hyperbola :math:`(a-1)(b-1) = 1`).

The functions here generate those curves as point series for a given
parameterization :math:`(m, \\alpha, \\rho_1, \\rho_2)`, plus the
crossover analysis the paper walks through ("for
:math:`\\alpha\\rho_1 \\ge 2`, :math:`ABO_\\Delta` always has better
guarantee on makespan").
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro._validation import check_alpha, check_machine_count, check_positive_float
from repro.core.bounds import (
    abo_makespan_guarantee,
    abo_memory_guarantee,
    sabo_makespan_guarantee,
    sabo_memory_guarantee,
    zenith_impossibility_memory,
)

__all__ = ["FrontierPoint", "sabo_curve", "abo_curve", "impossibility_curve", "delta_for_makespan_target"]


@dataclass(frozen=True, slots=True)
class FrontierPoint:
    """One point of a guarantee curve: a Δ and the two guarantees it buys."""

    delta: float
    makespan: float
    memory: float


def _delta_grid(deltas: Sequence[float] | None, num: int) -> list[float]:
    if deltas is not None:
        out = [check_positive_float(d, "delta") for d in deltas]
        if not out:
            raise ValueError("deltas must be non-empty")
        return out
    # Log-spaced sweep: small Δ favors the makespan guarantee, large Δ the
    # memory guarantee; four decades cover both regimes.
    return list(np.logspace(-2, 2, num=num))


def sabo_curve(
    alpha: float,
    rho1: float,
    rho2: float,
    *,
    deltas: Sequence[float] | None = None,
    num: int = 201,
) -> list[FrontierPoint]:
    """SABO_Δ guarantee curve: ``((1+Δ)α²ρ₁, (1+1/Δ)ρ₂)`` over a Δ sweep."""
    a = check_alpha(alpha)
    pts = []
    for d in _delta_grid(deltas, num):
        pts.append(
            FrontierPoint(
                d,
                sabo_makespan_guarantee(a, rho1, d),
                sabo_memory_guarantee(rho2, d),
            )
        )
    return pts


def abo_curve(
    alpha: float,
    rho1: float,
    rho2: float,
    m: int,
    *,
    deltas: Sequence[float] | None = None,
    num: int = 201,
) -> list[FrontierPoint]:
    """ABO_Δ guarantee curve: ``(2-1/m+Δα²ρ₁, (1+m/Δ)ρ₂)`` over a Δ sweep."""
    a = check_alpha(alpha)
    check_machine_count(m)
    pts = []
    for d in _delta_grid(deltas, num):
        pts.append(
            FrontierPoint(
                d,
                abo_makespan_guarantee(a, rho1, d, m),
                abo_memory_guarantee(rho2, d, m),
            )
        )
    return pts


def impossibility_curve(
    makespan_ratios: Sequence[float],
) -> list[tuple[float, float]]:
    """The bold line of Figure 6: minimum memory ratio forced by each makespan ratio.

    Points with makespan ratio ≤ 1 map to infinity and are skipped.
    """
    out: list[tuple[float, float]] = []
    for r in makespan_ratios:
        mem = zenith_impossibility_memory(r)
        if math.isfinite(mem):
            out.append((float(r), mem))
    return out


def delta_for_makespan_target(
    target: float,
    alpha: float,
    rho1: float,
    m: int,
    *,
    algorithm: str,
) -> float | None:
    """Largest Δ whose makespan guarantee meets ``target`` (None if impossible).

    Inverts the linear-in-Δ guarantees:

    * SABO: ``(1+Δ)α²ρ₁ ≤ target  ⟺  Δ ≤ target/(α²ρ₁) − 1``;
    * ABO:  ``2−1/m+Δα²ρ₁ ≤ target  ⟺  Δ ≤ (target−2+1/m)/(α²ρ₁)``.

    Larger Δ is better for memory on both algorithms' *memory* guarantee
    shapes ((1+1/Δ) and (1+m/Δ) both decrease in Δ), so the largest
    feasible Δ gives the best memory at the makespan target — this is the
    "system designer" query from the end of Section 6.
    """
    a = check_alpha(alpha)
    check_positive_float(target, "target")
    a2r = a * a * check_positive_float(rho1, "rho1")
    if algorithm == "sabo":
        d = target / a2r - 1.0
    elif algorithm == "abo":
        d = (target - 2.0 + 1.0 / check_machine_count(m)) / a2r
    else:
        raise ValueError(f"algorithm must be 'sabo' or 'abo', got {algorithm!r}")
    # A Δ at round-off scale means the target sits exactly on the
    # asymptote — report it as unachievable rather than returning 1e-16.
    return d if d > 1e-9 else None
