"""The :math:`SBO_\\Delta` split (substrate from IPDPS 2008).

:math:`SBO_\\Delta` is the bi-objective building block the paper's
memory-aware algorithms inherit from: given a makespan schedule
:math:`\\pi_1` and a memory schedule :math:`\\pi_2`, split the tasks by
comparing their *relative* time cost against their *relative* memory cost,

.. math::

    j \\in S_2 \\iff
    \\frac{\\tilde p_j}{\\tilde C^{\\pi_1}_{max}}
    \\le \\Delta \\cdot \\frac{s_j}{Mem^{\\pi_2}_{max}},

and schedule :math:`S_2` (memory-intensive) per :math:`\\pi_2` and
:math:`S_1` (time-intensive) per :math:`\\pi_1`.  The combined schedule is
:math:`(1+\\Delta)\\rho_1`-approximate on makespan and
:math:`(1+1/\\Delta)\\rho_2`-approximate on memory in the *certain* model;
the paper's Theorem 5/6 re-derive the guarantees under uncertainty for
SABO (which uses exactly this split).

This module implements the split itself, shared by
:class:`~repro.memory.sabo.SABO` and :class:`~repro.memory.abo.ABO`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._validation import check_delta
from repro.core.model import Instance
from repro.memory.model import ReferenceSchedule, makespan_reference, memory_reference

__all__ = ["SBOSplit", "sbo_split"]


@dataclass(frozen=True)
class SBOSplit:
    """Result of the :math:`SBO_\\Delta` threshold split.

    Attributes
    ----------
    s1:
        Time-intensive task ids (scheduled for makespan).
    s2:
        Memory-intensive task ids (scheduled for memory).
    pi1, pi2:
        The two reference schedules the split compared against.
    delta:
        The threshold parameter.
    """

    s1: tuple[int, ...]
    s2: tuple[int, ...]
    pi1: ReferenceSchedule
    pi2: ReferenceSchedule
    delta: float

    def combined_assignment(self) -> list[int]:
        """The SBO assignment: π₂ machine for S₂ tasks, π₁ machine for S₁."""
        n = len(self.s1) + len(self.s2)
        assignment = [0] * n
        for j in self.s1:
            assignment[j] = self.pi1.assignment[j]
        for j in self.s2:
            assignment[j] = self.pi2.assignment[j]
        return assignment


def sbo_split(
    instance: Instance,
    delta: float,
    *,
    pi1_method: str = "lpt",
) -> SBOSplit:
    """Run the :math:`SBO_\\Delta` split on ``instance``.

    Edge cases handled explicitly:

    * all sizes zero — memory is free, every task is time-intensive
      (:math:`S_2 = \\emptyset`);
    * the threshold test with :math:`Mem^{\\pi_2}_{max} = 0` would divide
      by zero; since memory cost is identically zero the same "all
      time-intensive" answer is returned.
    """
    d = check_delta(delta)
    pi1 = makespan_reference(instance, method=pi1_method)
    pi2 = memory_reference(instance)
    s1: list[int] = []
    s2: list[int] = []
    if pi2.objective <= 0.0:
        s1 = list(range(instance.n))
        return SBOSplit(tuple(s1), (), pi1, pi2, d)
    for j, task in enumerate(instance.tasks):
        time_share = task.estimate / pi1.objective
        mem_share = task.size / pi2.objective
        if time_share <= d * mem_share:
            s2.append(j)
        else:
            s1.append(j)
    return SBOSplit(tuple(s1), tuple(s2), pi1, pi2, d)
