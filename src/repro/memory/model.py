"""Memory-aware model basics (Section 6 of the paper).

In the memory-aware model each task :math:`j` has a size :math:`s_j`; a
replica of task :math:`j` on machine :math:`i` charges :math:`s_j` to
:math:`Mem_i`, and the secondary objective is
:math:`Mem_{max} = \\max_i Mem_i`.  The paper's algorithms are built from
two reference single-objective schedules:

* :math:`\\pi_1` — a :math:`\\rho_1`-approximate schedule for the
  *estimated makespan* (LPT on the estimates by default);
* :math:`\\pi_2` — a :math:`\\rho_2`-approximate schedule for the *memory*
  objective (LPT on the sizes; memory is "a secondary makespan objective
  (except it does not suffer from uncertainty)").

This module computes those reference schedules, their objective values,
and the memory lower bounds used to measure memory-approximation ratios.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.model import Instance
from repro.schedulers.dual_approx import dual_approx_schedule
from repro.schedulers.lower_bounds import lp_bound
from repro.schedulers.lpt import lpt_assignment_by_task
from repro.schedulers.multifit import multifit_schedule

__all__ = [
    "ReferenceSchedule",
    "makespan_reference",
    "memory_reference",
    "memory_lower_bound",
    "PI1_METHODS",
]


@dataclass(frozen=True)
class ReferenceSchedule:
    """A single-objective reference schedule (π₁ or π₂).

    Attributes
    ----------
    assignment:
        Machine per task (task-id indexed).
    objective:
        The schedule's value of its own objective
        (:math:`\\tilde C^{\\pi_1}_{max}` or :math:`Mem^{\\pi_2}_{max}`).
    rho:
        The approximation guarantee of the method that produced it.
    method:
        Name of the scheduling method.
    """

    assignment: tuple[int, ...]
    objective: float
    rho: float
    method: str

    def loads(self, weights: Sequence[float], m: int) -> list[float]:
        """Per-machine totals of ``weights`` under this assignment."""
        out = [0.0] * m
        for j, i in enumerate(self.assignment):
            out[i] += float(weights[j])
        return out


def _rho_lpt(m: int) -> float:
    return 4.0 / 3.0 - 1.0 / (3.0 * m)


#: Available π₁ constructors: name -> (assignment function, rho function).
PI1_METHODS = {
    "lpt": (lambda ts, m: lpt_assignment_by_task(ts, m), _rho_lpt),
    "multifit": (
        lambda ts, m: list(multifit_schedule(ts, m).assignment),
        lambda m: 13.0 / 11.0,
    ),
    "dual_approx": (
        lambda ts, m: list(dual_approx_schedule(ts, m, eps=0.1).assignment),
        lambda m: 1.2,  # 1 + 2*eps with eps=0.1
    ),
}


def makespan_reference(instance: Instance, method: str = "lpt") -> ReferenceSchedule:
    """Build π₁: a ρ₁-approximate schedule of the *estimated* makespan."""
    try:
        assign_fn, rho_fn = PI1_METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown pi1 method {method!r}; known: {sorted(PI1_METHODS)}"
        ) from None
    assignment = assign_fn(list(instance.estimates), instance.m)
    loads = [0.0] * instance.m
    for j, i in enumerate(assignment):
        loads[i] += instance.tasks[j].estimate
    return ReferenceSchedule(tuple(assignment), max(loads), rho_fn(instance.m), method)


def memory_reference(instance: Instance) -> ReferenceSchedule:
    """Build π₂: LPT on the task sizes (ρ₂ = 4/3 − 1/(3m) on memory).

    Zero-size tasks carry no memory and are spread round-robin after the
    sized tasks are placed (they must still be *somewhere* for π₂ to be a
    complete assignment).
    """
    m = instance.m
    sized = [j for j in range(instance.n) if instance.tasks[j].size > 0.0]
    assignment = [0] * instance.n
    loads = [0.0] * m
    if sized:
        sizes = [instance.tasks[j].size for j in sized]
        sub_assign = lpt_assignment_by_task(sizes, m)
        for pos, j in enumerate(sized):
            assignment[j] = sub_assign[pos]
            loads[sub_assign[pos]] += instance.tasks[j].size
    zero = [j for j in range(instance.n) if instance.tasks[j].size == 0.0]
    for idx, j in enumerate(zero):
        assignment[j] = idx % m
    return ReferenceSchedule(tuple(assignment), max(loads), _rho_lpt(m), "lpt_on_sizes")


def memory_lower_bound(sizes: Sequence[float], m: int) -> float:
    """Lower bound on :math:`Mem^*_{max}`: ``max(sum s/m, max s)``.

    Memory is a makespan-shaped objective on the sizes, so the LP bound
    applies verbatim.  Returns 0 for all-zero sizes (memory is then free).
    """
    positive = [float(s) for s in sizes if s > 0.0]
    if not positive:
        return 0.0
    return lp_bound(positive, m)
