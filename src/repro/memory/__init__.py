"""Memory-aware model: SBO split, SABO and ABO algorithms, Pareto analysis."""

from repro.memory.abo import ABO, ABOPolicy
from repro.memory.capped import CappedReplication, min_feasible_capacity
from repro.memory.frontier import (
    FrontierPoint,
    abo_curve,
    delta_for_makespan_target,
    impossibility_curve,
    sabo_curve,
)
from repro.memory.model import (
    ReferenceSchedule,
    makespan_reference,
    memory_lower_bound,
    memory_reference,
)
from repro.memory.pareto import BiPoint, dominates, front_area, pareto_front, zenith_value
from repro.memory.sabo import SABO
from repro.memory.sbo import SBOSplit, sbo_split

__all__ = [
    "CappedReplication",
    "min_feasible_capacity",
    "sbo_split",
    "SBOSplit",
    "SABO",
    "ABO",
    "ABOPolicy",
    "ReferenceSchedule",
    "makespan_reference",
    "memory_reference",
    "memory_lower_bound",
    "BiPoint",
    "dominates",
    "pareto_front",
    "zenith_value",
    "front_area",
    "sabo_curve",
    "abo_curve",
    "impossibility_curve",
    "delta_for_makespan_target",
    "FrontierPoint",
]
