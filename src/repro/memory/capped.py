"""Memory-capped replication — the bounded-memory reading of the model.

Section 3 of the paper chooses to treat memory occupation as an
*objective* "rather than bounding the available memory".  Real machines,
of course, have hard capacities; this module implements the bounded
alternative so both readings are available:

:class:`CappedReplication`
    Given a per-machine memory capacity, start from the LPT pinning
    (which must itself fit) and spend the remaining capacity on extra
    replicas, largest-estimate tasks first, each replica going to the
    machine with the lowest estimated load among those with room.  The
    placement never exceeds the cap on any machine; Phase 2 is the
    pinned-aware dispatch shared with the budgeted strategies.

:func:`min_feasible_capacity`
    The smallest per-machine capacity for which *some* placement exists —
    the memory analogue of the makespan lower bound (LPT on sizes gives a
    ρ₂-approximate upper bound on it; the LP bound gives the lower).

Sweeping the capacity from :func:`min_feasible_capacity` to
``total_size`` traces the same memory/makespan tradeoff as SABO/ABO's Δ,
but in the units an operator actually provisions.
"""

from __future__ import annotations

from repro._validation import check_positive_float
from repro.core.model import Instance
from repro.core.placement import Placement
from repro.core.strategies.selective import PinnedAwarePolicy
from repro.core.strategy import OnlinePolicy, TwoPhaseStrategy
from repro.memory.model import memory_lower_bound, memory_reference
from repro.registry import Capabilities, Choice, Float, register_strategy
from repro.schedulers.lpt import lpt_assignment_by_task

__all__ = ["CappedReplication", "min_feasible_capacity"]


def min_feasible_capacity(instance: Instance) -> float:
    """Per-machine capacity of the best memory-balanced pinning (π₂'s value).

    Any capacity at or above this admits at least the π₂ placement; the
    true feasibility threshold lies between
    :func:`repro.memory.model.memory_lower_bound` and this value.
    """
    return memory_reference(instance).objective


@register_strategy(
    "capped",
    params=(
        Float("C", attr="capacity", gt=0.0, doc="per-machine memory capacity"),
        Choice(
            "pin",
            values=("time", "memory", "auto"),
            attr="pin_by",
            default="auto",
            omit_default=False,
            doc="what the base pinning balances",
        ),
    ),
    family="memory",
    theorem="§3 bounded-memory alternative (bench E9)",
    capabilities=Capabilities(
        supports_releases=False,
        memory_aware=True,
        replication_factor="budgeted",
        supports_batch=True,
    ),
)
class CappedReplication(TwoPhaseStrategy):
    """Replicate as much as a hard per-machine memory capacity allows.

    Parameters
    ----------
    capacity:
        Memory capacity of every machine (identical machines).  The
        strategy raises at placement time if even a memory-balanced
        pinning does not fit (capacity < π₂'s ``Mem_max``).
    pin_by:
        What the base pinning balances: ``"time"`` (LPT on estimates —
        better makespan, may need more capacity) or ``"memory"``
        (π₂ — fits whenever anything fits).  ``"auto"`` (default) tries
        time first and falls back to memory.
    """

    def __init__(self, capacity: float, *, pin_by: str = "auto") -> None:
        self.capacity = check_positive_float(capacity, "capacity")
        if pin_by not in ("time", "memory", "auto"):
            raise ValueError(f"pin_by must be 'time', 'memory' or 'auto', got {pin_by!r}")
        self.pin_by = pin_by
        self.name = f"capped[C={self.capacity:g},{pin_by}]"

    def _base_assignment(self, instance: Instance) -> list[int]:
        time_pin = lpt_assignment_by_task(list(instance.estimates), instance.m)
        if self.pin_by in ("time", "auto"):
            mem = [0.0] * instance.m
            for j, i in enumerate(time_pin):
                mem[i] += instance.tasks[j].size
            if max(mem) <= self.capacity * (1 + 1e-12):
                return time_pin
            if self.pin_by == "time":
                raise ValueError(
                    f"capacity {self.capacity} cannot hold the time-balanced "
                    f"pinning (needs {max(mem):g}); use pin_by='memory' or 'auto'"
                )
        mem_pin = list(memory_reference(instance).assignment)
        mem = [0.0] * instance.m
        for j, i in enumerate(mem_pin):
            mem[i] += instance.tasks[j].size
        if max(mem) > self.capacity * (1 + 1e-12):
            raise ValueError(
                f"capacity {self.capacity} is below the best memory-balanced "
                f"pinning ({max(mem):g}); no feasible placement "
                f"(lower bound {memory_lower_bound(instance.sizes, instance.m):g})"
            )
        return mem_pin

    def place(self, instance: Instance) -> Placement:
        base = self._base_assignment(instance)
        machine_sets = [set((base[j],)) for j in range(instance.n)]
        mem = [0.0] * instance.m
        loads = [0.0] * instance.m
        for j, i in enumerate(base):
            mem[i] += instance.tasks[j].size
            loads[i] += instance.tasks[j].estimate

        # Spend the remaining capacity on replicas, largest tasks first,
        # round-robin so the budget spreads over the heavy tasks.
        order = instance.lpt_order()
        progressed = True
        while progressed:
            progressed = False
            for j in order:
                size = instance.tasks[j].size
                candidates = [
                    i
                    for i in range(instance.m)
                    if i not in machine_sets[j]
                    and mem[i] + size <= self.capacity * (1 + 1e-12)
                ]
                if not candidates:
                    continue
                target = min(candidates, key=lambda i: (loads[i], i))
                machine_sets[j].add(target)
                mem[target] += size
                progressed = True
        return Placement(
            instance,
            tuple(frozenset(s) for s in machine_sets),
            meta={"strategy": self.name, "capacity": self.capacity},
        )

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        return PinnedAwarePolicy(instance, placement)
