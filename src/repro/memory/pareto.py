"""Bi-objective (makespan, memory) Pareto utilities.

The memory-aware evaluation compares algorithms in the plane of
``(makespan ratio, memory ratio)`` — "Zenith approximation" in the paper's
wording: an algorithm is ``[a, b]``-approximated if it is simultaneously
within ``a`` of the best makespan and ``b`` of the best memory.  These
helpers compute Pareto fronts of measured points, dominance tests, and
the hypervolume-style scalar summaries the benches report.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

__all__ = ["BiPoint", "dominates", "pareto_front", "zenith_value", "front_area"]


@dataclass(frozen=True, slots=True)
class BiPoint:
    """A point in the (makespan, memory) objective plane, with a label."""

    makespan: float
    memory: float
    label: str = ""

    def as_tuple(self) -> tuple[float, float]:
        return (self.makespan, self.memory)


def dominates(a: BiPoint, b: BiPoint, *, strict: bool = True) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` (both objectives minimized).

    With ``strict`` (default), ``a`` must be at least as good in both
    objectives and strictly better in one.
    """
    le = a.makespan <= b.makespan and a.memory <= b.memory
    if not strict:
        return le
    return le and (a.makespan < b.makespan or a.memory < b.memory)


def pareto_front(points: Iterable[BiPoint]) -> list[BiPoint]:
    """The non-dominated subset, sorted by makespan ascending.

    Duplicate coordinate pairs are collapsed to the first occurrence.
    """
    pts = sorted(points, key=lambda p: (p.makespan, p.memory))
    front: list[BiPoint] = []
    best_memory = math.inf
    seen: set[tuple[float, float]] = set()
    for p in pts:
        if p.as_tuple() in seen:
            continue
        if p.memory < best_memory:
            front.append(p)
            best_memory = p.memory
            seen.add(p.as_tuple())
    return front


def zenith_value(point: BiPoint, *, make_weight: float = 1.0, mem_weight: float = 1.0) -> float:
    """Scalarization ``max(w1 * makespan, w2 * memory)``.

    The "Zenith" (ideal-point Chebyshev) value: how far the point is from
    the utopia corner ``(0, 0)`` in the weighted max-norm.  Lower is
    better; the paper's ``[a, b]``-approximation statement says the
    algorithm's zenith value with ratios as coordinates is ``max(a, b)``.
    """
    if make_weight <= 0 or mem_weight <= 0:
        raise ValueError("weights must be > 0")
    return max(make_weight * point.makespan, mem_weight * point.memory)


def front_area(front: Sequence[BiPoint], *, ref: tuple[float, float]) -> float:
    """Hypervolume (area) dominated by ``front`` up to reference point ``ref``.

    The staircase area between the front and ``ref``; larger means a
    better front.  Points outside the reference box contribute their
    clipped part only.
    """
    rx, ry = ref
    pts = [p for p in pareto_front(front) if p.makespan < rx and p.memory < ry]
    if not pts:
        return 0.0
    # Staircase sweep over the front (makespan ascending, memory strictly
    # decreasing): each point owns the x-strip from its makespan to the
    # next point's makespan (rx for the last).
    area = 0.0
    for idx, p in enumerate(pts):
        x_next = pts[idx + 1].makespan if idx + 1 < len(pts) else rx
        width = min(x_next, rx) - p.makespan
        if width > 0:
            area += width * (ry - p.memory)
    return area
