"""The :math:`ABO_\\Delta` algorithm (Section 6.2, Theorems 7 and 8).

*Asymmetric Bi-Objective*: like SABO, Phase 1 splits the tasks with the
:math:`SBO_\\Delta` threshold, but the time-intensive set :math:`S_1` is
**replicated on every machine** instead of pinned.  Phase 2 first honors
the pinned memory-intensive tasks (:math:`S_2`, per :math:`\\pi_2`), then
dispatches the replicated :math:`S_1` tasks with Graham's online List
Scheduling as machines free up.

The replication buys load-balancing for exactly the tasks whose *time*
dominates — the ones uncertainty hurts — while charging memory only for
the tasks whose sizes are (relatively) small.

Guarantees:

* makespan (Th. 7): :math:`2 - 1/m + \\Delta\\,\\alpha^2\\rho_1`,
* memory (Th. 8): :math:`(1 + m/\\Delta)\\,\\rho_2` (the :math:`m`
  reflects charging every machine for each replicated task).

Phase-2 precedence note: the paper schedules the replicated tasks "after
all the memory intensive tasks are scheduled".  We implement the
work-conserving per-machine reading — a machine takes replicated work as
soon as *its own* pinned queue is empty — which matches the proof's use of
the List-Scheduling property on :math:`C^R_{max}` and never inserts the
idle time a global barrier would.  The strict global barrier is available
as ``barrier=True`` for the ablation bench.
"""

from __future__ import annotations

from repro._validation import check_delta
from repro.core.model import Instance
from repro.core.placement import Placement
from repro.core.strategy import OnlinePolicy, SchedulerView, TwoPhaseStrategy
from repro.memory.sbo import sbo_split
from repro.registry import Capabilities, Choice, Flag, Float, register_strategy

__all__ = ["ABO", "ABOPolicy"]


class ABOPolicy:
    """Phase-2 policy of ABO: pinned :math:`S_2` first, then LS over :math:`S_1`.

    Pinned tasks are dispatched in LPT-estimate order within each machine's
    own queue; replicated tasks in LPT-estimate order globally (any fixed
    order preserves the LS analysis; LPT order also gives the policy the
    LPT-No-Restriction behaviour on the replicated set).
    """

    def __init__(
        self,
        pinned_queues: dict[int, list[int]],
        replicated_order: list[int],
        *,
        barrier: bool = False,
    ) -> None:
        self._pinned = {i: list(q) for i, q in pinned_queues.items()}
        self._replicated = list(replicated_order)
        self._barrier = barrier

    @property
    def pinned_queues(self) -> dict[int, tuple[int, ...]]:
        """Per-machine pinned dispatch queues (read-only view).

        The batch backend (:mod:`repro.simulation.batch`) compiles these,
        together with :attr:`replicated_order`, into the phase-split
        completion sweep instead of replaying events.
        """
        return {i: tuple(q) for i, q in self._pinned.items()}

    @property
    def replicated_order(self) -> tuple[int, ...]:
        """The fixed global dispatch order of the replicated tasks."""
        return tuple(self._replicated)

    @property
    def barrier(self) -> bool:
        """Whether the strict global-barrier ablation is active."""
        return self._barrier

    def select(self, machine: int, view: SchedulerView) -> int | None:
        # Non-destructive scans keep the policy correct under task aborts
        # (machine-failure extension): an aborted task simply reappears as
        # unstarted on the next scan.
        for tid in self._pinned.get(machine, ()):
            if not view.is_started(tid):
                return tid
        if self._barrier:
            # Global barrier variant: replicated work only once *every*
            # pinned task has started.
            for q in self._pinned.values():
                if any(not view.is_started(t) for t in q):
                    return None
        for tid in self._replicated:
            if not view.is_started(tid):
                return tid
        return None


@register_strategy(
    "abo",
    params=(
        Float("delta", gt=0.0, doc="threshold Δ trading makespan vs memory"),
        Flag("barrier", doc="strict global-barrier Phase 2 (ablation)"),
        Choice(
            "pi1",
            values=("lpt", "multifit", "dual_approx"),
            attr="pi1_method",
            default="lpt",
            bare=False,
            doc="which ρ₁-approximate scheduler builds π₁",
        ),
    ),
    family="memory",
    theorem="Theorems 7–8",
    capabilities=Capabilities(
        supports_releases=False,
        memory_aware=True,
        replication_factor="selective",
        supports_batch=True,
    ),
)
class ABO(TwoPhaseStrategy):
    """Asymmetric bi-objective strategy with replication of time-intensive tasks.

    Parameters
    ----------
    delta:
        Threshold Δ > 0.
    pi1_method:
        ρ₁-approximate scheduler used to build π₁ (affects only the split
        threshold — the replicated tasks are *dispatched* by online LS).
    barrier:
        Use the strict global-barrier reading of Phase 2 (ablation only).
    """

    def __init__(
        self, delta: float, *, pi1_method: str = "lpt", barrier: bool = False
    ) -> None:
        self.delta = check_delta(delta)
        self.pi1_method = pi1_method
        self.barrier = barrier
        suffix = ",barrier" if barrier else ""
        self.name = f"abo[delta={self.delta:g}{suffix}]"

    def place(self, instance: Instance) -> Placement:
        split = sbo_split(instance, self.delta, pi1_method=self.pi1_method)
        all_machines = frozenset(range(instance.m))
        sets: list[frozenset[int]] = [frozenset()] * instance.n
        for j in split.s1:
            sets[j] = all_machines
        for j in split.s2:
            sets[j] = frozenset((split.pi2.assignment[j],))
        return Placement(
            instance,
            tuple(sets),
            meta={
                "strategy": self.name,
                "s1": split.s1,
                "s2": split.s2,
                "rho1": split.pi1.rho,
                "rho2": split.pi2.rho,
                "pi1_objective": split.pi1.objective,
                "pi2_objective": split.pi2.objective,
            },
        )

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        s1 = placement.meta["s1"]
        s2 = placement.meta["s2"]
        lpt_rank = {tid: pos for pos, tid in enumerate(instance.lpt_order())}
        pinned: dict[int, list[int]] = {}
        for j in s2:
            machine = next(iter(placement.machines_for(j)))
            pinned.setdefault(machine, []).append(j)
        for q in pinned.values():
            q.sort(key=lambda j: lpt_rank[j])
        replicated = sorted(s1, key=lambda j: lpt_rank[j])
        return ABOPolicy(pinned, replicated, barrier=self.barrier)

    # -- guarantees -----------------------------------------------------------------
    def makespan_guarantee(self, instance: Instance, *, rho1: float | None = None) -> float:
        """Theorem 7: :math:`2 - 1/m + \\Delta\\alpha^2\\rho_1` at this Δ."""
        from repro.core.bounds import abo_makespan_guarantee
        from repro.memory.model import makespan_reference

        r1 = rho1 if rho1 is not None else makespan_reference(instance, self.pi1_method).rho
        return abo_makespan_guarantee(instance.alpha, r1, self.delta, instance.m)

    def memory_guarantee(self, instance: Instance, *, rho2: float | None = None) -> float:
        """Theorem 8: :math:`(1 + m/\\Delta)\\rho_2` at this Δ."""
        from repro.core.bounds import abo_memory_guarantee
        from repro.memory.model import memory_reference

        r2 = rho2 if rho2 is not None else memory_reference(instance).rho
        return abo_memory_guarantee(r2, self.delta, instance.m)
