"""The :math:`SABO_\\Delta` algorithm (Section 6.1, Theorems 5 and 6).

*Static Asymmetric Bi-Objective*: Phase 1 runs the :math:`SBO_\\Delta`
split on the estimates and pins every task to the machine its side's
reference schedule chose — memory-intensive tasks (:math:`S_2`) to their
:math:`\\pi_2` machine, time-intensive tasks (:math:`S_1`) to their
:math:`\\pi_1` machine.  No replication: :math:`|M_j| = 1` for all tasks.
Phase 2 has no decisions left (like LPT-No Choice).

Guarantees under uncertainty:

* makespan (Th. 5): :math:`(1+\\Delta)\\,\\alpha^2 \\rho_1`,
* memory (Th. 6): :math:`(1+1/\\Delta)\\,\\rho_2` — memory does not
  depend on the realization at all, so this is the certain-model bound.
"""

from __future__ import annotations

from repro._validation import check_delta
from repro.core.model import Instance
from repro.core.placement import Placement, single_machine_placement
from repro.core.strategy import FixedOrderPolicy, OnlinePolicy, TwoPhaseStrategy
from repro.memory.sbo import sbo_split
from repro.registry import Capabilities, Choice, Float, register_strategy

__all__ = ["SABO"]


@register_strategy(
    "sabo",
    params=(
        Float("delta", gt=0.0, doc="threshold Δ trading makespan vs memory"),
        Choice(
            "pi1",
            values=("lpt", "multifit", "dual_approx"),
            attr="pi1_method",
            default="lpt",
            bare=False,
            doc="which ρ₁-approximate scheduler builds π₁",
        ),
    ),
    family="memory",
    theorem="Theorems 5–6",
    capabilities=Capabilities(
        memory_aware=True, replication_factor="none", supports_batch=True
    ),
)
class SABO(TwoPhaseStrategy):
    """Static asymmetric bi-objective strategy.

    Parameters
    ----------
    delta:
        Threshold Δ > 0 trading makespan guarantee against memory
        guarantee.
    pi1_method:
        Which ρ₁-approximate makespan scheduler builds π₁
        (see :data:`repro.memory.model.PI1_METHODS`).
    """

    def __init__(self, delta: float, *, pi1_method: str = "lpt") -> None:
        self.delta = check_delta(delta)
        self.pi1_method = pi1_method
        self.name = f"sabo[delta={self.delta:g}]"

    def place(self, instance: Instance) -> Placement:
        split = sbo_split(instance, self.delta, pi1_method=self.pi1_method)
        assignment = split.combined_assignment()
        return single_machine_placement(
            instance,
            assignment,
            meta={
                "strategy": self.name,
                "s1": split.s1,
                "s2": split.s2,
                "rho1": split.pi1.rho,
                "rho2": split.pi2.rho,
                "pi1_objective": split.pi1.objective,
                "pi2_objective": split.pi2.objective,
            },
        )

    def make_policy(self, instance: Instance, placement: Placement) -> OnlinePolicy:
        # Static: every task pinned, order irrelevant to the makespan.
        return FixedOrderPolicy(instance.lpt_order())

    # -- guarantees ------------------------------------------------------------
    def makespan_guarantee(self, instance: Instance, *, rho1: float | None = None) -> float:
        """Theorem 5: :math:`(1+\\Delta)\\alpha^2\\rho_1` at this Δ."""
        from repro.core.bounds import sabo_makespan_guarantee
        from repro.memory.model import makespan_reference

        r1 = rho1 if rho1 is not None else makespan_reference(instance, self.pi1_method).rho
        return sabo_makespan_guarantee(instance.alpha, r1, self.delta)

    def memory_guarantee(self, instance: Instance, *, rho2: float | None = None) -> float:
        """Theorem 6: :math:`(1+1/\\Delta)\\rho_2` at this Δ."""
        from repro.core.bounds import sabo_memory_guarantee
        from repro.memory.model import memory_reference

        r2 = rho2 if rho2 is not None else memory_reference(instance).rho
        return sabo_memory_guarantee(r2, self.delta)
