"""Report builders for every reproduced table and figure.

One function per paper artifact; each returns a printable string and (for
the data-bearing figures) writes the underlying series to
``results/*.csv``.  The CLI subcommands and the ``benchmarks/`` suite both
call these, so the artifact is produced identically everywhere.
"""

from __future__ import annotations

import functools
from collections.abc import Callable, Sequence
from typing import TypeVar

from repro.analysis.ascii_plot import Series, render_plot
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.svg_plot import SvgSeries, render_svg_chart, render_svg_gantt
from repro.analysis.ratios import run_strategy
from repro.analysis.tables import format_table
from repro.core.adversary import theorem1_instance, theorem1_realization
from repro.core.bounds import (
    abo_makespan_guarantee,
    abo_memory_guarantee,
    divisors,
    guarantee_table_row,
    lb_no_replication,
    sabo_makespan_guarantee,
    sabo_memory_guarantee,
    ub_graham_ls,
    ub_lpt_no_choice,
    ub_lpt_no_restriction,
    ub_lpt_no_restriction_raw,
    ub_ls_group,
)
from repro.core.strategies import LPTNoChoice, LSGroup
from repro.core.tradeoff import ratio_replication_series, tradeoff_findings
from repro.exact.optimal import optimal_makespan
from repro.memory import ABO, SABO
from repro.memory.frontier import abo_curve, impossibility_curve, sabo_curve
from repro.obs.tracer import get_tracer
from repro.simulation.gantt import render_gantt
from repro.uncertainty.realization import truthful_realization
from repro.workloads.generators import staircase_instance
from repro.workloads.memory_workloads import planted_two_class

__all__ = [
    "table1_report",
    "table2_report",
    "fig1_report",
    "fig2_report",
    "fig3_report",
    "fig3_series_rows",
    "fig4_report",
    "fig5_report",
    "fig6_report",
    "fig6_series_rows",
]

_F = TypeVar("_F", bound=Callable[..., str])


def _traced_report(name: str) -> Callable[[_F], _F]:
    """Wrap a report builder in a ``report.<name>`` span + timer.

    When tracing is off the wrapper is a single attribute check, so the
    artifact pipeline's cost profile is unchanged.
    """

    def deco(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> str:
            tracer = get_tracer()
            if not tracer.enabled:
                return fn(*args, **kwargs)
            attrs = {
                k: v
                for k, v in kwargs.items()
                if isinstance(v, (int, float, str, bool))
            }
            with tracer.span(f"report.{name}", **attrs):
                tracer.count("report.artifacts")
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

@_traced_report("table1")
def table1_report(
    *,
    alphas: Sequence[float] = (1.1, 1.5, 2.0),
    m: int = 210,
    ks: Sequence[int] = (2, 3, 7, 30),
) -> str:
    """Table 1: the guarantee summary, symbolic and evaluated.

    The paper's table lists closed forms; we print them plus their value
    at the paper's Figure-3 parameterization (m = 210, the three α).
    """
    lines = [
        "Table 1 — replication bound model: approximation/competitive ratios",
        "",
        "| M_j |    result",
        "-" * 72,
        "|M_j| = 1    LPT-No Choice       <= 2a^2m/(2a^2+m-1)        [Th. 2]",
        "|M_j| = 1    any algorithm       >= a^2m/(a^2+m-1)          [Th. 1]",
        "|M_j| = m    LPT-No Restriction  <= 1+(m-1)/m * a^2/2       [Th. 3]",
        "|M_j| = m    List Scheduling     <= 2-1/m                   [Graham]",
        "|M_j| = m/k  LS-Group            <= ka^2/(a^2+k-1)*(1+(k-1)/m)+(m-k)/m  [Th. 4]",
        "",
        f"Evaluated at m = {m}:",
        "",
    ]
    rows = []
    for alpha in alphas:
        row: dict[str, object] = {"alpha": alpha}
        base = guarantee_table_row(alpha, m, ks=[])
        row["LB (Th.1)"] = base["lower_bound_no_replication"]
        row["LPT-No Choice"] = base["lpt_no_choice"]
        row["LPT-No Restr."] = base["lpt_no_restriction"]
        row["Graham LS"] = base["graham_ls"]
        for k in ks:
            row[f"LS-Group k={k}"] = ub_ls_group(alpha, m, k)
        rows.append(row)
    lines.append(format_table(rows))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------

@_traced_report("table2")
def table2_report(
    *,
    m: int = 5,
    alphas_sq: Sequence[float] = (2.0, 3.0),
    rhos: Sequence[float] = (1.0, 4.0 / 3.0),
    deltas: Sequence[float] = (0.5, 1.0, 2.0),
) -> str:
    """Table 2: SABO/ABO guarantees, symbolic and evaluated.

    Evaluated at the paper's Figure-6 parameterizations (m = 5, α² ∈ {2,3},
    ρ₁ = ρ₂ ∈ {1, 4/3}) for a few representative Δ.
    """
    lines = [
        "Table 2 — memory aware model: [makespan, memory] guarantees",
        "",
        "SABO_D : [(1+D) a^2 rho1,        (1+1/D) rho2]   [Th. 5, Th. 6]",
        "ABO_D  : [2-1/m + D a^2 rho1,    (1+m/D) rho2]   [Th. 7, Th. 8]",
        "",
        f"Evaluated at m = {m}:",
        "",
    ]
    rows = []
    for a2 in alphas_sq:
        alpha = a2**0.5
        for rho in rhos:
            for delta in deltas:
                rows.append(
                    {
                        "alpha^2": a2,
                        "rho1=rho2": rho,
                        "Delta": delta,
                        "SABO makespan": sabo_makespan_guarantee(alpha, rho, delta),
                        "SABO memory": sabo_memory_guarantee(rho, delta),
                        "ABO makespan": abo_makespan_guarantee(alpha, rho, delta, m),
                        "ABO memory": abo_memory_guarantee(rho, delta, m),
                    }
                )
    lines.append(format_table(rows))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

@_traced_report("fig1")
def fig1_report(*, lam: int = 3, m: int = 6, alpha: float = 1.5) -> str:
    """Figure 1: the Theorem-1 adversary at (λ, m) = (3, 6).

    Reproduces both panels: the online solution (the algorithm's
    no-replication placement hit by the adversary) and the offline optimal
    rearrangement, plus the ratio algebra of the proof.
    """
    instance = theorem1_instance(lam, m, alpha)
    strategy = LPTNoChoice()
    placement = strategy.place(instance)
    adversarial = theorem1_realization(placement)
    outcome = run_strategy(strategy, instance, adversarial)
    opt = optimal_makespan(adversarial.actuals, m, exact_limit=lam * m)

    (results_dir() / "fig1_adversary.svg").write_text(
        render_svg_gantt(
            outcome.trace, m, title=f"Theorem-1 adversary (lambda={lam}, m={m}, alpha={alpha})"
        )
    )
    lb = lb_no_replication(alpha, m)
    lines = [
        f"Figure 1 — Theorem-1 adversary: lambda={lam}, m={m}, alpha={alpha}",
        "",
        f"{instance.n} unit-estimate tasks placed by a no-replication algorithm;",
        "the adversary inflates every task of the most loaded machine by alpha",
        "and deflates the rest by 1/alpha.",
        "",
        "Online solution (adversary applied to the algorithm's placement):",
        render_gantt(outcome.trace, m, width=60, show_ids=False),
        "",
        f"online makespan C_max        = {outcome.makespan:.6g}",
        f"offline optimum C*_max       = {opt.value:.6g}  ({opt.method})",
        f"measured ratio               = {outcome.makespan / opt.value:.4f}",
        f"Theorem-1 bound (lambda->inf) = {lb:.4f}",
        "",
        "The measured ratio at finite lambda is below the asymptotic bound, and",
        "bench E2 shows it converging to the bound as lambda grows.",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------

@_traced_report("fig2")
def fig2_report(*, m: int = 6, k: int = 2, n: int = 12, alpha: float = 1.5) -> str:
    """Figure 2: the two phases of group replication at (m, k) = (6, 2)."""
    instance = staircase_instance(n, m, alpha)
    strategy = LSGroup(k)
    placement = strategy.place(instance)
    group_of_task = placement.meta["group_of_task"]
    groups = placement.meta["groups"]

    lines = [
        f"Figure 2 — replication in groups: m={m}, k={k}, n={n} tasks",
        "",
        "Phase 1 (offline): each task's data replicated on all machines of one group.",
    ]
    for gi, machines in enumerate(groups):
        tasks = [j for j in range(instance.n) if group_of_task[j] == gi]
        est = sum(instance.tasks[j].estimate for j in tasks)
        lines.append(
            f"  group G{gi + 1}: machines {list(machines)} <- tasks {tasks} "
            f"(estimated load {est:g})"
        )
    realization = truthful_realization(instance)
    outcome = run_strategy(strategy, instance, realization)
    (results_dir() / "fig2_group_example.svg").write_text(
        render_svg_gantt(outcome.trace, m, title=f"Group replication (m={m}, k={k})")
    )
    lines += [
        "",
        "Phase 2 (online): each task scheduled within its group by List Scheduling",
        "(shown under the truthful realization):",
        render_gantt(outcome.trace, m, width=60),
        "",
        f"replication per task |M_j| = {placement.max_replication()} (= m/k)",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------

def fig3_series_rows(alpha: float, m: int) -> list[dict[str, object]]:
    """The Figure-3 data as flat rows (one per plotted point)."""
    series = ratio_replication_series(alpha, m)
    rows: list[dict[str, object]] = []
    for name, points in series.items():
        for p in points:
            rows.append(
                {
                    "alpha": alpha,
                    "m": m,
                    "strategy": name,
                    "k": p.k if p.k is not None else "",
                    "replication": p.replication,
                    "ratio": p.ratio,
                }
            )
    return rows


@_traced_report("fig3")
def fig3_report(*, m: int = 210, alphas: Sequence[float] = (1.1, 1.5, 2.0)) -> str:
    """Figure 3: guarantee vs replication for each α, plus the paper's findings."""
    chunks: list[str] = []
    all_rows: list[dict[str, object]] = []
    for alpha in alphas:
        series = ratio_replication_series(alpha, m)
        group = series["ls_group"]
        plot = render_plot(
            [
                Series(
                    [p.replication for p in group],
                    [p.ratio for p in group],
                    label="LS-Group (k over divisors)",
                    glyph="o",
                ),
                Series([1], [series["lpt_no_choice"][0].ratio], label="LPT-No Choice", glyph="C"),
                Series(
                    [m],
                    [series["lpt_no_restriction"][0].ratio],
                    label="LPT-No Restriction",
                    glyph="R",
                ),
                Series([1], [series["lower_bound"][0].ratio], label="LB (Th.1)", glyph="L"),
            ],
            title=f"Figure 3 — m={m}, alpha={alpha}",
            x_label="replication |M_j|",
            y_label="guaranteed ratio",
            x_log=True,
        )
        findings = tradeoff_findings(alpha, m)
        chunk = [
            plot,
            "",
            f"  findings at alpha={alpha}:",
            f"    guarantee gap LPT-No Choice vs lower bound : {findings['gap_lb_vs_no_choice']:.4f}",
            f"    LS-Group(k=1) minus LPT-No Restriction     : {findings['full_vs_one_group']:.4f}",
            f"    min replicas for LS-Group to beat No Choice: {findings['min_replicas_to_beat_no_choice']}",
        ]
        if findings["ratio_at_replication_3"] is not None:
            chunk.append(
                f"    LS-Group ratio at replication=3            : "
                f"{findings['ratio_at_replication_3']:.4f}"
            )
        chunks.append("\n".join(chunk))
        all_rows.extend(fig3_series_rows(alpha, m))
        svg = render_svg_chart(
            [
                SvgSeries(
                    [p.replication for p in group],
                    [p.ratio for p in group],
                    label="LS-Group (k over divisors)",
                ),
                SvgSeries(
                    [1],
                    [series["lpt_no_choice"][0].ratio],
                    label="LPT-No Choice",
                    mode="marker",
                ),
                SvgSeries(
                    [m],
                    [series["lpt_no_restriction"][0].ratio],
                    label="LPT-No Restriction",
                    mode="marker",
                ),
                SvgSeries(
                    [1],
                    [series["lower_bound"][0].ratio],
                    label="lower bound (Th.1)",
                    mode="marker",
                ),
            ],
            title=f"Figure 3 — m={m}, alpha={alpha}",
            x_label="replication |M_j|",
            y_label="guaranteed ratio",
            x_log=True,
        )
        (results_dir() / f"fig3_alpha_{alpha:g}.svg").write_text(svg)
    path = write_csv(results_dir() / "fig3_ratio_replication.csv", all_rows)
    chunks.append(f"[data: {path}; SVG panels alongside]")
    return "\n\n".join(chunks)


# ---------------------------------------------------------------------------
# Figures 4 and 5
# ---------------------------------------------------------------------------

def _memory_example_instance(m: int = 4, alpha: float = 1.4):
    return planted_two_class(6, 10, m, alpha, time_heavy=8.0, time_light=1.5, size_heavy=6.0, size_light=0.5)


@_traced_report("fig4")
def fig4_report(*, delta: float = 1.0) -> str:
    """Figure 4: a SABO_Δ two-phase schedule on a two-class instance."""
    instance = _memory_example_instance()
    strategy = SABO(delta)
    placement = strategy.place(instance)
    outcome = run_strategy(strategy, instance, truthful_realization(instance))
    (results_dir() / "fig4_sabo_schedule.svg").write_text(
        render_svg_gantt(outcome.trace, instance.m, title=f"SABO_D schedule (Delta={delta})")
    )
    s1, s2 = placement.meta["s1"], placement.meta["s2"]
    lines = [
        f"Figure 4 — SABO_D schedule example (Delta={delta}, m={instance.m})",
        "",
        f"S1 (time-intensive, scheduled per pi_1): tasks {list(s1)}",
        f"S2 (memory-intensive, scheduled per pi_2): tasks {list(s2)}",
        "",
        render_gantt(outcome.trace, instance.m, width=60),
        "",
        f"makespan  = {outcome.makespan:.6g}",
        f"Mem_max   = {placement.memory_max():.6g} (no replication: |M_j| = 1 for all)",
        f"guarantees: makespan <= {strategy.makespan_guarantee(instance):.4g} x OPT, "
        f"memory <= {strategy.memory_guarantee(instance):.4g} x OPT",
    ]
    return "\n".join(lines)


@_traced_report("fig5")
def fig5_report(*, delta: float = 1.0) -> str:
    """Figure 5: an ABO_Δ schedule — pinned memory tasks, replicated time tasks."""
    instance = _memory_example_instance()
    strategy = ABO(delta)
    placement = strategy.place(instance)
    outcome = run_strategy(strategy, instance, truthful_realization(instance))
    (results_dir() / "fig5_abo_schedule.svg").write_text(
        render_svg_gantt(outcome.trace, instance.m, title=f"ABO_D schedule (Delta={delta})")
    )
    s1, s2 = placement.meta["s1"], placement.meta["s2"]
    lines = [
        f"Figure 5 — ABO_D schedule example (Delta={delta}, m={instance.m})",
        "",
        f"S1 (time-intensive, replicated everywhere, dispatched by LS): tasks {list(s1)}",
        f"S2 (memory-intensive, pinned per pi_2, run first): tasks {list(s2)}",
        "",
        render_gantt(outcome.trace, instance.m, width=60),
        "",
        f"makespan  = {outcome.makespan:.6g}",
        f"Mem_max   = {placement.memory_max():.6g} "
        f"(each S1 task charged on all {instance.m} machines)",
        f"guarantees: makespan <= {strategy.makespan_guarantee(instance):.4g} x OPT, "
        f"memory <= {strategy.memory_guarantee(instance):.4g} x OPT",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------

_FIG6_PANELS = (
    # (alpha^2, rho) — the three panels of the paper's Figure 6, all m=5.
    (2.0, 4.0 / 3.0),
    (3.0, 1.0),
    (3.0, 4.0 / 3.0),
)


def fig6_series_rows(m: int = 5) -> list[dict[str, object]]:
    """Figure-6 curves as flat CSV rows."""
    rows: list[dict[str, object]] = []
    for a2, rho in _FIG6_PANELS:
        alpha = a2**0.5
        for p in sabo_curve(alpha, rho, rho, num=61):
            rows.append(
                {
                    "panel": f"a2={a2},rho={rho:.4g}",
                    "algorithm": "sabo",
                    "delta": p.delta,
                    "makespan_guarantee": p.makespan,
                    "memory_guarantee": p.memory,
                }
            )
        for p in abo_curve(alpha, rho, rho, m, num=61):
            rows.append(
                {
                    "panel": f"a2={a2},rho={rho:.4g}",
                    "algorithm": "abo",
                    "delta": p.delta,
                    "makespan_guarantee": p.makespan,
                    "memory_guarantee": p.memory,
                }
            )
    return rows


@_traced_report("fig6")
def fig6_report(*, m: int = 5, mem_cap: float = 40.0, make_cap: float = 25.0) -> str:
    """Figure 6: SABO vs ABO guarantee curves and the impossibility frontier."""
    chunks: list[str] = []
    for a2, rho in _FIG6_PANELS:
        alpha = a2**0.5
        sabo_pts = [
            p for p in sabo_curve(alpha, rho, rho, num=121) if p.memory <= mem_cap and p.makespan <= make_cap
        ]
        abo_pts = [
            p for p in abo_curve(alpha, rho, rho, m, num=121) if p.memory <= mem_cap and p.makespan <= make_cap
        ]
        xs = [x / 20.0 for x in range(21, int(make_cap * 20))]
        imp = [(x, y) for x, y in impossibility_curve(xs) if y <= mem_cap]
        plot = render_plot(
            [
                Series([p.makespan for p in sabo_pts], [p.memory for p in sabo_pts], label="SABO_D", glyph="s"),
                Series([p.makespan for p in abo_pts], [p.memory for p in abo_pts], label="ABO_D", glyph="a"),
                Series([x for x, _ in imp], [y for _, y in imp], label="impossible below", glyph="."),
            ],
            title=f"Figure 6 — m={m}, alpha^2={a2}, rho1=rho2={rho:.4g}",
            x_label="makespan guarantee",
            y_label="memory guarantee",
        )
        cross = "ABO" if alpha * rho >= 2.0 else "depends on Delta"
        chunks.append(plot + f"\n  alpha*rho1 = {alpha * rho:.3f} -> better makespan guarantee: {cross}")
        svg = render_svg_chart(
            [
                SvgSeries(
                    [p.makespan for p in sabo_pts],
                    [p.memory for p in sabo_pts],
                    label="SABO_D",
                    mode="line",
                ),
                SvgSeries(
                    [p.makespan for p in abo_pts],
                    [p.memory for p in abo_pts],
                    label="ABO_D",
                    mode="line",
                ),
                SvgSeries(
                    [x for x, _ in imp],
                    [y for _, y in imp],
                    label="impossibility frontier",
                    mode="line",
                    color="#888888",
                ),
            ],
            title=f"Figure 6 — m={m}, alpha^2={a2:g}, rho={rho:.4g}",
            x_label="makespan guarantee",
            y_label="memory guarantee",
        )
        (results_dir() / f"fig6_a2_{a2:g}_rho_{rho:.3g}.svg").write_text(svg)
    path = write_csv(results_dir() / "fig6_memory_makespan.csv", fig6_series_rows(m))
    chunks.append(f"[data: {path}; SVG panels alongside]")
    return "\n\n".join(chunks)
