"""Calibrating the uncertainty factor α from historical data.

Serves the operator-workflow side of the reproduction: the
``examples/calibrating_alpha.py`` scenario and the capacity-planning
benches that need a defensible α before any guarantee applies.

The paper assumes α is "a quantity known to the scheduler" and points at
machine-learning / analytic-model sources for it.  In practice α is
*estimated* from historical (estimate, actual) pairs; this module does
that estimation properly:

``fit_alpha``
    The smallest α covering a given fraction of observed miss factors
    (``coverage=1.0`` — the tightest sound band; ``coverage=0.95`` — a
    pragmatic band that treats the top 5% as outliers).
``calibration_report``
    Coverage curve (α vs fraction of history explained) plus the
    guarantee each candidate α buys, so an operator can see the price of
    insisting on full coverage.
``alpha_from_residual_model``
    Given a predicted-vs-actual log-residual standard deviation (how
    runtime-prediction papers usually report accuracy), the α that covers
    ``z`` standard deviations.

All of it is plain order statistics — deliberately boring, because a
mis-calibrated α silently voids every guarantee in the paper.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro._validation import check_fraction, check_positive_float
from repro.core.bounds import ub_lpt_no_choice, ub_lpt_no_restriction

__all__ = ["fit_alpha", "calibration_report", "alpha_from_residual_model"]


def _miss_factors(estimates: Sequence[float], actuals: Sequence[float]) -> np.ndarray:
    if len(estimates) != len(actuals):
        raise ValueError(
            f"estimates and actuals must pair up ({len(estimates)} != {len(actuals)})"
        )
    if len(estimates) == 0:
        raise ValueError("need at least one (estimate, actual) pair")
    est = np.asarray([check_positive_float(e, "estimate") for e in estimates])
    act = np.asarray([check_positive_float(a, "actual") for a in actuals])
    return np.maximum(act / est, est / act)


def fit_alpha(
    estimates: Sequence[float],
    actuals: Sequence[float],
    *,
    coverage: float = 1.0,
) -> float:
    """Smallest α whose band covers ``coverage`` of the observed misses.

    ``coverage=1.0`` returns the max observed miss factor (sound for the
    history; the future is the user's problem); lower coverages return the
    corresponding upper quantile.
    """
    check_fraction(coverage, "coverage")
    misses = _miss_factors(estimates, actuals)
    if coverage >= 1.0:
        return float(misses.max())
    return float(np.quantile(misses, coverage, method="higher"))


def calibration_report(
    estimates: Sequence[float],
    actuals: Sequence[float],
    m: int,
    *,
    coverages: Sequence[float] = (0.5, 0.9, 0.95, 0.99, 1.0),
) -> list[dict[str, float]]:
    """Coverage curve with the guarantees each candidate α buys.

    One row per coverage level: the fitted α, the fraction of history its
    band explains, and the Theorem-2 / Theorem-3 guarantees at that α —
    making the "tight band vs honest band" tradeoff visible.
    """
    misses = _miss_factors(estimates, actuals)
    rows = []
    for cov in coverages:
        alpha = fit_alpha(estimates, actuals, coverage=cov)
        explained = float(np.mean(misses <= alpha * (1 + 1e-12)))
        rows.append(
            {
                "coverage_target": float(cov),
                "alpha": alpha,
                "history_explained": explained,
                "guarantee_no_replication": ub_lpt_no_choice(max(alpha, 1.0), m),
                "guarantee_full_replication": ub_lpt_no_restriction(max(alpha, 1.0), m),
            }
        )
    return rows


def alpha_from_residual_model(sigma_log: float, *, z: float = 2.0) -> float:
    """α covering ``z`` standard deviations of a lognormal residual model.

    Runtime-prediction work typically reports the standard deviation of
    ``log(actual/predicted)``; the band ``[p̃/α, α·p̃]`` with
    ``α = exp(z·σ)`` covers ``z`` sigmas of that residual (≈95% of
    misses for z=2 under normality).
    """
    check_positive_float(sigma_log, "sigma_log")
    check_positive_float(z, "z")
    return math.exp(z * sigma_log)
