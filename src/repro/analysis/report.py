"""Reproduction report pipeline over the content-addressed artifact store.

``repro report`` no longer scrapes whatever happens to sit under
``results/``: it renders ``REPORT.md`` — and re-materializes every
table, CSV series, and SVG figure — purely from fingerprinted CURATED
artifacts in the store (:mod:`repro.store`).  Three consequences:

* **Byte-reproducible.**  The report header carries an *input
  fingerprint* (SHA-256 over the content IDs of its deterministic
  inputs) instead of a wall-clock stamp; identical inputs render an
  identical report, so a second ``repro report`` writes nothing.
* **Self-verifying.**  Every section lists its files with their SHA-256,
  making the committed REPORT.md a lockfile for ``results/``:
  :func:`check_report` re-renders from the store and byte-compares
  everything against the working tree (CI's clobber guard).
* **Refuses guesswork.**  A registered deterministic artifact that
  exists on disk but cannot be resolved from the store aborts the
  render — ``repro report --adopt`` (:func:`adopt_results`) blesses a
  committed tree into the store first (the fresh-clone bootstrap).

Volatile artifacts (wall-clock timings, SLO latencies, the perf
trajectory) are listed from the registry but excluded from the
fingerprint and the byte comparison; see docs/artifacts.md.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.analysis.csvio import results_dir
from repro.store.artifact import Artifact, Stage
from repro.store.canonical import content_hash
from repro.store.publish import SPECS, adopt_results, artifact_files, publish_curated, spec_for
from repro.store.refs import ArtifactRef, code_ref
from repro.store.store import ArtifactStore

__all__ = [
    "generate_report",
    "check_report",
    "render_report",
    "report_fingerprint",
    "artifact_inventory",
    "UnresolvableArtifactError",
]

#: Report files the store does not manage (sidecars, the report itself).
_UNMANAGED_SUFFIXES = (".manifest.json",)


class UnresolvableArtifactError(LookupError):
    """A registered artifact exists on disk but cannot be resolved from the store."""


def artifact_inventory(base: str | Path | None = None) -> dict[str, dict[str, Path]]:
    """Map artifact stem -> available files (``txt`` and/or ``csv``)."""
    d = results_dir(base)
    inventory: dict[str, dict[str, Path]] = {}
    for path in sorted(d.glob("*.txt")):
        if path.stem == "REPORT":
            continue
        inventory.setdefault(path.stem, {})["txt"] = path
    for path in sorted(d.glob("*.csv")):
        inventory.setdefault(path.stem, {})["csv"] = path
    return inventory


def _csv_summary(name: str, data: bytes, *, max_preview: int = 3) -> str:
    """Rows × columns summary with a short preview, from stored bytes."""
    rows = list(csv.DictReader(io.StringIO(data.decode("utf-8"))))
    if not rows:
        return f"`{name}`: empty"
    cols = list(rows[0].keys())
    lines = [
        f"`{name}`: {len(rows)} rows × {len(cols)} columns "
        f"({', '.join(cols[:8])}{', ...' if len(cols) > 8 else ''})"
    ]
    for r in rows[:max_preview]:
        cells = ", ".join(f"{k}={v}" for k, v in list(r.items())[:6])
        lines.append(f"  - {cells}")
    if len(rows) > max_preview:
        lines.append(f"  - ... {len(rows) - max_preview} more rows")
    return "\n".join(lines)


def _resolved(store: ArtifactStore) -> list[Artifact]:
    """CURATED artifacts in registry order, then unknown names alphabetically."""
    present = store.names(Stage.CURATED)
    ordered = [spec.name for spec in SPECS if spec.name in present]
    ordered += sorted(name for name in present if name not in {s.name for s in SPECS})
    artifacts = []
    for name in ordered:
        artifact = store.get(Stage.CURATED, name)
        if artifact is not None:
            artifacts.append(artifact)
    return artifacts


def report_fingerprint(artifacts: list[Artifact]) -> str:
    """SHA-256 over the deterministic inputs' names and content IDs."""
    deterministic = [a for a in artifacts if not spec_for(a.name).volatile]
    return content_hash(
        {"inputs": [{"name": a.name, "artifact_id": a.artifact_id} for a in deterministic]}
    )


def _unregistered(store_files: set[str], base: str | Path | None) -> list[str]:
    """On-disk results files no curated artifact claims (stale droppings)."""
    strays = []
    for path in sorted(results_dir(base).glob("*")):
        if not path.is_file() or path.name == "REPORT.md":
            continue
        if path.name.endswith(_UNMANAGED_SUFFIXES):
            continue
        if path.name not in store_files:
            strays.append(path.name)
    return strays


def render_report(
    store: ArtifactStore, base: str | Path | None = None
) -> tuple[str, dict[str, bytes]]:
    """Render REPORT.md text plus the deterministic files to materialize.

    Returns ``(markdown, files)`` where ``files`` maps results/ file
    names to the exact bytes the store holds for them.  Raises
    :class:`UnresolvableArtifactError` when a registered deterministic
    artifact is on disk but absent from (or corrupt in) the store, and
    ``FileNotFoundError`` when the store has nothing to render at all.
    """
    artifacts = _resolved(store)
    by_name = {a.name: a for a in artifacts}

    unresolvable = []
    for spec in SPECS:
        if spec.volatile or spec.name in by_name:
            continue
        if artifact_files(spec, base):
            unresolvable.append(spec.name)
    if unresolvable:
        raise UnresolvableArtifactError(
            "registered artifacts exist under results/ but cannot be resolved "
            f"from the artifact store: {', '.join(unresolvable)}; run their "
            "benches or bless the committed tree with `repro report --adopt`"
        )
    if not artifacts:
        raise FileNotFoundError(
            f"no curated artifacts in the store ({store.stats().get('dir', 'remote')}); "
            "run `pytest benchmarks/ --benchmark-only` or `repro report --adopt`"
        )

    deterministic = [a for a in artifacts if not spec_for(a.name).volatile]
    fingerprint = report_fingerprint(artifacts)

    files: dict[str, bytes] = {}
    lines = [
        "# Reproduction report",
        "",
        f"Input fingerprint: `{fingerprint}`",
        "",
        f"SHA-256 over the content IDs of the {len(deterministic)} deterministic "
        "artifacts below; identical inputs render an identical report "
        "(volatile timing artifacts are listed but excluded).",
        "Regenerate with `repro report`; verify the working tree against it "
        "with `repro report --check`. See docs/artifacts.md.",
        "",
    ]
    for artifact in deterministic:
        spec = spec_for(artifact.name)
        lines.append(f"## {spec.title}")
        lines.append("")
        txt_name = f"{artifact.name}.txt"
        csv_name = f"{artifact.name}.csv"
        for fname in artifact.files:
            data = store.file_bytes(artifact, fname)
            if data is None:
                raise UnresolvableArtifactError(
                    f"blob for {fname!r} of artifact {artifact.name!r} is missing "
                    "or corrupt in the store; rerun its bench or `repro report --adopt`"
                )
            files[fname] = data
        if txt_name in artifact.files:
            lines.append("```")
            lines.append(files[txt_name].decode("utf-8").rstrip())
            lines.append("```")
        if csv_name in artifact.files:
            lines.append("")
            lines.append(_csv_summary(csv_name, files[csv_name]))
        lines.append("")
        lines.append("Files:")
        lines.append("")
        for fname, sha in sorted(artifact.files.items()):
            lines.append(f"- `{fname}` — sha256 `{sha}`")
        lines.append("")

    lines.append("## Volatile artifacts")
    lines.append("")
    lines.append(
        "Wall-clock measurements whose bytes legitimately differ between "
        "runs; stored with full provenance in the artifact store but "
        "excluded from the input fingerprint and from `--check`:"
    )
    lines.append("")
    for spec in SPECS:
        if spec.volatile:
            lines.append(f"- `{spec.name}` — {spec.title}")
    lines.append("")

    volatile_files = set(files)
    for artifact in artifacts:
        volatile_files.update(artifact.files)
    strays = _unregistered(volatile_files, base)
    if strays:
        lines.append("## Unregistered files")
        lines.append("")
        lines.append(
            "Files under `results/` no curated artifact claims — stale "
            "droppings or a bench missing its registry entry "
            "(`repro.store.publish.SPECS`):"
        )
        lines.append("")
        for name in strays:
            lines.append(f"- `{name}`")
        lines.append("")

    return "\n".join(lines), files


def _auto_adopt_volatile(store: ArtifactStore, base: str | Path | None) -> None:
    """Bless on-disk volatile artifacts absent from the store.

    Volatile bytes are not fingerprinted, so adopting them silently is
    safe — it only records provenance for files already in the tree
    (e.g. a committed ``BENCH_history.jsonl`` on a machine that never
    ran ``repro perfbench``).
    """
    for spec in SPECS:
        if not spec.volatile or store.contains(Stage.CURATED, spec.name):
            continue
        if artifact_files(spec, base):
            publish_curated(spec.name, store=store, base=base)


def generate_report(
    base: str | Path | None = None,
    *,
    store: ArtifactStore | None = None,
    adopt: bool = False,
) -> Path:
    """Render and materialize ``results/`` from the store; returns the path.

    Every managed file (tables, CSVs, SVGs, REPORT.md) is written only
    when its bytes differ from what the store renders — a second run
    writes nothing.  ``adopt=True`` first blesses the committed tree
    into the store (fresh-clone bootstrap).
    """
    store = store if store is not None else ArtifactStore()
    if adopt:
        adopt_results(store, base)
    _auto_adopt_volatile(store, base)
    markdown, files = render_report(store, base)
    d = results_dir(base)
    text = markdown if markdown.endswith("\n") else markdown + "\n"
    for fname, data in sorted(files.items()):
        path = d / fname
        if not path.exists() or path.read_bytes() != data:
            path.write_bytes(data)
    out = d / "REPORT.md"
    payload = text.encode("utf-8")
    if not out.exists() or out.read_bytes() != payload:
        out.write_bytes(payload)
    artifacts = _resolved(store)
    store.put(
        Stage.REPORT,
        "REPORT",
        kind="report",
        payload={"fingerprint": report_fingerprint(artifacts)},
        files={"REPORT.md": payload},
        refs=tuple(
            [ArtifactRef(Stage.CURATED.value, a.name, a.artifact_id) for a in artifacts]
            + [code_ref("repro.analysis.report")]
        ),
    )
    return out


def check_report(
    base: str | Path | None = None,
    *,
    store: ArtifactStore | None = None,
    adopt: bool = False,
) -> list[str]:
    """Byte-verify the working tree against the store; [] when clean.

    Renders the report in memory and compares every deterministic file
    plus REPORT.md against disk without writing anything.  Returns a
    human-readable problem list (drifted/missing files, strays).  With
    ``adopt=True`` the on-disk artifacts are blessed first, which turns
    the committed REPORT.md into the reference: the check then fails
    exactly when the tree is internally inconsistent (a results file was
    clobbered after REPORT.md was last rendered, or a stray appeared).
    """
    store = store if store is not None else ArtifactStore()
    if adopt:
        adopt_results(store, base)
    _auto_adopt_volatile(store, base)
    markdown, files = render_report(store, base)
    d = results_dir(base)
    problems = []
    for fname, data in sorted(files.items()):
        path = d / fname
        if not path.exists():
            problems.append(f"missing: {fname}")
        elif path.read_bytes() != data:
            problems.append(f"drifted: {fname}")
    text = (markdown if markdown.endswith("\n") else markdown + "\n").encode("utf-8")
    report_path = d / "REPORT.md"
    if not report_path.exists():
        problems.append("missing: REPORT.md")
    elif report_path.read_bytes() != text:
        problems.append("drifted: REPORT.md (inputs or stray files changed)")
    return problems
