"""Reproduction report generator.

Collects every artifact the benches wrote under ``results/`` — the
reproduced tables/figures (``.txt``) and their data series (``.csv``) —
and assembles a single self-contained markdown report: one section per
artifact with the rendering inlined and the CSV summarized.  ``repro
report`` writes it to ``results/REPORT.md``.

The generator is intentionally dumb about content (it does not recompute
anything) so the report always reflects what was actually measured in the
last bench run.
"""

from __future__ import annotations

from datetime import datetime, timezone
from pathlib import Path

from repro.analysis.csvio import read_csv, results_dir

__all__ = ["generate_report", "artifact_inventory"]

#: Display order and titles for known artifacts; unknown files are appended.
_KNOWN = [
    ("table1_replication_bounds", "Table 1 — replication-bound guarantees"),
    ("table2_memory_bounds", "Table 2 — memory-aware guarantees"),
    ("fig1_adversary", "Figure 1 — Theorem-1 adversary"),
    ("fig2_group_example", "Figure 2 — group replication example"),
    ("fig3_ratio_replication", "Figure 3 — ratio/replication tradeoff"),
    ("fig4_sabo_schedule", "Figure 4 — SABO schedule"),
    ("fig5_abo_schedule", "Figure 5 — ABO schedule"),
    ("fig6_memory_makespan", "Figure 6 — memory/makespan tradeoff"),
    ("e1_empirical_ratios", "E1 — empirical ratios vs guarantees"),
    ("e2_lower_bound_convergence", "E2 — lower-bound convergence"),
    ("e3_group_phase_ablation", "E3 — LS vs LPT group ablation"),
    ("e4_memory_pareto", "E4 — measured memory/makespan Pareto fronts"),
    ("e5_general_replication", "E5 — generalized replication policies"),
    ("e6_regime_map", "E6 — clairvoyance regime map"),
    ("e7_fault_tolerance", "E7 — fault tolerance"),
    ("e8_proof_verification", "E8 — numeric proof verification"),
    ("e9_robustness_metrics", "E9 — classical robustness metrics"),
    ("e10_estimate_refinement", "E10 — estimate refinement"),
]


def artifact_inventory(base: str | Path | None = None) -> dict[str, dict[str, Path]]:
    """Map artifact stem -> available files (``txt`` and/or ``csv``)."""
    d = results_dir(base)
    inventory: dict[str, dict[str, Path]] = {}
    for path in sorted(d.glob("*.txt")):
        if path.stem == "REPORT":
            continue
        inventory.setdefault(path.stem, {})["txt"] = path
    for path in sorted(d.glob("*.csv")):
        inventory.setdefault(path.stem, {})["csv"] = path
    return inventory


def _csv_summary(path: Path, *, max_preview: int = 3) -> str:
    rows = read_csv(path)
    if not rows:
        return f"`{path.name}`: empty"
    cols = list(rows[0].keys())
    lines = [
        f"`{path.name}`: {len(rows)} rows × {len(cols)} columns "
        f"({', '.join(cols[:8])}{', ...' if len(cols) > 8 else ''})"
    ]
    for r in rows[:max_preview]:
        cells = ", ".join(f"{k}={v}" for k, v in list(r.items())[:6])
        lines.append(f"  - {cells}")
    if len(rows) > max_preview:
        lines.append(f"  - ... {len(rows) - max_preview} more rows")
    return "\n".join(lines)


def generate_report(base: str | Path | None = None) -> Path:
    """Assemble ``results/REPORT.md`` from the artifacts on disk.

    Returns the report path.  Raises ``FileNotFoundError`` when no
    artifacts exist yet (run the benches first).
    """
    inventory = artifact_inventory(base)
    if not inventory:
        raise FileNotFoundError(
            f"no artifacts under {results_dir(base)}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )

    ordered: list[tuple[str, str]] = []
    seen: set[str] = set()
    for stem, title in _KNOWN:
        if stem in inventory:
            ordered.append((stem, title))
            seen.add(stem)
    for stem in inventory:
        if stem not in seen:
            ordered.append((stem, stem))

    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M UTC")
    lines = [
        "# Reproduction report",
        "",
        f"Generated {stamp} from the artifacts in `results/`.",
        f"{len(ordered)} artifacts. Regenerate with "
        "`pytest benchmarks/ --benchmark-only && repro report`.",
        "",
    ]
    for stem, title in ordered:
        files = inventory[stem]
        lines.append(f"## {title}")
        lines.append("")
        if "txt" in files:
            lines.append("```")
            lines.append(files["txt"].read_text().rstrip())
            lines.append("```")
        if "csv" in files:
            lines.append("")
            lines.append(_csv_summary(files["csv"]))
        lines.append("")

    out = results_dir(base) / "REPORT.md"
    out.write_text("\n".join(lines))
    return out
