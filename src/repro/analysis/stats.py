"""Summary statistics for experiment result collections.

Thin, dependency-light wrappers over numpy: the benches report mean / max /
percentiles of measured ratios plus a normal-approximation confidence
interval.  Centralized so every table in EXPERIMENTS.md aggregates the
same way.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "ci_halfwidth"]


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample of measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    ci95: float

    def format(self, *, digits: int = 4) -> str:
        """One-line human-readable rendering."""
        d = digits
        return (
            f"n={self.count} mean={self.mean:.{d}g}±{self.ci95:.{d}g} "
            f"max={self.maximum:.{d}g} p95={self.p95:.{d}g}"
        )


def ci_halfwidth(values: Sequence[float], *, z: float = 1.96) -> float:
    """Normal-approximation 95% CI half-width (0 for n < 2)."""
    n = len(values)
    if n < 2:
        return 0.0
    return z * float(np.std(values, ddof=1)) / math.sqrt(n)


def summarize(values: Sequence[float]) -> Summary:
    """Compute the standard summary of a non-empty sample."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(values, dtype=float)
    if np.any(~np.isfinite(arr)):
        raise ValueError("sample contains non-finite values")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        ci95=ci_halfwidth(arr.tolist()),
    )
