"""Regime analysis: where each strategy's guarantee dominates.

Serves the E6 regime-map artifact (``bench_e6_regime_map`` →
``results/e6_regime_map.*``) and the ``repro regimes`` CLI command.

The paper's conclusion frames the open problem as locating the boundary
between two regimes: "when α is low, the problem is no different than the
offline problem, and when it is large, the problem converges to the
non-clairvoyant online problem."  This module computes those boundaries
from the proven guarantees:

* :func:`dominant_strategy_map` — for a grid of α, the strategy with the
  best guarantee at each replication level;
* :func:`alpha_crossovers` — the α values where guarantee curves cross
  (e.g. where Theorem 3's bound meets Graham's, :math:`\\alpha=\\sqrt2`);
* :func:`clairvoyance_value` — the guarantee improvement of using the
  estimates at all (best estimate-aware guarantee vs. the estimate-free
  ``2 − 1/m``), the quantity that decays to zero as α grows;
* :func:`replication_value` — guarantee improvement per replica added
  (the marginal-value curve behind "only few replications improve the
  performance significantly").

Used by bench E6 and the cluster-planning example.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence

from repro._validation import check_alpha, check_machine_count
from repro.core.bounds import (
    divisors,
    ub_graham_ls,
    ub_lpt_no_choice,
    ub_lpt_no_restriction,
    ub_ls_group,
)

__all__ = [
    "dominant_strategy_map",
    "alpha_crossovers",
    "clairvoyance_value",
    "replication_value",
]


def dominant_strategy_map(
    alphas: Sequence[float], m: int
) -> list[dict[str, object]]:
    """For each α: the best guarantee at each replication level and overall.

    Returns one row per α with the best strategy spec per replication
    ``r ∈ {m/k}`` and the overall winner at its replication cost.
    """
    check_machine_count(m)
    rows: list[dict[str, object]] = []
    for alpha in alphas:
        a = check_alpha(alpha)
        per_replication: dict[int, tuple[str, float]] = {}
        per_replication[1] = ("lpt_no_choice", ub_lpt_no_choice(a, m))
        for k in divisors(m):
            r = m // k
            cand = (f"ls_group[k={k}]", ub_ls_group(a, m, k))
            if r not in per_replication or cand[1] < per_replication[r][1]:
                per_replication[r] = cand
        full = ("lpt_no_restriction", ub_lpt_no_restriction(a, m))
        if full[1] < per_replication[m][1]:
            per_replication[m] = full
        best_r = min(per_replication, key=lambda r: per_replication[r][1])
        rows.append(
            {
                "alpha": a,
                "per_replication": dict(sorted(per_replication.items())),
                "best_strategy": per_replication[best_r][0],
                "best_guarantee": per_replication[best_r][1],
                "best_replication": best_r,
            }
        )
    return rows


def alpha_crossovers(m: int, *, k: int | None = None) -> dict[str, float]:
    """Closed-form α crossovers between guarantee curves.

    Keys
    ----
    ``th3_vs_graham``
        α where Theorem 3's raw bound reaches Graham's ``2−1/m``:
        solving ``1 + (m−1)/m·α²/2 = 2 − 1/m`` gives :math:`\\alpha=\\sqrt2`
        independent of m.
    ``group_vs_no_choice``
        smallest α (by bisection on the closed forms) where LS-Group with
        the given ``k`` has a strictly better guarantee than LPT-No
        Choice.  ``float('inf')`` if never within the scanned range.
    """
    check_machine_count(m)
    out = {"th3_vs_graham": 2.0**0.5}
    if k is not None:
        grid = [1.0 + i * 0.001 for i in range(0, 9001)]
        vals = [
            ub_ls_group(a, m, k) < ub_lpt_no_choice(a, m) for a in grid
        ]
        idx = bisect_left(vals, True)
        out["group_vs_no_choice"] = grid[idx] if idx < len(grid) else float("inf")
    return out


def clairvoyance_value(alpha: float, m: int) -> float:
    """How much the estimates are worth, in guarantee terms.

    ``(estimate-free Graham bound) − (best estimate-aware guarantee at
    full replication)``.  Positive while estimates help; hits zero at
    :math:`\\alpha = \\sqrt2` where Theorem 3's bound meets Graham's —
    beyond it the paper's strategies retain Graham's guarantee but cannot
    beat it, i.e. the non-clairvoyant regime.
    """
    a = check_alpha(alpha)
    check_machine_count(m)
    return ub_graham_ls(m) - ub_lpt_no_restriction(a, m)


def replication_value(alpha: float, m: int) -> list[dict[str, float]]:
    """Marginal guarantee improvement per replica along the LS-Group curve.

    One row per consecutive pair of replication levels ``m/k`` (ascending),
    with the guarantee drop per extra replica — the curve whose steep start
    is the paper's "even a small amount of replication can improve the
    guarantee significantly".
    """
    a = check_alpha(alpha)
    check_machine_count(m)
    levels = sorted((m // k, ub_ls_group(a, m, k)) for k in divisors(m))
    rows = []
    for (r0, g0), (r1, g1) in zip(levels, levels[1:]):
        rows.append(
            {
                "from_replication": float(r0),
                "to_replication": float(r1),
                "guarantee_drop": g0 - g1,
                "drop_per_replica": (g0 - g1) / (r1 - r0),
            }
        )
    return rows
