"""On-disk result cache for experiment-grid cells.

Serves sweep re-runs across every grid-driven artifact (E1–E16, figure
benches, ``repro sweep``): a cell whose inputs have not changed is read
back from ``.repro-cache/`` instead of recomputed, so editing one
strategy no longer pays for the whole grid again.

A cell's **fingerprint** is the SHA-256 of a canonical JSON document
covering everything its outcome depends on:

* ``schema`` — :data:`CACHE_SCHEMA_VERSION`, bumped whenever the
  measurement code changes semantics (bulk invalidation);
* ``strategy`` — the **canonical registry spec**
  (:func:`repro.registry.describe_strategy`) when the strategy is
  registered, so every spelling of the same strategy
  (``selective[0.50]``, ``selective[0.5,count]``) shares one entry;
  unregistered strategies fall back to class qualname, display name, and
  public constructor state (``vars()`` minus underscored keys);
* ``instance`` — full content hash: n, m, alpha, name, every estimate
  and size;
* ``model`` / ``seed`` — the realization model name and seed;
* ``exact_limit`` — the optimum solver's exhaustiveness cutoff.

Cells whose realization model is a custom callable (not a registered
model name) are **uncacheable** — a function's identity is not a stable
key — and silently bypass the cache.

Entries are one JSON file per fingerprint, sharded by the first two hex
chars.  A corrupt or unreadable entry counts as a miss (and a
``grid.cache_corrupt`` tick) and is recomputed, never raised; the bad
shard is additionally *quarantined* — moved aside to ``<entry>.corrupt``
(a ``grid.cache_quarantined`` tick) so a warm rerun never trips over it
again.  Quarantined cells (``kind="quarantined"`` skips from the retry
layer) are refused by :meth:`CellCache.put`: a transient crash must not
be frozen into a permanent skip.  Hits, misses, stores, corruption, and
quarantines are tracked on the cache object and mirrored into the
tracer's :class:`~repro.obs.metrics.MetricsRegistry` as
``grid.cache_hits`` / ``grid.cache_misses`` / ``grid.cache_stores`` /
``grid.cache_corrupt`` / ``grid.cache_quarantined``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.analysis.parallel import CellOutcome, CellSpec
from repro.analysis.records import ExperimentRecord, SkippedCell
from repro.obs.tracer import get_tracer

__all__ = ["CellCache", "cell_fingerprint", "CACHE_SCHEMA_VERSION", "DEFAULT_CACHE_DIR"]

#: Bump to invalidate every existing cache entry at once (schema or
#: measurement-semantics changes).  v2: strategy identity switched to the
#: canonical registry spec.
CACHE_SCHEMA_VERSION = 2

#: Where caches land unless a caller says otherwise.
DEFAULT_CACHE_DIR = ".repro-cache"


def _strategy_key(strategy: Any) -> dict[str, Any]:
    """Stable strategy identity: canonical spec, else class + public params.

    Registered strategies key on their canonical registry spec, so every
    spelling of the same strategy hits the same cache entry.  Strategies
    the registry cannot represent (unregistered classes, instances built
    with non-spec state) keep the legacy class/name/vars identity.
    """
    from repro.registry import try_describe_strategy

    spec = try_describe_strategy(strategy)
    if spec is not None:
        return {"spec": spec}
    params: dict[str, Any] = {}
    state = getattr(strategy, "__dict__", None)
    if state:
        params = {k: v for k, v in sorted(state.items()) if not k.startswith("_")}
    return {
        "class": f"{type(strategy).__module__}.{type(strategy).__qualname__}",
        "name": getattr(strategy, "name", type(strategy).__name__),
        "params": {k: repr(v) for k, v in params.items()},
    }


def _instance_key(instance: Any) -> dict[str, Any]:
    """Full content identity of an instance (estimates and sizes included)."""
    return {
        "n": instance.n,
        "m": instance.m,
        "alpha": instance.alpha,
        "name": instance.name,
        "estimates": list(instance.estimates),
        "sizes": list(instance.sizes),
    }


def cell_fingerprint(spec: CellSpec) -> str | None:
    """SHA-256 key of one cell, or ``None`` when the cell is uncacheable."""
    if not isinstance(spec.model, str):
        return None
    document = {
        "schema": CACHE_SCHEMA_VERSION,
        "strategy": _strategy_key(spec.strategy),
        "instance": _instance_key(spec.instance),
        "model": spec.model,
        "seed": spec.seed,
        "exact_limit": spec.exact_limit,
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CellCache:
    """Fingerprint-keyed store of grid-cell outcomes under ``root``.

    One instance per sweep is the intended use; hit/miss/store counters
    accumulate across ``get``/``put`` calls and feed the grid manifest's
    cache section.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.quarantined = 0

    # -- bookkeeping -------------------------------------------------------

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none happened)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> dict[str, Any]:
        """JSON-ready summary for manifests and CLI output."""
        return {
            "dir": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "hit_rate": self.hit_rate(),
        }

    def _path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    # -- lookup / store ----------------------------------------------------

    def get(self, spec: CellSpec) -> CellOutcome | None:
        """Return the cached outcome for ``spec``, or ``None`` on a miss.

        Corrupt entries (truncated writes, schema drift, hand edits) are
        treated as misses and moved aside to ``<entry>.corrupt`` so a
        warm rerun starts clean; the subsequent :meth:`put` rewrites the
        real entry.
        """
        fingerprint = cell_fingerprint(spec)
        if fingerprint is None:
            return None
        tracer = get_tracer()
        path = self._path(fingerprint)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            outcome = self._decode(spec, fingerprint, payload)
        except FileNotFoundError:
            outcome = None
        except (OSError, ValueError, KeyError, TypeError):
            self.corrupt += 1
            tracer.count("grid.cache_corrupt")
            self._quarantine(path)
            outcome = None
        if outcome is None:
            self.misses += 1
            tracer.count("grid.cache_misses")
        else:
            self.hits += 1
            tracer.count("grid.cache_hits")
        return outcome

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt shard aside so it cannot poison a warm rerun."""
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            return
        self.quarantined += 1
        get_tracer().count("grid.cache_quarantined")

    def put(self, spec: CellSpec, outcome: CellOutcome) -> bool:
        """Persist one computed outcome; returns False when uncacheable.

        Quarantined skips (a cell that exhausted its retries) are refused
        on purpose: the failure may be transient, and caching it would
        turn one bad run into a permanently missing cell.
        """
        if outcome.skipped is not None and outcome.skipped.kind == "quarantined":
            return False
        fingerprint = cell_fingerprint(spec)
        if fingerprint is None:
            return False
        payload: dict[str, Any] = {
            "v": CACHE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "duration_s": outcome.duration_s,
        }
        if outcome.record is not None:
            payload["kind"] = "record"
            payload["record"] = outcome.record.to_cache_dict()
        elif outcome.skipped is not None:
            payload["kind"] = "skipped"
            payload["skipped"] = outcome.skipped.as_dict()
        else:  # pragma: no cover - outcomes always carry one of the two
            return False
        path = self._path(fingerprint)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
                encoding="utf-8",
            )
            tmp.replace(path)
        except OSError:
            return False
        self.stores += 1
        get_tracer().count("grid.cache_stores")
        return True

    def _decode(
        self, spec: CellSpec, fingerprint: str, payload: dict[str, Any]
    ) -> CellOutcome:
        """Rebuild a :class:`CellOutcome`; raises on any inconsistency."""
        if payload.get("v") != CACHE_SCHEMA_VERSION:
            raise ValueError(f"cache schema {payload.get('v')!r} != {CACHE_SCHEMA_VERSION}")
        if payload.get("fingerprint") != fingerprint:
            raise ValueError("cache entry fingerprint mismatch")
        duration = float(payload.get("duration_s", 0.0))
        kind = payload.get("kind")
        if kind == "record":
            record = ExperimentRecord.from_cache_dict(payload["record"])
            return CellOutcome(spec.index, record, None, duration)
        if kind == "skipped":
            s = payload["skipped"]
            skipped = SkippedCell(
                s["strategy"],
                s["instance"],
                s["error"],
                kind=s.get("kind", "incompatible"),
                attempts=int(s.get("attempts", 1)),
            )
            return CellOutcome(spec.index, None, skipped, duration)
        raise ValueError(f"unknown cache entry kind {kind!r}")
