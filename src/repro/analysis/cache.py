"""On-disk result cache for experiment-grid cells, backed by the artifact store.

Serves sweep re-runs across every grid-driven artifact (E1–E16, figure
benches, ``repro sweep``): a cell whose inputs have not changed is read
back from the RAW stage of the content-addressed artifact store
(:mod:`repro.store`, default ``.repro-store/``) instead of recomputed,
so editing one strategy no longer pays for the whole grid again.

A cell's **fingerprint** is the SHA-256 of a canonical JSON document
covering everything its outcome depends on:

* ``schema`` — :data:`CACHE_SCHEMA_VERSION`, bumped whenever the
  measurement code changes semantics (bulk invalidation);
* ``strategy`` — the **canonical registry spec**
  (:func:`repro.registry.describe_strategy`) when the strategy is
  registered, so every spelling of the same strategy
  (``selective[0.50]``, ``selective[0.5,count]``) shares one entry;
  unregistered strategies fall back to class qualname, display name, and
  public constructor state (``vars()`` minus underscored keys);
* ``instance`` — full content hash: n, m, alpha, name, every estimate
  and size;
* ``model`` / ``seed`` — the realization model name and seed;
* ``exact_limit`` — the optimum solver's exhaustiveness cutoff.

Cells whose realization model is a custom callable (not a registered
model name) are **uncacheable** — a function's identity is not a stable
key — and silently bypass the cache.  So are cells whose inputs cannot
be canonically encoded (NaN/infinite estimates): unlike plain
``json.dumps``, the canonical encoding refuses values that do not
round-trip, rather than minting colliding keys.

Entries are RAW-stage artifacts keyed by fingerprint.  A corrupt or
unreadable entry counts as a miss (and a ``grid.cache_corrupt`` tick)
and is recomputed, never raised; the bad entry is additionally
*quarantined* — moved aside to ``<entry>.corrupt`` (a
``grid.cache_quarantined`` tick) so a warm rerun never trips over it
again.  Quarantined cells (``kind="quarantined"`` skips from the retry
layer) are refused by :meth:`CellCache.put`: a transient crash must not
be frozen into a permanent skip.

**Legacy migration** (v2 → v3): entries written by the pre-store cache
(schema 2, flat ``<aa>/<fingerprint>.json`` shards under the cache root
or a sibling ``.repro-cache/``) are migrated *lazily and losslessly* —
on a v3 miss the v2 fingerprint is computed, the old shard decoded, the
outcome re-stored under its v3 key, and the lookup counted as a hit plus
a ``grid.cache_migrated`` tick.  A warm v2 cache therefore recomputes
nothing.  (Bulk re-keying is impossible: fingerprints hash the *inputs*,
which a stored entry does not carry.)  Cold legacy shards are pruned by
``repro cache gc --prune-legacy``.

Hits, misses, stores, migrations, corruption, and quarantines are
tracked on the cache object and mirrored into the tracer's
:class:`~repro.obs.metrics.MetricsRegistry` as ``grid.cache_hits`` /
``grid.cache_misses`` / ``grid.cache_stores`` / ``grid.cache_migrated``
/ ``grid.cache_corrupt`` / ``grid.cache_quarantined`` (the store adds
its own ``store.*`` series underneath).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.analysis.parallel import CellOutcome, CellSpec
from repro.analysis.records import ExperimentRecord, SkippedCell
from repro.obs.tracer import get_tracer
from repro.store.artifact import Stage
from repro.store.canonical import content_hash
from repro.store.session import record_raw_ref
from repro.store.store import ArtifactStore, default_store_root

__all__ = [
    "CellCache",
    "cell_fingerprint",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "LEGACY_CACHE_DIR",
]

#: Bump to invalidate every existing cache entry at once (schema or
#: measurement-semantics changes).  v2: strategy identity switched to the
#: canonical registry spec.  v3: entries moved into the artifact store's
#: RAW stage with canonical (path/tuple/NaN-strict) fingerprint encoding;
#: v2 entries are migrated lazily, see the module docs.
CACHE_SCHEMA_VERSION = 3

#: Where cells land unless a caller says otherwise — the unified store.
DEFAULT_CACHE_DIR = ".repro-store"

#: The pre-store cache directory, still honored as a migration source.
LEGACY_CACHE_DIR = ".repro-cache"

#: The v2 schema tag legacy shards were written with.
_LEGACY_SCHEMA = 2


def _strategy_key(strategy: Any) -> dict[str, Any]:
    """Stable strategy identity: canonical spec, else class + public params.

    Registered strategies key on their canonical registry spec, so every
    spelling of the same strategy hits the same cache entry.  Strategies
    the registry cannot represent (unregistered classes, instances built
    with non-spec state) keep the legacy class/name/vars identity.
    """
    from repro.registry import try_describe_strategy

    spec = try_describe_strategy(strategy)
    if spec is not None:
        return {"spec": spec}
    params: dict[str, Any] = {}
    state = getattr(strategy, "__dict__", None)
    if state:
        params = {k: v for k, v in sorted(state.items()) if not k.startswith("_")}
    return {
        "class": f"{type(strategy).__module__}.{type(strategy).__qualname__}",
        "name": getattr(strategy, "name", type(strategy).__name__),
        "params": {k: repr(v) for k, v in params.items()},
    }


def _instance_key(instance: Any) -> dict[str, Any]:
    """Full content identity of an instance (estimates and sizes included)."""
    return {
        "n": instance.n,
        "m": instance.m,
        "alpha": instance.alpha,
        "name": instance.name,
        "estimates": list(instance.estimates),
        "sizes": list(instance.sizes),
    }


def _fingerprint_document(spec: CellSpec, schema: int) -> dict[str, Any]:
    """The canonical document a cell fingerprint hashes."""
    return {
        "schema": schema,
        "strategy": _strategy_key(spec.strategy),
        "instance": _instance_key(spec.instance),
        "model": spec.model,
        "seed": spec.seed,
        "exact_limit": spec.exact_limit,
    }


def cell_fingerprint(spec: CellSpec) -> str | None:
    """SHA-256 key of one cell, or ``None`` when the cell is uncacheable."""
    if not isinstance(spec.model, str):
        return None
    try:
        return content_hash(_fingerprint_document(spec, CACHE_SCHEMA_VERSION))
    except ValueError:
        return None  # non-canonical inputs (NaN/inf estimates, odd params)


def _legacy_fingerprint(spec: CellSpec) -> str | None:
    """The v2 (pre-store) fingerprint, byte-compatible with the old cache."""
    if not isinstance(spec.model, str):
        return None
    try:
        blob = json.dumps(
            _fingerprint_document(spec, _LEGACY_SCHEMA),
            sort_keys=True,
            separators=(",", ":"),
        )
    except (TypeError, ValueError):
        return None
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CellCache:
    """Fingerprint-keyed view of RAW cell outcomes in the artifact store.

    One instance per sweep is the intended use; hit/miss/store counters
    accumulate across ``get``/``put`` calls and feed the grid manifest's
    cache section.  ``root`` may be a directory (a store is opened
    there), an existing :class:`~repro.store.store.ArtifactStore`, or
    omitted for the repo-anchored default store.
    """

    def __init__(self, root: str | Path | ArtifactStore | None = None) -> None:
        if isinstance(root, ArtifactStore):
            self.store = root
        else:
            self.store = ArtifactStore(root if root is not None else default_store_root())
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.migrated = 0
        self.corrupt = 0
        self.quarantined = 0

    # -- bookkeeping -------------------------------------------------------

    @property
    def root(self) -> Path:
        """The store's root directory (local backends)."""
        return self.store.root

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none happened)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> dict[str, Any]:
        """JSON-ready summary for manifests and CLI output."""
        return {
            "dir": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "migrated": self.migrated,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "hit_rate": self.hit_rate(),
        }

    def _path(self, fingerprint: str) -> Path:
        return self.store.manifest_path(Stage.RAW, fingerprint)

    def _legacy_paths(self, fingerprint: str) -> list[Path]:
        """Where a v2 shard for ``fingerprint`` could live, in priority order."""
        shard = Path(fingerprint[:2]) / f"{fingerprint}.json"
        candidates = [self.root / shard]
        sibling = self.root.parent / LEGACY_CACHE_DIR
        if sibling != self.root:
            candidates.append(sibling / shard)
        return candidates

    # -- lookup / store ----------------------------------------------------

    def get(self, spec: CellSpec) -> CellOutcome | None:
        """Return the cached outcome for ``spec``, or ``None`` on a miss.

        Corrupt entries (truncated writes, schema drift, hand edits) are
        treated as misses and moved aside to ``<entry>.corrupt`` so a
        warm rerun starts clean; the subsequent :meth:`put` rewrites the
        real entry.  Misses additionally probe for a pre-store (v2)
        entry and migrate it in place — a warm legacy cache counts as
        hits, never recompute.
        """
        fingerprint = cell_fingerprint(spec)
        if fingerprint is None:
            return None
        tracer = get_tracer()
        existed = self.store.contains(Stage.RAW, fingerprint)
        artifact = self.store.get(Stage.RAW, fingerprint)
        outcome = None
        if artifact is not None:
            try:
                outcome = self._decode(spec, fingerprint, artifact.payload)
            except (ValueError, KeyError, TypeError):
                self.store.quarantine(Stage.RAW, fingerprint)
                artifact = None
        if artifact is None and existed:
            # The entry was there but unusable: the store quarantined it.
            self.corrupt += 1
            tracer.count("grid.cache_corrupt")
            if not self.store.contains(Stage.RAW, fingerprint):
                self.quarantined += 1
                tracer.count("grid.cache_quarantined")
        if outcome is None:
            outcome = self._migrate_legacy(spec, fingerprint)
            if outcome is not None:
                return outcome  # counted as a hit inside _migrate_legacy
        if outcome is None:
            self.misses += 1
            tracer.count("grid.cache_misses")
        else:
            self.hits += 1
            tracer.count("grid.cache_hits")
            record_raw_ref(fingerprint, artifact.artifact_id)
        return outcome

    def _migrate_legacy(self, spec: CellSpec, fingerprint: str) -> CellOutcome | None:
        """Revive a v2 shard for this cell, re-keying it at v3 in the store."""
        legacy_fp = _legacy_fingerprint(spec)
        if legacy_fp is None:
            return None
        for path in self._legacy_paths(legacy_fp):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if payload.get("v") != _LEGACY_SCHEMA or payload.get("fingerprint") != legacy_fp:
                continue
            try:
                outcome = self._decode_entry(spec, payload)
            except (ValueError, KeyError, TypeError):
                continue
            self._store_outcome(spec, fingerprint, outcome, count_store=False)
            self.migrated += 1
            self.hits += 1
            tracer = get_tracer()
            tracer.count("grid.cache_migrated")
            tracer.count("grid.cache_hits")
            return outcome
        return None

    def put(self, spec: CellSpec, outcome: CellOutcome) -> bool:
        """Persist one computed outcome; returns False when uncacheable.

        Quarantined skips (a cell that exhausted its retries) are refused
        on purpose: the failure may be transient, and caching it would
        turn one bad run into a permanently missing cell.
        """
        if outcome.skipped is not None and outcome.skipped.kind == "quarantined":
            return False
        fingerprint = cell_fingerprint(spec)
        if fingerprint is None:
            return False
        return self._store_outcome(spec, fingerprint, outcome, count_store=True)

    def _store_outcome(
        self, spec: CellSpec, fingerprint: str, outcome: CellOutcome, *, count_store: bool
    ) -> bool:
        """Write one outcome as a RAW artifact; False when it cannot persist."""
        payload: dict[str, Any] = {"duration_s": outcome.duration_s}
        if outcome.record is not None:
            payload["kind"] = "record"
            payload["record"] = outcome.record.to_cache_dict()
        elif outcome.skipped is not None:
            payload["kind"] = "skipped"
            payload["skipped"] = outcome.skipped.as_dict()
        else:  # pragma: no cover - outcomes always carry one of the two
            return False
        try:
            artifact = self.store.put(Stage.RAW, fingerprint, kind="cell", payload=payload)
        except (OSError, ValueError):
            return False  # backend failure, or a payload that cannot canonicalize
        record_raw_ref(fingerprint, artifact.artifact_id)
        if count_store:
            self.stores += 1
            get_tracer().count("grid.cache_stores")
        return True

    def _decode(
        self, spec: CellSpec, fingerprint: str, payload: dict[str, Any]
    ) -> CellOutcome:
        """Rebuild a :class:`CellOutcome`; raises on any inconsistency."""
        if fingerprint != cell_fingerprint(spec):  # pragma: no cover - defensive
            raise ValueError("cache entry fingerprint mismatch")
        return self._decode_entry(spec, payload)

    def _decode_entry(self, spec: CellSpec, payload: dict[str, Any]) -> CellOutcome:
        """Decode a cache payload (v3 artifact or v2 shard body)."""
        duration = float(payload.get("duration_s", 0.0))
        kind = payload.get("kind")
        if kind == "record":
            record = ExperimentRecord.from_cache_dict(payload["record"])
            return CellOutcome(spec.index, record, None, duration)
        if kind == "skipped":
            s = payload["skipped"]
            skipped = SkippedCell(
                s["strategy"],
                s["instance"],
                s["error"],
                kind=s.get("kind", "incompatible"),
                attempts=int(s.get("attempts", 1)),
            )
            return CellOutcome(spec.index, None, skipped, duration)
        raise ValueError(f"unknown cache entry kind {kind!r}")
