"""End-to-end strategy runs and competitive-ratio measurement.

:func:`run_strategy` plays both phases (placement, then the discrete-event
simulation under a realization) and returns the full outcome;
:func:`measured_ratio` divides the achieved makespan by the exact optimum
(or a certified lower bound — flagged) of the realized times.  Everything
else in the empirical benches is built on these two calls: they are the
per-cell kernel behind every measured paper artifact (Table 1/2 checks,
Figure 3, benches E1–E16).

Both entry points are pure functions of picklable inputs (strategies,
instances, and realizations are all plain frozen dataclasses), which is
what lets :mod:`repro.analysis.parallel` ship grid cells to worker
processes and still merge byte-identical results.  Keep it that way: no
module-level mutable state, no closures in the call signature.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.model import Instance
from repro.core.placement import Placement
from repro.core.strategies.registry import build_placement
from repro.core.strategy import TwoPhaseStrategy
from repro.exact.optimal import OptimalValue, optimal_makespan
from repro.faults.plan import FaultPlan
from repro.obs.tracer import get_tracer
from repro.registry.capabilities import Capabilities
from repro.simulation.engine import simulate
from repro.simulation.trace import ScheduleTrace
from repro.uncertainty.realization import Realization

__all__ = ["StrategyOutcome", "RatioRecord", "run_strategy", "measured_ratio"]


@dataclass(frozen=True)
class StrategyOutcome:
    """Result of one complete two-phase run.

    Attributes
    ----------
    strategy_name:
        The strategy's display name.
    placement:
        Phase-1 output (carries the replication and memory metrics).
    trace:
        The executed Phase-2 schedule (validated against the placement).
    makespan:
        :math:`C_{max}` of the run.
    """

    strategy_name: str
    placement: Placement
    trace: ScheduleTrace
    makespan: float

    @property
    def replication(self) -> int:
        """:math:`\\max_j |M_j|` of the placement used."""
        return self.placement.max_replication()

    @property
    def memory_max(self) -> float:
        """:math:`Mem_{max}` of the placement used."""
        return self.placement.memory_max()


@dataclass(frozen=True)
class RatioRecord:
    """A measured competitive ratio with full provenance.

    ``ratio`` is ``makespan / optimum.value``; when ``optimum.optimal`` is
    False the denominator is a lower bound, so ``ratio`` over-states the
    true competitive ratio (safe direction for guarantee checks).
    """

    outcome: StrategyOutcome
    optimum: OptimalValue
    ratio: float
    guarantee: float | None

    @property
    def within_guarantee(self) -> bool | None:
        """Whether the measured ratio respects the theoretical guarantee.

        Meaningful only when the denominator is the exact optimum: a
        lower-bound denominator can push the measured ratio above a
        guarantee that truly holds, so those cases return ``None`` when
        violated rather than ``False``.
        """
        if self.guarantee is None:
            return None
        tol = 1e-9 * max(1.0, self.guarantee)
        if self.ratio <= self.guarantee + tol:
            return True
        return False if self.optimum.optimal else None


def run_strategy(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    realization: Realization,
    *,
    validate: bool = True,
    release_times: Sequence[float] | None = None,
    speeds: Sequence[float] | None = None,
    failures: Mapping[int, float] | None = None,
    faults: FaultPlan | None = None,
    capabilities: Capabilities | None = None,
) -> StrategyOutcome:
    """Play Phase 1 and Phase 2 and return the outcome.

    ``validate`` (default on) re-checks the produced trace for full
    feasibility; disable only inside tight benchmark loops.

    ``release_times`` / ``speeds`` / ``failures`` / ``faults`` pass
    through to :func:`repro.simulation.engine.simulate` unchanged.  When
    a fault plan or release times are present, the strategy's declared
    capability envelope is enforced: ``capabilities`` defaults to the
    registry's :func:`~repro.registry.capabilities_of` lookup, so e.g. a
    ``supports_faults=False`` strategy under a plan raises
    :class:`~repro.registry.CapabilityError` instead of silently running
    outside its analysis.
    """
    tracer = get_tracer()
    if capabilities is None and (
        faults is not None or failures is not None or release_times is not None
    ):
        from repro.registry import capabilities_of

        capabilities = capabilities_of(strategy)
    placement = build_placement(strategy, instance)
    policy = strategy.make_policy(instance, placement)
    with tracer.span(
        "phase2", strategy=strategy.name, realization=realization.label
    ):
        trace = simulate(
            placement,
            realization,
            policy,
            release_times=release_times,
            speeds=speeds,
            failures=failures,
            faults=faults,
            capabilities=capabilities,
            label=f"{strategy.name}/{realization.label}",
        )
    if validate:
        trace.validate(placement, realization)
    return StrategyOutcome(strategy.name, placement, trace, trace.makespan)


def measured_ratio(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    realization: Realization,
    *,
    exact_limit: int = 22,
    validate: bool = True,
) -> RatioRecord:
    """Run the strategy and divide its makespan by the clairvoyant optimum.

    The guarantee recorded alongside is the strategy's own
    ``guarantee(instance)`` if it defines one (all paper strategies do).
    """
    outcome = run_strategy(strategy, instance, realization, validate=validate)
    optimum = optimal_makespan(realization.actuals, instance.m, exact_limit=exact_limit)
    guarantee_fn = getattr(strategy, "guarantee", None)
    guarantee = guarantee_fn(instance) if callable(guarantee_fn) else None
    return RatioRecord(outcome, optimum, outcome.makespan / optimum.value, guarantee)
