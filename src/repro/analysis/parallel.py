"""Parallel execution backend for the experiment grid.

Serves every grid-driven paper artifact (benches E1–E16 and the figure
sweeps): :func:`enumerate_cells` flattens a strategies × instances ×
models × seeds sweep into picklable :class:`CellSpec` objects up front,
and :func:`execute_cells` fans them out over a ``concurrent.futures``
process pool in chunks.  Results come back keyed by cell index and are
merged in enumeration order, so the record list is identical to the
serial path no matter which worker finishes first.

Design points:

* **Determinism** — a cell's outcome depends only on its spec (strategy,
  instance, model, seed, exact limit); realizations are resampled
  deterministically inside the worker.  The merge sorts by cell index,
  so ``workers=N`` returns byte-identical records to ``workers=1``.
* **Chunked dispatch** — cells are shipped in contiguous chunks (default
  ``~4`` chunks per worker) to amortize pickling/IPC, and a chunk memoizes
  realizations per (instance, model, seed) group exactly like the serial
  loop does.
* **Spec-string transport** — registry-representable strategies cross the
  process boundary as canonical spec strings (``"ls_group[k=3]"``), not
  pickled objects: workers rebuild them through
  :func:`repro.registry.make_strategy` (memoized per chunk), so payloads
  stay small and a strategy whose *object* happens to be unpicklable
  still parallelizes as long as it is registered.
* **Serial fallback** — ``workers <= 1``, an unpicklable chunk (custom
  realization factories built from closures, unregistered closure-built
  strategies), or an unavailable pool (restricted environments) all
  degrade to running in-process; callers never have to care.
* **Resilience** — every cell runs under a :class:`RetryPolicy`: a cell
  that raises (or exceeds a per-cell wall-clock timeout) is retried with
  exponential backoff, and a cell that keeps failing is *quarantined* as
  a structured :class:`~repro.analysis.records.SkippedCell` instead of
  aborting the sweep.  A crashed pool chunk falls back inline, so one
  broken worker never loses the run.
* **Worker observability** — when the parent tracer is enabled each
  worker records into a private tracer and ships its events and metric
  summary back with the results; :mod:`repro.obs.merge` folds them into
  the parent trace.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace
from typing import Any

from repro.analysis import ratios
from repro.analysis.records import ExperimentRecord, SkippedCell
from repro.core.model import Instance
from repro.core.strategy import TwoPhaseStrategy
from repro.faults import inject
from repro.obs import profiling
from repro.obs.sink import MemorySink
from repro.obs.tracer import get_tracer
from repro.uncertainty.realization import Realization
from repro.uncertainty.stochastic import sample_realization

__all__ = [
    "CellSpec",
    "CellOutcome",
    "CellTimeout",
    "RetryPolicy",
    "DEFAULT_RETRY",
    "WorkerTrace",
    "enumerate_cells",
    "execute_cells",
    "execute_packs",
    "run_cell",
    "run_cell_resilient",
    "default_chunk_size",
]

RealizationFactory = Callable[[Instance, int], Realization]

#: Ring capacity of each worker's private event buffer.  Workers emit a
#: handful of events per cell, so this comfortably holds the largest
#: chunks while bounding memory on runaway grids.
_WORKER_EVENT_CAPACITY = 100_000


@dataclass(frozen=True)
class CellSpec:
    """One grid cell, fully specified and (usually) picklable.

    ``index`` is the cell's position in serial enumeration order — the
    merge key that makes parallel output deterministic.  ``group``
    identifies the (instance, model, seed) realization group so executors
    can sample each realization once per chunk.
    """

    index: int
    group: int
    strategy: TwoPhaseStrategy
    instance: Instance
    model: str | RealizationFactory
    model_name: str
    seed: int
    exact_limit: int

    def realization(self) -> Realization:
        """Sample (deterministically) the realization this cell runs under."""
        if isinstance(self.model, str):
            return sample_realization(self.instance, self.model, self.seed)
        return self.model(self.instance, self.seed)


@dataclass(frozen=True)
class CellOutcome:
    """What one cell produced: a record, or a structured skip.

    ``attempts`` counts how many tries the cell needed (1 = clean first
    run) and ``timed_out`` how many of the failed tries hit the
    :class:`RetryPolicy` wall-clock timeout; both feed the grid's
    resilience accounting.  ``batched`` marks outcomes served by the
    vectorized sweep (:mod:`repro.analysis.batch`) — the grid folds it
    into its ``batched_cells`` counter regardless of which process ran
    the pack.
    """

    index: int
    record: ExperimentRecord | None
    skipped: SkippedCell | None
    duration_s: float
    attempts: int = 1
    timed_out: int = 0
    batched: bool = False


class CellTimeout(RuntimeError):
    """A cell exceeded its :class:`RetryPolicy` wall-clock budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for grid cells.

    Attributes
    ----------
    max_attempts:
        Total tries per cell (first run included).  After the last failed
        attempt the cell is quarantined as a ``kind="quarantined"``
        :class:`~repro.analysis.records.SkippedCell` instead of raising.
    backoff_s:
        Sleep before the second attempt; each further retry multiplies it
        by ``backoff_factor``.  Zero disables sleeping (tests).
    backoff_factor:
        Exponential growth of the backoff.
    timeout_s:
        Optional per-attempt wall-clock budget.  ``None`` (the default)
        runs the cell directly in the calling thread; a number runs it in
        a daemon thread and abandons it past the deadline.  An abandoned
        attempt keeps executing in the background until it finishes on
        its own — cheap measurement kernels make this acceptable — so
        enable timeouts only for untraced sweeps (a zombie attempt would
        otherwise keep emitting events into the live tracer).
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")


#: The grid's default policy: three attempts, 50 ms then 100 ms backoff,
#: no per-cell timeout (timeouts are opt-in; see ``--cell-timeout``).
DEFAULT_RETRY = RetryPolicy()


@dataclass(frozen=True)
class WorkerTrace:
    """One worker chunk's observability payload, shipped back over IPC."""

    worker: int
    events: tuple[dict[str, Any], ...]
    metrics: dict[str, Any]


def model_display_name(model: str | RealizationFactory) -> str:
    """The name a model contributes to spans, manifests, and fingerprints."""
    return model if isinstance(model, str) else getattr(model, "__name__", "custom")


def enumerate_cells(
    strategies: Sequence[TwoPhaseStrategy],
    instances: Sequence[Instance],
    realization_models: Sequence[str | RealizationFactory],
    seeds: Sequence[int],
    exact_limit: int,
) -> list[CellSpec]:
    """Flatten the sweep into specs, in the serial loop's nesting order.

    The nesting (instances, then models, then seeds, then strategies)
    matches the historical serial driver, so cell indices — and therefore
    merged output order — are stable across backends.
    """
    cells: list[CellSpec] = []
    index = 0
    group = 0
    for instance in instances:
        for model in realization_models:
            name = model_display_name(model)
            for seed in seeds:
                for strategy in strategies:
                    cells.append(
                        CellSpec(
                            index=index,
                            group=group,
                            strategy=strategy,
                            instance=instance,
                            model=model,
                            model_name=name,
                            seed=seed,
                            exact_limit=exact_limit,
                        )
                    )
                    index += 1
                group += 1
    return cells


def run_cell(spec: CellSpec, realization: Realization | None = None) -> CellOutcome:
    """Execute one cell under the current tracer (serial and worker path).

    Emits the same instrumentation regardless of which process it runs
    in: a ``grid.cell`` span, ``grid.cells_done``/``grid.cells_skipped``
    counters, a structured ``grid.cell_skipped`` event on incompatible
    pairs, and a per-strategy timer observation.  When a profiling spec
    is armed (``--profile`` / ``REPRO_PROFILE_CELLS``) and the tracer is
    enabled, the measurement runs under cProfile and the top-N rows land
    in the span's ``profile`` attribute plus ``profile.*`` registry
    timers (:mod:`repro.obs.profiling`).
    """
    tracer = get_tracer()
    if realization is None:
        realization = spec.realization()
    profile_spec = profiling.active_spec() if tracer.enabled else None
    start = time.perf_counter()
    record: ExperimentRecord | None = None
    skipped: SkippedCell | None = None
    with tracer.span(
        "grid.cell",
        strategy=spec.strategy.name,
        instance=spec.instance.name,
        model=spec.model_name,
        seed=spec.seed,
    ) as cell_span:
        try:
            if profile_spec is not None:
                rec, profile_rows = profiling.profile_call(
                    ratios.measured_ratio,
                    spec.strategy,
                    spec.instance,
                    realization,
                    top=profile_spec.top,
                    exact_limit=spec.exact_limit,
                )
            else:
                profile_rows = []
                rec = ratios.measured_ratio(
                    spec.strategy,
                    spec.instance,
                    realization,
                    exact_limit=spec.exact_limit,
                )
        except ValueError as exc:
            # Group strategies reject m not divisible by k; record the
            # structured skip and move on.
            skipped = SkippedCell(spec.strategy.name, spec.instance.name, str(exc))
            tracer.count("grid.cells_skipped")
            tracer.event(
                "grid.cell_skipped",
                strategy=skipped.strategy,
                instance=skipped.instance,
                error=skipped.error,
            )
            cell_span.set(skipped=True)
        else:
            record = ExperimentRecord.from_ratio(rec, spec.seed)
            tracer.count("grid.cells_done")
            cell_span.set(ratio=record.ratio)
            if profile_rows:
                cell_span.set(profile=profile_rows)
                profiling.fold_rows(tracer.registry, profile_rows)
    duration = time.perf_counter() - start
    if tracer.enabled:
        tracer.registry.timer(f"grid.strategy.{spec.strategy.name}").observe(duration)
    return CellOutcome(spec.index, record, skipped, duration)


def _attempt_cell(
    spec: CellSpec, realization: Realization, timeout_s: float | None
) -> CellOutcome:
    """One try of one cell: fault-injection check, then (bounded) run.

    With a timeout the cell runs in a daemon thread; past the deadline
    the thread is abandoned (see :class:`RetryPolicy.timeout_s`) and
    :class:`CellTimeout` is raised for the retry loop to handle.
    """
    inject.check(spec.index)
    if timeout_s is None:
        return run_cell(spec, realization)
    box: list[CellOutcome] = []
    error: list[BaseException] = []

    def _target() -> None:
        try:
            box.append(run_cell(spec, realization))
        except BaseException as exc:  # noqa: BLE001 - reraised in the caller
            error.append(exc)

    thread = threading.Thread(target=_target, daemon=True, name=f"cell-{spec.index}")
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise CellTimeout(
            f"cell {spec.index} ({spec.strategy.name} on {spec.instance.name}) "
            f"exceeded {timeout_s}s"
        )
    if error:
        raise error[0]
    return box[0]


def run_cell_resilient(
    spec: CellSpec,
    realization: Realization | None = None,
    retry: RetryPolicy = DEFAULT_RETRY,
) -> CellOutcome:
    """Run one cell under a retry policy; never raises for cell faults.

    Transient failures (a crashing cell, an injected fault, a timeout)
    are retried up to ``retry.max_attempts`` times with exponential
    backoff, counted as ``grid.cell_retries`` / ``grid.cell_timeouts``
    and traced as ``grid.cell_retry`` events.  A cell that exhausts its
    attempts is *quarantined*: counted as ``grid.cells_quarantined``,
    traced as ``grid.cell_quarantined``, and returned as a structured
    ``kind="quarantined"`` skip so the sweep completes without it.

    ``KeyboardInterrupt``/``SystemExit`` always propagate — resilience
    must not swallow a user abort.
    """
    tracer = get_tracer()
    if realization is None:
        realization = spec.realization()
    timeouts = 0
    delay = retry.backoff_s
    last_error = ""
    for attempt in range(1, retry.max_attempts + 1):
        try:
            outcome = _attempt_cell(spec, realization, retry.timeout_s)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            if isinstance(exc, CellTimeout):
                timeouts += 1
                tracer.count("grid.cell_timeouts")
            last_error = f"{type(exc).__name__}: {exc}"
            if attempt < retry.max_attempts:
                tracer.count("grid.cell_retries")
                tracer.event(
                    "grid.cell_retry",
                    strategy=spec.strategy.name,
                    instance=spec.instance.name,
                    attempt=attempt,
                    error=last_error,
                )
                if delay > 0:
                    time.sleep(delay)
                delay *= retry.backoff_factor
            continue
        return CellOutcome(
            outcome.index,
            outcome.record,
            outcome.skipped,
            outcome.duration_s,
            attempts=attempt,
            timed_out=timeouts,
        )
    tracer.count("grid.cells_quarantined")
    tracer.event(
        "grid.cell_quarantined",
        strategy=spec.strategy.name,
        instance=spec.instance.name,
        attempts=retry.max_attempts,
        error=last_error,
    )
    skipped = SkippedCell(
        spec.strategy.name,
        spec.instance.name,
        last_error,
        kind="quarantined",
        attempts=retry.max_attempts,
    )
    return CellOutcome(
        spec.index, None, skipped, 0.0,
        attempts=retry.max_attempts, timed_out=timeouts,
    )


def _run_chunk_inline(
    chunk: Sequence[CellSpec], retry: RetryPolicy = DEFAULT_RETRY
) -> list[CellOutcome]:
    """Run a chunk in the current process, memoizing realizations per group."""
    outcomes: list[CellOutcome] = []
    realizations: dict[int, Realization] = {}
    for spec in chunk:
        realization = realizations.get(spec.group)
        if realization is None:
            realization = realizations[spec.group] = spec.realization()
        outcomes.append(run_cell_resilient(spec, realization, retry))
    return outcomes


def _worker_isolated(traced: bool, fn: Callable[[], list[CellOutcome]]) -> tuple[
    list[CellOutcome], WorkerTrace | None
]:
    """Run ``fn`` under rebuilt worker tracer state, capturing its trace.

    The worker *always* rebuilds its tracer state: with the ``fork``
    start method a child inherits the parent's enabled tracer and open
    sinks, and writing to those would interleave with the parent.  The
    inherited sinks are dropped without closing (closing would flush the
    parent's duplicated buffer — the parent flushes before forking
    instead) and replaced by a private memory sink when tracing is on.
    """
    tracer = get_tracer()
    tracer.enabled = False
    tracer.sinks = []
    sink: MemorySink | None = None
    if traced:
        from repro.obs.metrics import MetricsRegistry

        sink = MemorySink(capacity=_WORKER_EVENT_CAPACITY)
        tracer.sinks = [sink]
        tracer.registry = MetricsRegistry()
        tracer._stack = []
        tracer.enabled = True
    try:
        outcomes = fn()
    finally:
        tracer.enabled = False
    trace: WorkerTrace | None = None
    if sink is not None:
        trace = WorkerTrace(
            worker=os.getpid(),
            events=tuple(ev.as_dict() for ev in sink.events),
            metrics=tracer.registry.summary(),
        )
    return outcomes, trace


def _worker_chunk(payload: tuple[Sequence[CellSpec], bool, RetryPolicy]) -> tuple[
    list[CellOutcome], WorkerTrace | None
]:
    """Process-pool entry point: run one per-cell chunk, optionally traced."""
    chunk, traced, retry = payload
    chunk = _decode_chunk(chunk)
    return _worker_isolated(traced, lambda: _run_chunk_inline(chunk, retry))


def _worker_packs(
    payload: tuple[Sequence[Sequence[CellSpec]], bool, RetryPolicy]
) -> tuple[list[CellOutcome], WorkerTrace | None]:
    """Process-pool entry point for batch-pack chunks.

    Each pack is compiled and swept inside the worker; a pack the batch
    compiler refuses degrades to the per-cell event kernel *within this
    worker* without failing the chunk.  Lazy import: the batch executor
    imports this module at module level, so the reverse edge must stay
    inside the function.
    """
    packs, traced, retry = payload
    decoded = [_decode_chunk(pack) for pack in packs]

    def _run() -> list[CellOutcome]:
        from repro.analysis.batch import run_pack_chunk

        return run_pack_chunk(decoded, retry)

    return _worker_isolated(traced, _run)


def default_chunk_size(n_cells: int, workers: int) -> int:
    """Contiguous cells per dispatch: ~4 chunks per worker, at least 1.

    Small enough to load-balance uneven cell costs, large enough that
    pickling strategies/instances is amortized over many cells.
    """
    if n_cells <= 0:
        return 1
    return max(1, -(-n_cells // max(1, workers * 4)))


def _chunks(cells: Sequence[CellSpec], size: int) -> list[list[CellSpec]]:
    return [list(cells[i : i + size]) for i in range(0, len(cells), size)]


@dataclass(frozen=True)
class _StrategyRef:
    """Canonical registry spec standing in for a strategy over IPC.

    Occupies ``CellSpec.strategy`` between :func:`_encode_chunk` in the
    parent and :func:`_decode_chunk` in the worker; never escapes the
    pool path.
    """

    spec: str


def _encode_chunk(chunk: list[CellSpec]) -> list[CellSpec]:
    """Swap registry-representable strategies for their canonical specs.

    Strategies the registry cannot round-trip (unregistered classes,
    out-of-band mutations) stay as objects and rely on pickling, exactly
    as before.
    """
    from repro.registry import try_describe_strategy

    specs: dict[int, str | None] = {}
    encoded: list[CellSpec] = []
    for cell in chunk:
        key = id(cell.strategy)
        if key not in specs:
            specs[key] = try_describe_strategy(cell.strategy)
        spec = specs[key]
        encoded.append(
            replace(cell, strategy=_StrategyRef(spec)) if spec is not None else cell
        )
    return encoded


def _decode_chunk(chunk: Sequence[CellSpec]) -> list[CellSpec]:
    """Rebuild strategies from spec strings, one instance per distinct spec.

    The per-chunk memo keeps strategy identity stable within the chunk,
    so grouping and per-strategy timers behave as if the original object
    had been shipped.
    """
    from repro.registry import make_strategy

    built: dict[str, TwoPhaseStrategy] = {}
    decoded: list[CellSpec] = []
    for cell in chunk:
        ref = cell.strategy
        if isinstance(ref, _StrategyRef):
            strategy = built.get(ref.spec)
            if strategy is None:
                strategy = built[ref.spec] = make_strategy(ref.spec)
            cell = replace(cell, strategy=strategy)
        decoded.append(cell)
    return decoded


def _picklable(chunk: list[CellSpec]) -> bool:
    try:
        pickle.dumps(chunk)
    except Exception:
        return False
    return True


def execute_cells(
    cells: Sequence[CellSpec],
    *,
    workers: int = 1,
    chunk_size: int | None = None,
    traced: bool = False,
    retry: RetryPolicy = DEFAULT_RETRY,
) -> tuple[list[CellOutcome], list[WorkerTrace]]:
    """Run every cell and return (outcomes sorted by index, worker traces).

    ``workers <= 1`` runs inline under the caller's tracer (no traces to
    merge).  ``workers > 1`` distributes picklable chunks over a process
    pool, one future per chunk; unpicklable chunks, a pool that cannot
    start, and *individual crashed chunks* (a worker killed mid-flight,
    a broken pool) all fall back inline, so the call always completes
    with the full outcome list.  Inside workers and inline alike, each
    cell runs under ``retry`` (see :func:`run_cell_resilient`).
    """
    if not cells:
        return [], []
    if workers <= 1:
        return _run_chunk_inline(cells, retry), []

    size = chunk_size if chunk_size and chunk_size > 0 else default_chunk_size(
        len(cells), workers
    )
    remote: list[list[CellSpec]] = []  # original chunks (failover recovery)
    shipped: list[list[CellSpec]] = []  # spec-encoded twins submitted to the pool
    inline: list[list[CellSpec]] = []
    for chunk in _chunks(cells, size):
        encoded = _encode_chunk(chunk)
        if _picklable(encoded):
            remote.append(chunk)
            shipped.append(encoded)
        else:
            inline.append(chunk)

    outcomes: list[CellOutcome] = []
    traces: list[WorkerTrace] = []
    if remote:
        # A forked child duplicates any buffered sink bytes; flush first so
        # nothing is written twice when the child tears down.
        tracer = get_tracer()
        for sink in tracer.sinks:
            sink.flush()
        failed: list[list[CellSpec]] = []
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_worker_chunk, (chunk, traced, retry))
                    for chunk in shipped
                ]
                for chunk, future in zip(remote, futures):
                    try:
                        chunk_outcomes, trace = future.result()
                    except (OSError, RuntimeError, pickle.PickleError):
                        # This chunk's worker died (BrokenProcessPool is a
                        # RuntimeError); recover just this chunk inline.
                        tracer.count("grid.chunk_failovers")
                        failed.append(chunk)
                        continue
                    outcomes.extend(chunk_outcomes)
                    if trace is not None:
                        traces.append(trace)
        except (ImportError, OSError, PermissionError, RuntimeError):
            # Pool unavailable (sandboxed interpreter, missing semaphores,
            # failed startup ...): degrade every undone chunk to serial.
            done = {o.index for o in outcomes}
            failed = [
                [spec for spec in chunk if spec.index not in done]
                for chunk in remote
            ]
        inline = inline + [chunk for chunk in failed if chunk]
    for chunk in inline:
        outcomes.extend(_run_chunk_inline(chunk, retry))
    outcomes.sort(key=lambda o: o.index)
    return outcomes, traces


def _pack_chunks(
    packs: Sequence[Sequence[CellSpec]], workers: int
) -> list[list[list[CellSpec]]]:
    """Group whole packs into pool dispatches of roughly equal cell count.

    Packs must ship whole (one compile per pack) and arrive in grid
    enumeration order, which is instance-major — so contiguous filling
    keeps same-instance packs together and their (instance, model, seed)
    realization memos shared within the worker chunk.
    """
    total = sum(len(pack) for pack in packs)
    target = default_chunk_size(total, workers)
    chunks: list[list[list[CellSpec]]] = []
    current: list[list[CellSpec]] = []
    filled = 0
    for pack in packs:
        current.append(list(pack))
        filled += len(pack)
        if filled >= target:
            chunks.append(current)
            current = []
            filled = 0
    if current:
        chunks.append(current)
    return chunks


def execute_packs(
    packs: Sequence[Sequence[CellSpec]],
    *,
    workers: int = 1,
    traced: bool = False,
    retry: RetryPolicy = DEFAULT_RETRY,
) -> tuple[list[CellOutcome], list[WorkerTrace]]:
    """Shard batch packs across the process pool (outcomes index-sorted).

    The pool counterpart of the parent-side pack loop: every chunk of
    same-(strategy, instance) packs is compiled and swept inside a
    worker, with realization memos shared across the packs of a chunk.
    Unpicklable chunks, an unavailable pool, and crashed chunks fall
    back inline exactly like :func:`execute_cells`; a pack the compiler
    refuses degrades to the per-cell kernel inside its worker, so one
    unsupported pack never poisons its chunk.
    """
    if not packs:
        return [], []

    def _inline(batch_of_packs: Sequence[Sequence[CellSpec]]) -> list[CellOutcome]:
        from repro.analysis.batch import run_pack_chunk

        return run_pack_chunk(batch_of_packs, retry)

    if workers <= 1:
        outcomes = _inline(packs)
        outcomes.sort(key=lambda o: o.index)
        return outcomes, []

    remote: list[list[list[CellSpec]]] = []
    shipped: list[list[list[CellSpec]]] = []
    inline: list[list[list[CellSpec]]] = []
    for chunk in _pack_chunks(packs, workers):
        encoded = [_encode_chunk(pack) for pack in chunk]
        if _picklable(encoded):
            remote.append(chunk)
            shipped.append(encoded)
        else:
            inline.append(chunk)

    outcomes: list[CellOutcome] = []
    traces: list[WorkerTrace] = []
    if remote:
        tracer = get_tracer()
        for sink in tracer.sinks:
            sink.flush()
        failed: list[list[list[CellSpec]]] = []
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_worker_packs, (chunk, traced, retry))
                    for chunk in shipped
                ]
                for chunk, future in zip(remote, futures):
                    try:
                        chunk_outcomes, trace = future.result()
                    except (OSError, RuntimeError, pickle.PickleError):
                        tracer.count("grid.chunk_failovers")
                        failed.append(chunk)
                        continue
                    outcomes.extend(chunk_outcomes)
                    if trace is not None:
                        traces.append(trace)
        except (ImportError, OSError, PermissionError, RuntimeError):
            done = {o.index for o in outcomes}
            failed = [
                [[s for s in pack if s.index not in done] for pack in chunk]
                for chunk in remote
            ]
        inline = inline + [
            [pack for pack in chunk if pack] for chunk in failed
        ]
    for chunk in inline:
        if chunk:
            outcomes.extend(_inline(chunk))
    outcomes.sort(key=lambda o: o.index)
    return outcomes, traces
