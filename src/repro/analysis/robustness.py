"""Robustness metrics: survival, makespan inflation, availability curves.

Quantifies the paper's fault-tolerance motivation ("most Hadoop systems
replicate the data for the purpose of tolerating hardware faults"): given
fault scenarios from :mod:`repro.faults`, these helpers measure what each
replication level actually buys —

* **survival rate** — the fraction of scenarios a strategy finishes at
  all (a pinned placement dies with its machine, replication survives);
* **makespan inflation** — survivors' makespan relative to the
  fault-free baseline on the same realization;
* **restart counts** — aborted attempts that had to rerun from scratch;
* **availability curves** — survival/inflation aggregated per
  replication factor, the empirical replication-vs-availability tradeoff;
* **SLO reports** — :func:`slo_report` evaluates declarative objectives
  (``survival_rate >= 95%``, ``p99(fault_run) < 2s``) against a fault
  run, so chaos experiments emit structured pass/fail verdicts
  (:mod:`repro.obs.slo`).

:func:`run_fault_grid` crosses strategies × seeded scenarios exactly like
:func:`repro.analysis.run_grid` crosses strategies × realizations, and the
flat :class:`FaultRunRecord` rows feed the same table/CSV reporting stack
(bench E7 and ``examples/fault_tolerant_scheduling.py`` are the
consumers).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.analysis.stats import Summary, summarize
from repro.core.model import Instance
from repro.core.strategy import TwoPhaseStrategy
from repro.faults.plan import FaultPlan
from repro.obs.tracer import get_tracer
from repro.simulation.engine import SimulationError, simulate
from repro.uncertainty.realization import Realization

__all__ = [
    "FaultRunRecord",
    "MissingBaselineError",
    "run_under_faults",
    "run_fault_grid",
    "survival_rate",
    "inflation_summary",
    "restart_total",
    "availability_curve",
    "slo_report",
]


class MissingBaselineError(ValueError):
    """A statistic needed the 0-failure control arm and it was not usable.

    Raised instead of silently dividing by a zero/NaN baseline: inflation
    is *relative to the fault-free run of the same realization*, so a
    missing or degenerate baseline makes the ratio meaningless — the
    typed error tells the caller to supply (or recompute) the control arm
    rather than shipping ``inf``/``nan`` into downstream tables.
    """


@dataclass(frozen=True)
class FaultRunRecord:
    """One (strategy, fault scenario) cell, flattened for tables and CSV.

    ``makespan`` and ``inflation`` are ``nan`` when the run did not
    survive; ``error`` then carries the engine's explanation (data lost
    vs. stuck).
    """

    strategy: str
    replication: int
    scenario: int
    n_faults: int
    survived: bool
    makespan: float
    baseline_makespan: float
    inflation: float
    restarts: int
    error: str = ""

    def as_dict(self) -> dict[str, object]:
        """CSV row form (nan renders as empty for dead runs)."""
        return {
            "strategy": self.strategy,
            "replication": self.replication,
            "scenario": self.scenario,
            "faults": self.n_faults,
            "survived": self.survived,
            "makespan": "" if math.isnan(self.makespan) else self.makespan,
            "baseline": self.baseline_makespan,
            "inflation": "" if math.isnan(self.inflation) else self.inflation,
            "restarts": self.restarts,
            "error": self.error,
        }


def run_under_faults(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    realization: Realization,
    plan: FaultPlan,
    *,
    scenario: int = 0,
    baseline_makespan: float | None = None,
) -> FaultRunRecord:
    """Run one strategy under one fault scenario and measure the damage.

    The fault-free baseline on the same realization is simulated unless
    ``baseline_makespan`` is supplied (callers sweeping many scenarios
    over one realization should compute it once).  Survivor traces are
    feasibility-checked (durations exempt when the plan degrades speeds —
    remaining work is rescaled mid-run, see
    :meth:`~repro.simulation.trace.ScheduleTrace.validate`).

    The strategy's registry capability envelope is forwarded to the
    engine.  A ``supports_faults=False`` strategy therefore raises
    :class:`~repro.registry.CapabilityError` (a ``TypeError``) out of
    this function rather than being recorded as "did not survive" —
    measured non-survival is reserved for strategies whose *analysis*
    covers faults (e.g. data loss on a pinned placement), not for runs
    outside a policy's declared envelope.
    """
    from repro.registry import capabilities_of

    tracer = get_tracer()
    capabilities = capabilities_of(strategy)
    placement = strategy.place(instance)
    replication = placement.max_replication()
    if baseline_makespan is None:
        baseline = simulate(
            placement, realization, strategy.make_policy(instance, placement)
        )
        baseline_makespan = baseline.makespan
    if not math.isfinite(baseline_makespan) or baseline_makespan <= 0:
        raise MissingBaselineError(
            f"baseline makespan must be finite and > 0 to measure inflation, "
            f"got {baseline_makespan!r} (supply the 0-failure control arm)"
        )
    with tracer.span(
        "fault_run", strategy=strategy.name, scenario=scenario, faults=len(plan.faults)
    ) as span:
        try:
            trace = simulate(
                placement,
                realization,
                strategy.make_policy(instance, placement),
                faults=plan,
                capabilities=capabilities,
                label=f"{strategy.name}/faults[{scenario}]",
            )
        except SimulationError as exc:
            span.set(survived=False)
            return FaultRunRecord(
                strategy=strategy.name,
                replication=replication,
                scenario=scenario,
                n_faults=len(plan.faults),
                survived=False,
                makespan=float("nan"),
                baseline_makespan=baseline_makespan,
                inflation=float("nan"),
                restarts=0,
                error=str(exc),
            )
        trace.validate(
            placement, realization, check_durations=not plan.slowdowns()
        )
        span.set(survived=True, makespan=trace.makespan)
    return FaultRunRecord(
        strategy=strategy.name,
        replication=replication,
        scenario=scenario,
        n_faults=len(plan.faults),
        survived=True,
        makespan=trace.makespan,
        baseline_makespan=baseline_makespan,
        inflation=trace.makespan / baseline_makespan,
        restarts=len(trace.aborted),
        error="",
    )


def run_fault_grid(
    strategies: Sequence[TwoPhaseStrategy],
    instances: Sequence[Instance],
    realizations: Sequence[Realization],
    plans: Sequence[FaultPlan],
) -> list[FaultRunRecord]:
    """Cross strategies × scenarios; scenario ``i`` pairs instance/realization/plan ``i``.

    ``instances``, ``realizations`` and ``plans`` must be equal-length
    parallel sequences (one triple per scenario) — the shape bench E7
    uses.  Baselines are computed once per (strategy, scenario).
    """
    if not len(instances) == len(realizations) == len(plans):
        raise ValueError(
            "instances, realizations and plans must be parallel sequences, got "
            f"lengths {len(instances)}/{len(realizations)}/{len(plans)}"
        )
    records: list[FaultRunRecord] = []
    for strategy in strategies:
        for scenario, (instance, realization, plan) in enumerate(
            zip(instances, realizations, plans)
        ):
            records.append(
                run_under_faults(
                    strategy, instance, realization, plan, scenario=scenario
                )
            )
    return records


def survival_rate(records: Iterable[FaultRunRecord]) -> float:
    """Fraction of records that survived (1.0 for an empty iterable)."""
    records = list(records)
    if not records:
        return 1.0
    return sum(1 for r in records if r.survived) / len(records)


def inflation_summary(records: Iterable[FaultRunRecord]) -> Summary | None:
    """Summary statistics of survivors' makespan inflation.

    ``None`` when nothing survived (there is no inflation to summarize —
    callers render it as a dead cell).  Raises
    :class:`MissingBaselineError` when survivors exist but none carries a
    finite inflation: that means the records were built without the
    0-failure control arm, and averaging NaNs would silently poison the
    summary instead of flagging the missing baseline.
    """
    survivors = [r for r in records if r.survived]
    if not survivors:
        return None
    inflations = [r.inflation for r in survivors if math.isfinite(r.inflation)]
    if not inflations:
        raise MissingBaselineError(
            f"{len(survivors)} survivor(s) but no finite inflation values — "
            "the records lack the 0-failure control arm"
        )
    return summarize(inflations)


def restart_total(records: Iterable[FaultRunRecord]) -> int:
    """Total restarted (aborted-and-rerun) attempts across survivors."""
    return sum(r.restarts for r in records if r.survived)


def slo_report(
    records: Iterable[FaultRunRecord],
    objectives: Sequence[str],
    *,
    registry=None,
):
    """Evaluate SLO objectives against a fault run's records.

    Bridges chaos experiments to :mod:`repro.obs.slo`: fault-run
    statistics are exposed as bare scalars — ``survival_rate``,
    ``mean_inflation``, ``max_inflation``, ``restarts``, ``runs`` — and
    latency objectives like ``p99(fault_run) < 2s`` resolve against
    ``registry`` (default: the live tracer's, so traced runs get span
    timers for free).  Returns a :class:`repro.obs.slo.SLOReport`;
    evaluation is fail-closed, so an objective over a statistic the run
    never produced (e.g. ``mean_inflation`` with zero survivors) FAILs
    rather than passing vacuously.
    """
    from repro.obs.slo import evaluate

    records = list(records)
    extras: dict[str, float] = {
        "survival_rate": survival_rate(records),
        "runs": float(len(records)),
        "restarts": float(restart_total(records)),
    }
    inflation = inflation_summary(records)
    if inflation is not None:
        extras["mean_inflation"] = inflation.mean
        extras["max_inflation"] = inflation.maximum
    if registry is None:
        registry = get_tracer().registry
    return evaluate(objectives, registry=registry, extras=extras)


def availability_curve(records: Iterable[FaultRunRecord]) -> list[dict[str, object]]:
    """Survival and inflation per replication factor, ascending.

    The empirical replication-vs-availability tradeoff: one row per
    replication level seen in ``records``, with its survival rate, mean
    survivor inflation, and restart total — ready for
    :func:`repro.analysis.tables.format_table` or CSV output.
    """
    by_replication: dict[int, list[FaultRunRecord]] = {}
    for record in records:
        by_replication.setdefault(record.replication, []).append(record)
    rows: list[dict[str, object]] = []
    for replication in sorted(by_replication):
        group = by_replication[replication]
        inflation = inflation_summary(group)
        rows.append(
            {
                "replication": replication,
                "runs": len(group),
                "survival rate": survival_rate(group),
                "mean inflation": inflation.mean if inflation else float("nan"),
                "max inflation": inflation.maximum if inflation else float("nan"),
                "restarts": restart_total(group),
            }
        )
    return rows
