"""Grid-experiment driver for the empirical benches.

An :class:`ExperimentGrid` crosses strategies × instances × realization
models × seeds, runs every cell through
:func:`repro.analysis.ratios.measured_ratio`, and returns flat records the
benches aggregate and write out — it is the substrate behind every
empirical paper artifact (benches E1–E16 and the figure sweeps).
Keeping the sweep in one driver means every bench agrees on provenance
fields and determinism.

The driver has four execution modes, freely combined:

* **serial** (``workers=1``, the default) — the historical in-process
  loop, one ``grid.cell`` span per cell;
* **parallel** (``workers=N``) — cells are enumerated up front into
  picklable specs and fanned out over a process pool by
  :mod:`repro.analysis.parallel`; results merge in cell-index order, so
  the record list is identical to the serial run;
* **cached** (``cache=CellCache(...)``) — cell outcomes are fingerprinted
  and persisted by :mod:`repro.analysis.cache`; warm cells skip
  :func:`~repro.analysis.ratios.measured_ratio` entirely.
* **batched** (``batch=True``, the default) — cells whose strategy
  declares the ``supports_batch`` capability are grouped into
  (strategy, instance) packs and replayed by the vectorized NumPy sweep
  (:mod:`repro.analysis.batch`) instead of the per-event kernel; records
  are bit-identical, and ineligible cells transparently fall back.

See ``docs/performance.md`` for the worker model, determinism guarantee,
and cache invalidation rules.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.analysis.cache import CellCache
from repro.analysis.parallel import (
    DEFAULT_RETRY,
    CellOutcome,
    CellSpec,
    RetryPolicy,
    enumerate_cells,
    execute_cells,
    execute_packs,
    model_display_name,
    run_cell_resilient,
)
from repro.analysis.records import ExperimentRecord, SkippedCell
from repro.core.model import Instance
from repro.core.strategy import TwoPhaseStrategy
from repro.obs.merge import merge_registry_summary, replay_events
from repro.obs.provenance import run_manifest
from repro.obs.tracer import get_tracer
from repro.uncertainty.realization import Realization

__all__ = [
    "ExperimentRecord",
    "SkippedCell",
    "ExperimentGrid",
    "RetryPolicy",
    "run_grid",
    "ProgressCallback",
]

RealizationFactory = Callable[[Instance, int], Realization]

#: Called after each grid cell with (cells_done, cells_total, record) —
#: ``record`` is None when the cell was skipped (incompatible pair).
ProgressCallback = Callable[[int, int, "ExperimentRecord | None"], None]


@dataclass
class ExperimentGrid:
    """Declarative sweep specification.

    Attributes
    ----------
    strategies:
        The strategies to run.  Entries may be instantiated strategies or
        registry spec strings (``"ls_group[k=3]"``); strings are built
        through :func:`repro.registry.make_strategy` on construction.
        Group strategies must match each instance's ``m`` — incompatible
        pairs are skipped and recorded as :class:`SkippedCell` entries in
        :attr:`skipped`.
    instances:
        The instances to run on.
    realization_models:
        Stochastic model names (see
        :data:`repro.uncertainty.stochastic.STOCHASTIC_MODELS`) and/or
        custom factories.
    seeds:
        Seeds per (instance, model) pair.
    exact_limit:
        Passed to :func:`repro.exact.optimal.optimal_makespan`.
    progress:
        Optional :data:`ProgressCallback` invoked after every cell —
        long sweeps can report liveness without the driver growing a UI.
        In parallel mode it fires during the deterministic merge, in cell
        order, after computation finishes.
    workers:
        Process-pool width; ``1`` (default) runs in-process.  Any ``N>1``
        produces the same record list as the serial run.
    cache:
        Optional :class:`~repro.analysis.cache.CellCache`; warm cells are
        served from disk without calling ``measured_ratio``.
    chunk_size:
        Cells per worker dispatch (default: auto, ~4 chunks per worker).
    retry:
        Per-cell :class:`~repro.analysis.parallel.RetryPolicy`.  Crashing
        cells are retried with backoff; cells that exhaust their attempts
        land in :attr:`skipped` as ``kind="quarantined"`` entries rather
        than aborting the sweep.
    batch:
        Route ``supports_batch`` strategies through the vectorized batch
        backend (default on).  Records are bit-identical to the per-cell
        path — disable only to benchmark the event kernel itself.
    batched_cells:
        How many cells of the last ``run()`` the batch backend served
        (cache hits excluded).  Mirrored into the grid manifest.
    resilience:
        Accumulated fault accounting for the last ``run()``: total
        ``retries`` (attempts beyond the first), ``timeouts``, and
        ``quarantined`` cells.  Mirrored into the grid manifest.
    """

    strategies: Sequence[TwoPhaseStrategy | str]
    instances: Sequence[Instance]
    realization_models: Sequence[str | RealizationFactory]
    seeds: Sequence[int] = (0,)
    exact_limit: int = 22
    skipped: list[SkippedCell] = field(default_factory=list)
    progress: ProgressCallback | None = None
    workers: int = 1
    cache: CellCache | None = None
    chunk_size: int | None = None
    retry: RetryPolicy = DEFAULT_RETRY
    batch: bool = True
    batched_cells: int = field(default=0, init=False)
    resilience: dict[str, int] = field(
        default_factory=lambda: {"retries": 0, "timeouts": 0, "quarantined": 0}
    )

    def __post_init__(self) -> None:
        if any(isinstance(s, str) for s in self.strategies):
            from repro.registry import make_strategy

            self.strategies = [
                make_strategy(s) if isinstance(s, str) else s
                for s in self.strategies
            ]

    def total_cells(self) -> int:
        """Number of grid cells ``run()`` will attempt."""
        return (
            len(self.instances)
            * len(self.realization_models)
            * len(self.seeds)
            * len(self.strategies)
        )

    def run(self) -> list[ExperimentRecord]:
        tracer = get_tracer()
        total = self.total_cells()
        self.batched_cells = 0
        with tracer.span(
            "run_grid",
            strategies=len(self.strategies),
            instances=len(self.instances),
            models=len(self.realization_models),
            seeds=len(self.seeds),
            cells=total,
            workers=self.workers,
            cached=self.cache is not None,
        ) as grid_span:
            cells = enumerate_cells(
                self.strategies,
                self.instances,
                self.realization_models,
                self.seeds,
                self.exact_limit,
            )
            if self.workers <= 1:
                records = self._run_serial(cells, total, tracer)
            else:
                records = self._run_parallel(cells, total, tracer)
        if tracer.enabled:
            self._emit_manifest(tracer, records, total, grid_span.duration)
        return records

    # -- execution paths ---------------------------------------------------

    def _run_serial(self, cells: list[CellSpec], total: int, tracer) -> list[ExperimentRecord]:
        """The in-process path: one streaming pass in enumeration order.

        Cache lookups, computation, cache stores, and progress callbacks
        all interleave per cell, so long sweeps stay live.  Realizations
        are sampled once per (instance, model, seed) group, as always.
        """
        records: list[ExperimentRecord] = []
        realizations: dict[int, Realization] = {}
        batched = self._run_batch(cells, realizations, tracer)
        done = 0
        for spec in cells:
            outcome = batched.pop(spec.index, None)
            if outcome is None:
                outcome = self._lookup(spec, tracer)
            if outcome is None:
                realization = realizations.get(spec.group)
                if realization is None:
                    realization = realizations[spec.group] = spec.realization()
                outcome = run_cell_resilient(spec, realization, self.retry)
                if self.cache is not None:
                    self.cache.put(spec, outcome)
            done += 1
            self._fold(outcome, done, total, records)
        return records

    def _run_parallel(
        self, cells: list[CellSpec], total: int, tracer
    ) -> list[ExperimentRecord]:
        """The pooled path: resolve warm cells, fan out the rest, merge.

        Batch-eligible cells ship to the pool as whole (strategy,
        instance) *packs* — workers compile the plan and run the
        vectorized sweep themselves, so batch and parallel compose
        instead of the sweep monopolizing the parent.  Results are
        merged strictly by cell index, so the record list — and the
        order of ``progress`` callbacks — matches the serial run
        regardless of worker completion order.
        """
        packs, pack_specs, hits = self._collect_packs(cells, tracer)
        pending: list[CellSpec] = []
        for spec in cells:
            if spec.index in pack_specs:
                continue
            outcome = self._lookup(spec, tracer)
            if outcome is None:
                pending.append(spec)
            else:
                hits.append(outcome)
        swept, pack_traces = execute_packs(
            packs,
            workers=self.workers,
            traced=tracer.enabled,
            retry=self.retry,
        )
        computed, worker_traces = execute_cells(
            pending,
            workers=self.workers,
            chunk_size=self.chunk_size,
            traced=tracer.enabled,
            retry=self.retry,
        )
        for wt in pack_traces + worker_traces:
            replay_events(tracer, wt.events, worker=wt.worker)
            merge_registry_summary(tracer.registry, wt.metrics)
        if self.cache is not None:
            by_index = {spec.index: spec for spec in pending}
            by_index.update(pack_specs)
            for outcome in swept + computed:
                spec = by_index.get(outcome.index)
                if spec is not None:
                    self.cache.put(spec, outcome)
        records: list[ExperimentRecord] = []
        done = 0
        for outcome in sorted(hits + swept + computed, key=lambda o: o.index):
            done += 1
            self._fold(outcome, done, total, records)
        return records

    def _collect_packs(
        self, cells: list[CellSpec], tracer
    ) -> tuple[list[list[CellSpec]], dict[int, CellSpec], list[CellOutcome]]:
        """Claim batch-eligible cells: cold ones as packs, warm as hits.

        Cache probes happen here, exactly once per eligible cell; the
        returned index → spec map tells the main loop which cells are
        claimed (so it neither re-probes nor fans them out per-cell).
        Plans are *not* compiled in the parent: the workers compile (and
        verify) per pack, and a refused pack degrades to the per-cell
        kernel inside its worker.
        """
        if not self.batch:
            return [], {}, []
        from repro.faults import inject

        if inject.active_spec() is not None:
            # The cell-fault injection harness validates the per-cell
            # resilient executor; batching would mask the injected faults.
            return [], {}, []
        from repro.analysis.batch import batch_eligible, group_packs

        eligible = [spec for spec in cells if batch_eligible(spec)]
        packs: list[list[CellSpec]] = []
        pack_specs: dict[int, CellSpec] = {}
        hits: list[CellOutcome] = []
        for pack in group_packs(eligible):
            cold: list[CellSpec] = []
            for spec in pack:
                pack_specs[spec.index] = spec
                outcome = self._lookup(spec, tracer)
                if outcome is None:
                    cold.append(spec)
                else:
                    hits.append(outcome)
            if cold:
                packs.append(cold)
        return packs, pack_specs, hits

    def _run_batch(
        self, cells: list[CellSpec], realizations: dict[int, Realization], tracer
    ) -> dict[int, CellOutcome]:
        """Serve ``supports_batch`` cells via the vectorized sweep.

        Returns outcomes keyed by cell index.  Cache probes happen here
        (exactly once per eligible cell — the main loops skip indices this
        dict covers), and computed outcomes are stored back, so caching
        semantics match the per-cell path.  Packs whose structure the
        batch compiler rejects simply stay out of the dict and take the
        event-kernel path unchanged.
        """
        if not self.batch:
            return {}
        from repro.faults import inject

        if inject.active_spec() is not None:
            # The cell-fault injection harness validates the per-cell
            # resilient executor; batching would mask the injected faults.
            return {}
        from repro.analysis.batch import (
            batch_eligible,
            execute_pack,
            group_packs,
            try_plan,
        )

        outcomes: dict[int, CellOutcome] = {}
        eligible = [spec for spec in cells if batch_eligible(spec)]
        optima: dict[int, object] = {}
        for pack in group_packs(eligible):
            plan = try_plan(pack[0])
            if plan is None:
                continue
            cold: list[CellSpec] = []
            for spec in pack:
                hit = self._lookup(spec, tracer)
                if hit is not None:
                    outcomes[spec.index] = hit
                else:
                    cold.append(spec)
            if not cold:
                continue
            pack_outcomes = execute_pack(cold, realizations, optima, tracer, plan=plan)
            if pack_outcomes is None:
                continue
            for spec, outcome in zip(cold, pack_outcomes):
                outcomes[spec.index] = outcome
                if self.cache is not None:
                    self.cache.put(spec, outcome)
        return outcomes

    def _lookup(self, spec: CellSpec, tracer) -> CellOutcome | None:
        """Cache probe for one cell, with warm-cell counters and event."""
        if self.cache is None:
            return None
        outcome = self.cache.get(spec)
        if outcome is None:
            return None
        # Keep the grid's aggregate counters meaningful on warm runs.
        if outcome.skipped is not None:
            tracer.count("grid.cells_skipped")
        else:
            tracer.count("grid.cells_done")
        tracer.event(
            "grid.cell_cached",
            strategy=spec.strategy.name,
            instance=spec.instance.name,
            model=spec.model_name,
            seed=spec.seed,
        )
        return outcome

    def _fold(
        self,
        outcome: CellOutcome,
        done: int,
        total: int,
        records: list[ExperimentRecord],
    ) -> None:
        """Accumulate one outcome into records/skips and report progress."""
        self.resilience["retries"] += max(0, outcome.attempts - 1)
        self.resilience["timeouts"] += outcome.timed_out
        if outcome.batched:
            self.batched_cells += 1
        if outcome.skipped is not None:
            if outcome.skipped.kind == "quarantined":
                self.resilience["quarantined"] += 1
            self.skipped.append(outcome.skipped)
        elif outcome.record is not None:
            records.append(outcome.record)
        if self.progress is not None:
            self.progress(done, total, outcome.record)

    def _emit_manifest(
        self, tracer, records: list[ExperimentRecord], total: int, duration: float
    ) -> None:
        from repro.registry import capabilities_of, try_describe_strategy

        specs: list[str] = []
        capability_sets: list[list[str] | None] = []
        for s in self.strategies:
            caps = capabilities_of(s)
            specs.append(try_describe_strategy(s) or s.name)
            capability_sets.append(list(caps.flags()) if caps is not None else None)
        params: dict[str, object] = {
            "strategies": [s.name for s in self.strategies],
            "strategy_specs": specs,
            "strategy_capabilities": capability_sets,
            "instances": [i.name for i in self.instances],
            "models": [model_display_name(m) for m in self.realization_models],
            "seeds": list(self.seeds),
            "exact_limit": self.exact_limit,
            "skipped": len(self.skipped),
            "workers": self.workers,
            "batch": self.batch,
            "batched_cells": self.batched_cells,
            "resilience": dict(self.resilience),
        }
        if self.cache is not None:
            params["cache"] = self.cache.stats()
        timers = {
            name: {
                "count": t.count,
                "mean_s": round(t.mean, 6),
                "p50_s": round(t.p50, 6),
                "p90_s": round(t.p90, 6),
                "p99_s": round(t.p99, 6),
                "max_s": round(t.max, 6),
            }
            for name, t in sorted(tracer.registry.timers.items())
            if t.count and not name.startswith("profile.")
        }
        if timers:
            params["timers"] = timers
        profile = [
            {
                "func": name[len("profile."):],
                "cells": t.count,
                "cum_s": round(t.total, 6),
            }
            for name, t in sorted(
                tracer.registry.timers.items(),
                key=lambda item: -item[1].total,
            )
            if name.startswith("profile.") and t.count
        ][:10]
        if profile:
            params["profile"] = profile
        tracer.manifest(
            run_manifest(
                "grid",
                f"{len(records)} records / {total} cells",
                params=params,
                timing={"run_grid_s": duration},
            )
        )


def run_grid(
    strategies: Sequence[TwoPhaseStrategy | str],
    instances: Iterable[Instance],
    realization_models: Sequence[str | RealizationFactory],
    *,
    seeds: Sequence[int] = (0,),
    exact_limit: int = 22,
    progress: ProgressCallback | None = None,
    workers: int = 1,
    cache: CellCache | None = None,
    chunk_size: int | None = None,
    retry: RetryPolicy = DEFAULT_RETRY,
    batch: bool = True,
) -> list[ExperimentRecord]:
    """One-call wrapper around :class:`ExperimentGrid`."""
    grid = ExperimentGrid(
        strategies=list(strategies),
        instances=list(instances),
        realization_models=list(realization_models),
        seeds=list(seeds),
        exact_limit=exact_limit,
        progress=progress,
        workers=workers,
        cache=cache,
        chunk_size=chunk_size,
        retry=retry,
        batch=batch,
    )
    return grid.run()
