"""Grid-experiment driver for the empirical benches.

An :class:`ExperimentGrid` crosses strategies × instances × realization
models × seeds, runs every cell through
:func:`repro.analysis.ratios.measured_ratio`, and returns flat records the
benches aggregate and write out.  Keeping the sweep in one driver means
every bench agrees on provenance fields and determinism.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.analysis.ratios import RatioRecord, measured_ratio
from repro.core.model import Instance
from repro.core.strategy import TwoPhaseStrategy
from repro.obs.provenance import run_manifest
from repro.obs.tracer import get_tracer
from repro.uncertainty.realization import Realization
from repro.uncertainty.stochastic import sample_realization

__all__ = ["ExperimentRecord", "ExperimentGrid", "run_grid", "ProgressCallback"]

RealizationFactory = Callable[[Instance, int], Realization]

#: Called after each grid cell with (cells_done, cells_total, record) —
#: ``record`` is None when the cell was skipped (incompatible pair).
ProgressCallback = Callable[[int, int, "ExperimentRecord | None"], None]


@dataclass(frozen=True)
class ExperimentRecord:
    """One cell of the grid, flattened for CSV output."""

    strategy: str
    instance_name: str
    n: int
    m: int
    alpha: float
    realization: str
    seed: int
    replication: int
    makespan: float
    optimum: float
    optimum_exact: bool
    ratio: float
    guarantee: float | None
    within_guarantee: bool | None

    @staticmethod
    def from_ratio(record: RatioRecord, seed: int) -> "ExperimentRecord":
        out = record.outcome
        inst = out.placement.instance
        return ExperimentRecord(
            strategy=out.strategy_name,
            instance_name=inst.name,
            n=inst.n,
            m=inst.m,
            alpha=inst.alpha,
            realization=out.trace.label.split("/")[-1],
            seed=seed,
            replication=out.replication,
            makespan=out.makespan,
            optimum=record.optimum.value,
            optimum_exact=record.optimum.optimal,
            ratio=record.ratio,
            guarantee=record.guarantee,
            within_guarantee=record.within_guarantee,
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "strategy": self.strategy,
            "instance": self.instance_name,
            "n": self.n,
            "m": self.m,
            "alpha": self.alpha,
            "realization": self.realization,
            "seed": self.seed,
            "replication": self.replication,
            "makespan": self.makespan,
            "optimum": self.optimum,
            "optimum_exact": self.optimum_exact,
            "ratio": self.ratio,
            "guarantee": "" if self.guarantee is None else self.guarantee,
            "within_guarantee": "" if self.within_guarantee is None else self.within_guarantee,
        }


def _stochastic_factory(model: str) -> RealizationFactory:
    def make(instance: Instance, seed: int) -> Realization:
        return sample_realization(instance, model, seed)

    return make


@dataclass
class ExperimentGrid:
    """Declarative sweep specification.

    Attributes
    ----------
    strategies:
        The strategies to run (instantiated; group strategies must match
        each instance's ``m`` — incompatible pairs are skipped and
        counted in :attr:`skipped`).
    instances:
        The instances to run on.
    realization_models:
        Stochastic model names (see
        :data:`repro.uncertainty.stochastic.STOCHASTIC_MODELS`) and/or
        custom factories.
    seeds:
        Seeds per (instance, model) pair.
    exact_limit:
        Passed to :func:`repro.exact.optimal.optimal_makespan`.
    progress:
        Optional :data:`ProgressCallback` invoked after every cell —
        long sweeps can report liveness without the driver growing a UI.
    """

    strategies: Sequence[TwoPhaseStrategy]
    instances: Sequence[Instance]
    realization_models: Sequence[str | RealizationFactory]
    seeds: Sequence[int] = (0,)
    exact_limit: int = 22
    skipped: list[str] = field(default_factory=list)
    progress: ProgressCallback | None = None

    def total_cells(self) -> int:
        """Number of grid cells ``run()`` will attempt."""
        return (
            len(self.instances)
            * len(self.realization_models)
            * len(self.seeds)
            * len(self.strategies)
        )

    def run(self) -> list[ExperimentRecord]:
        tracer = get_tracer()
        records: list[ExperimentRecord] = []
        total = self.total_cells()
        done = 0
        with tracer.span(
            "run_grid",
            strategies=len(self.strategies),
            instances=len(self.instances),
            models=len(self.realization_models),
            seeds=len(self.seeds),
            cells=total,
        ) as grid_span:
            for instance in self.instances:
                for model in self.realization_models:
                    factory = _stochastic_factory(model) if isinstance(model, str) else model
                    model_name = model if isinstance(model, str) else getattr(
                        model, "__name__", "custom"
                    )
                    for seed in self.seeds:
                        realization = factory(instance, seed)
                        for strategy in self.strategies:
                            done += 1
                            record: ExperimentRecord | None = None
                            with tracer.span(
                                "grid.cell",
                                strategy=strategy.name,
                                instance=instance.name,
                                model=model_name,
                                seed=seed,
                            ) as cell_span:
                                try:
                                    rec = measured_ratio(
                                        strategy,
                                        instance,
                                        realization,
                                        exact_limit=self.exact_limit,
                                    )
                                except ValueError as exc:
                                    # Group strategies reject m not divisible
                                    # by k; record and move on.
                                    self.skipped.append(
                                        f"{strategy.name} on {instance.name}: {exc}"
                                    )
                                    tracer.count("grid.cells_skipped")
                                    cell_span.set(skipped=True)
                                else:
                                    record = ExperimentRecord.from_ratio(rec, seed)
                                    records.append(record)
                                    tracer.count("grid.cells_done")
                                    cell_span.set(ratio=record.ratio)
                            if tracer.enabled:
                                tracer.registry.timer(
                                    f"grid.strategy.{strategy.name}"
                                ).observe(cell_span.duration)
                            if self.progress is not None:
                                self.progress(done, total, record)
        if tracer.enabled:
            tracer.manifest(
                run_manifest(
                    "grid",
                    f"{len(records)} records / {total} cells",
                    params={
                        "strategies": [s.name for s in self.strategies],
                        "instances": [i.name for i in self.instances],
                        "models": [
                            m if isinstance(m, str) else getattr(m, "__name__", "custom")
                            for m in self.realization_models
                        ],
                        "seeds": list(self.seeds),
                        "exact_limit": self.exact_limit,
                        "skipped": len(self.skipped),
                    },
                    timing={"run_grid_s": grid_span.duration},
                )
            )
        return records


def run_grid(
    strategies: Sequence[TwoPhaseStrategy],
    instances: Iterable[Instance],
    realization_models: Sequence[str | RealizationFactory],
    *,
    seeds: Sequence[int] = (0,),
    exact_limit: int = 22,
    progress: ProgressCallback | None = None,
) -> list[ExperimentRecord]:
    """One-call wrapper around :class:`ExperimentGrid`."""
    grid = ExperimentGrid(
        strategies=list(strategies),
        instances=list(instances),
        realization_models=list(realization_models),
        seeds=list(seeds),
        exact_limit=exact_limit,
        progress=progress,
    )
    return grid.run()
