"""ASCII line plots for the figure benches.

matplotlib is unavailable in the offline environment, so the reproduced
figures (ratio-vs-replication, memory-vs-makespan) are rendered as text:
a fixed character grid, one glyph per series, axes with numeric labels.
Geometry is exact to the cell: a point lands in the cell containing its
(x, y) after linear (or log) mapping, so monotone curves read correctly.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

__all__ = ["Series", "render_plot"]

_DEFAULT_GLYPHS = "ox+*#@%&"


@dataclass
class Series:
    """One plotted curve: points plus a label."""

    xs: Sequence[float]
    ys: Sequence[float]
    label: str = ""
    glyph: str = ""

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.label!r}: xs and ys lengths differ "
                f"({len(self.xs)} != {len(self.ys)})"
            )
        if not self.xs:
            raise ValueError(f"series {self.label!r} is empty")


@dataclass
class _Axes:
    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float
    x_log: bool = False

    def x_to_col(self, x: float, width: int) -> int:
        if self.x_log:
            lo, hi, v = math.log10(self.x_lo), math.log10(self.x_hi), math.log10(x)
        else:
            lo, hi, v = self.x_lo, self.x_hi, x
        if hi == lo:
            return 0
        frac = (v - lo) / (hi - lo)
        return min(int(frac * (width - 1) + 0.5), width - 1)

    def y_to_row(self, y: float, height: int) -> int:
        if self.y_hi == self.y_lo:
            return height - 1
        frac = (y - self.y_lo) / (self.y_hi - self.y_lo)
        return min(int((1.0 - frac) * (height - 1) + 0.5), height - 1)


def render_plot(
    series: Sequence[Series],
    *,
    width: int = 70,
    height: int = 22,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    x_log: bool = False,
) -> str:
    """Render the series on one shared-axes grid.

    ``x_log`` plots x on a log10 scale (used by the replication axis of
    Figure 3, which spans 1..210).
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 20 or height < 8:
        raise ValueError("plot grid too small to be readable (min 20x8)")

    xs_all = [x for s in series for x in s.xs]
    ys_all = [y for s in series for y in s.ys]
    if x_log and min(xs_all) <= 0:
        raise ValueError("x_log requires strictly positive x values")
    axes = _Axes(min(xs_all), max(xs_all), min(ys_all), max(ys_all), x_log=x_log)
    # Pad the y range slightly so extreme points don't sit on the frame.
    pad = 0.02 * (axes.y_hi - axes.y_lo or 1.0)
    axes.y_lo -= pad
    axes.y_hi += pad

    grid = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(series):
        glyph = s.glyph or _DEFAULT_GLYPHS[idx % len(_DEFAULT_GLYPHS)]
        for x, y in zip(s.xs, s.ys):
            col = axes.x_to_col(x, width)
            row = axes.y_to_row(y, height)
            cell = grid[row][col]
            grid[row][col] = glyph if cell == " " else "?"  # ? marks overlap

    lines: list[str] = []
    if title:
        lines.append(title)
    y_hi_lbl = f"{axes.y_hi:.4g}"
    y_lo_lbl = f"{axes.y_lo:.4g}"
    margin = max(len(y_hi_lbl), len(y_lo_lbl)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            label = y_hi_lbl.rjust(margin - 1)
        elif r == height - 1:
            label = y_lo_lbl.rjust(margin - 1)
        else:
            label = " " * (margin - 1)
        lines.append(f"{label}|{''.join(row)}|")
    x_lo_lbl = f"{axes.x_lo:.4g}"
    x_hi_lbl = f"{axes.x_hi:.4g}"
    footer = " " * margin + x_lo_lbl + " " * max(
        1, width - len(x_lo_lbl) - len(x_hi_lbl)
    ) + x_hi_lbl
    lines.append(footer)
    scale = " (log x)" if x_log else ""
    lines.append(" " * margin + f"{x_label}{scale}  [y: {y_label}]")
    legend = "  ".join(
        f"{s.glyph or _DEFAULT_GLYPHS[i % len(_DEFAULT_GLYPHS)]}={s.label}"
        for i, s in enumerate(series)
        if s.label
    )
    if legend:
        lines.append(" " * margin + legend)
    return "\n".join(lines)
