"""Experiment harness: runs, ratios, statistics, tables, plots, CSV.

The sweep substrate behind every empirical paper artifact: the grid
driver (:mod:`~repro.analysis.experiment`) with its parallel backend
(:mod:`~repro.analysis.parallel`) and on-disk cell cache
(:mod:`~repro.analysis.cache`), the per-cell measurement kernel
(:mod:`~repro.analysis.ratios`), and the reporting stack the benches
render artifacts with.
"""

from repro.analysis.ascii_plot import Series, render_plot
from repro.analysis.calibration import (
    alpha_from_residual_model,
    calibration_report,
    fit_alpha,
)
from repro.analysis.comparison import PairedComparison, compare_strategies, sign_test_pvalue
from repro.analysis.cache import CellCache, cell_fingerprint
from repro.analysis.csvio import read_csv, results_dir, write_csv
from repro.analysis.experiment import (
    ExperimentGrid,
    ExperimentRecord,
    RetryPolicy,
    SkippedCell,
    run_grid,
)
from repro.analysis.ratios import RatioRecord, StrategyOutcome, measured_ratio, run_strategy
from repro.analysis.robustness import (
    FaultRunRecord,
    availability_curve,
    inflation_summary,
    restart_total,
    run_fault_grid,
    run_under_faults,
    survival_rate,
)
from repro.analysis.regret import (
    ScenarioEvaluation,
    build_scenarios,
    evaluate_scenarios,
    minmax_regret_choice,
)
from repro.analysis.regimes import (
    alpha_crossovers,
    clairvoyance_value,
    dominant_strategy_map,
    replication_value,
)
from repro.analysis.sensitivity import (
    robustness_radius,
    single_task_sensitivity,
    slack_profile,
    worst_single_inflation,
)
from repro.analysis.stats import Summary, ci_halfwidth, summarize
from repro.analysis.svg_plot import SvgSeries, render_svg_chart, render_svg_gantt
from repro.analysis.tables import format_markdown_table, format_table, format_value

__all__ = [
    "run_strategy",
    "measured_ratio",
    "dominant_strategy_map",
    "alpha_crossovers",
    "clairvoyance_value",
    "replication_value",
    "single_task_sensitivity",
    "worst_single_inflation",
    "slack_profile",
    "robustness_radius",
    "compare_strategies",
    "PairedComparison",
    "sign_test_pvalue",
    "fit_alpha",
    "calibration_report",
    "alpha_from_residual_model",
    "SvgSeries",
    "render_svg_chart",
    "render_svg_gantt",
    "build_scenarios",
    "evaluate_scenarios",
    "minmax_regret_choice",
    "ScenarioEvaluation",
    "StrategyOutcome",
    "RatioRecord",
    "ExperimentGrid",
    "ExperimentRecord",
    "RetryPolicy",
    "SkippedCell",
    "CellCache",
    "cell_fingerprint",
    "run_grid",
    "FaultRunRecord",
    "run_under_faults",
    "run_fault_grid",
    "survival_rate",
    "inflation_summary",
    "restart_total",
    "availability_curve",
    "Summary",
    "summarize",
    "ci_halfwidth",
    "format_table",
    "format_markdown_table",
    "format_value",
    "Series",
    "render_plot",
    "write_csv",
    "read_csv",
    "results_dir",
]
