"""Paired strategy comparisons with proper statistics.

The empirical benches claim orderings ("A beats B on average"); this
module makes those claims statistically honest.  Both strategies run on
the *same* instances and realizations (common random numbers — the
variance-reduction technique that makes paired comparisons far tighter
than independent ones), and the comparison reports:

* the mean paired difference with a 95% CI (normal approximation),
* the win/tie/loss counts and a two-sided sign-test p-value,
* the geometric mean ratio of the two makespans.

Used by the E-series benches' assertions and available to users comparing
their own strategies.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.ratios import run_strategy
from repro.analysis.stats import ci_halfwidth
from repro.core.model import Instance
from repro.core.strategy import TwoPhaseStrategy
from repro.uncertainty.realization import Realization

__all__ = ["PairedComparison", "compare_strategies", "sign_test_pvalue"]


def sign_test_pvalue(wins: int, losses: int) -> float:
    """Two-sided sign test: P(|Binom(wins+losses, ½) − n/2| ≥ observed).

    Ties are excluded (standard practice).  Returns 1.0 when there are no
    informative pairs.
    """
    n = wins + losses
    if n == 0:
        return 1.0
    k = max(wins, losses)
    # Two-sided tail of Binomial(n, 1/2).
    tail = sum(math.comb(n, i) for i in range(k, n + 1)) / 2.0**n
    return min(1.0, 2.0 * tail)


@dataclass(frozen=True)
class PairedComparison:
    """Result of a paired A-vs-B makespan comparison (lower is better)."""

    name_a: str
    name_b: str
    n_pairs: int
    mean_diff: float  # mean(makespan_a - makespan_b); negative = A better
    ci95_diff: float
    wins_a: int
    ties: int
    wins_b: int
    p_value: float
    geo_mean_ratio: float  # geometric mean of a/b; < 1 = A better

    @property
    def a_better(self) -> bool:
        """Whether A is significantly better (sign test at 5%)."""
        return self.wins_a > self.wins_b and self.p_value < 0.05

    def render(self) -> str:
        return (
            f"{self.name_a} vs {self.name_b} over {self.n_pairs} paired runs: "
            f"mean diff {self.mean_diff:+.4g} ± {self.ci95_diff:.4g}, "
            f"W/T/L {self.wins_a}/{self.ties}/{self.wins_b}, "
            f"sign-test p={self.p_value:.3g}, "
            f"geo-mean ratio {self.geo_mean_ratio:.4f}"
        )


def compare_strategies(
    strategy_a: TwoPhaseStrategy,
    strategy_b: TwoPhaseStrategy,
    cases: Sequence[tuple[Instance, Realization]],
    *,
    rel_tie_tol: float = 1e-9,
) -> PairedComparison:
    """Run both strategies on every (instance, realization) pair.

    The same realization object feeds both strategies — common random
    numbers by construction.
    """
    if not cases:
        raise ValueError("cases must be non-empty")
    diffs: list[float] = []
    log_ratios: list[float] = []
    wins_a = ties = wins_b = 0
    for instance, realization in cases:
        a = run_strategy(strategy_a, instance, realization, validate=False).makespan
        b = run_strategy(strategy_b, instance, realization, validate=False).makespan
        diffs.append(a - b)
        log_ratios.append(math.log(a / b))
        if math.isclose(a, b, rel_tol=rel_tie_tol):
            ties += 1
        elif a < b:
            wins_a += 1
        else:
            wins_b += 1
    return PairedComparison(
        name_a=strategy_a.name,
        name_b=strategy_b.name,
        n_pairs=len(cases),
        mean_diff=float(np.mean(diffs)),
        ci95_diff=ci_halfwidth(diffs),
        wins_a=wins_a,
        ties=ties,
        wins_b=wins_b,
        p_value=sign_test_pvalue(wins_a, wins_b),
        geo_mean_ratio=float(math.exp(np.mean(log_ratios))),
    )
