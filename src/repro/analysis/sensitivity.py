"""Schedule sensitivity and robustness metrics.

Serves the E9 robustness-metrics artifact (``bench_e9_robustness_metrics``
→ ``results/e9_robustness_metrics.*``).

The related-work section surveys *robust scheduling* — slack-based
techniques, sensitivity analysis, scenario methods — as the alternative to
the paper's replication approach.  This module implements the standard
robustness measurements so the two approaches can be compared on equal
footing (and so the library is useful to someone coming from that
literature):

``single_task_sensitivity``
    For each task, the makespan after inflating *only that task* to its
    band maximum — the makespan's gradient-like response to one estimate
    being maximally wrong.
``worst_single_inflation``
    Max over tasks of the above — the classical "worst single deviation"
    robustness metric.
``slack_profile``
    Per-machine slack of a placement at a target makespan: how much extra
    time each machine can absorb before the target breaks (the quantity
    slack-based robust scheduling pads).
``robustness_radius``
    The largest uniform inflation factor every task can suffer before the
    makespan exceeds a target — the interval-uncertainty stability radius
    of the schedule.

All metrics act on a *strategy + instance* pair, replaying Phase 2 where
the strategy is adaptive (replication changes sensitivity — that is the
paper's whole point, and bench users can now measure it directly).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro._validation import check_positive_float
from repro.analysis.ratios import run_strategy
from repro.core.model import Instance
from repro.core.strategy import TwoPhaseStrategy
from repro.uncertainty.realization import factors_realization, truthful_realization

__all__ = [
    "single_task_sensitivity",
    "worst_single_inflation",
    "slack_profile",
    "robustness_radius",
]


def single_task_sensitivity(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    *,
    base_factors: Sequence[float] | None = None,
) -> list[float]:
    """Makespan after inflating each task (alone) to its band maximum.

    ``result[j]`` is the Phase-2 makespan when task ``j`` runs at
    ``alpha * p̃_j`` and every other task at its base factor (1.0 by
    default).  Replication-rich strategies absorb single inflations by
    re-routing; pinned strategies eat them whole.
    """
    a = instance.alpha
    base = [1.0] * instance.n if base_factors is None else list(base_factors)
    out: list[float] = []
    for j in range(instance.n):
        factors = list(base)
        factors[j] = a
        real = factors_realization(instance, factors, label=f"inflate[{j}]")
        out.append(run_strategy(strategy, instance, real, validate=False).makespan)
    return out


def worst_single_inflation(
    strategy: TwoPhaseStrategy, instance: Instance
) -> tuple[int, float]:
    """The task whose solo inflation hurts most, and the resulting makespan."""
    sens = single_task_sensitivity(strategy, instance)
    j = max(range(len(sens)), key=lambda j: (sens[j], j))
    return j, sens[j]


def slack_profile(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    *,
    target: float | None = None,
) -> list[float]:
    """Per-machine slack at ``target`` under the truthful realization.

    ``slack[i] = target - load_i``; the target defaults to the truthful
    makespan, making the critical machine's slack zero.  Negative slack
    means the machine already exceeds the target.
    """
    outcome = run_strategy(
        strategy, instance, truthful_realization(instance), validate=False
    )
    loads = outcome.trace.loads(instance.m)
    t = outcome.makespan if target is None else check_positive_float(target, "target")
    return [t - load for load in loads]


def robustness_radius(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    target: float,
    *,
    tol: float = 1e-6,
) -> float:
    """Largest uniform factor ``f`` with makespan(f·p̃) ≤ target.

    Binary search over uniform inflation ``f ∈ [1/α, α]``; the returned
    radius is clipped to the band (a radius of ``alpha`` means the target
    survives the full uncertainty range).  Returns 0.0 if even the fully
    deflated instance misses the target.

    Uniform inflation scales every machine's load equally, so for *static*
    placements the radius is simply ``target / truthful_makespan`` clipped
    to the band; the simulation-based search also covers adaptive
    strategies, whose dispatch does not change under uniform scaling but
    whose radius we verify rather than assume.
    """
    check_positive_float(target, "target")
    a = instance.alpha

    def makespan_at(f: float) -> float:
        real = factors_realization(instance, [f] * instance.n, label=f"uniform[{f:g}]")
        return run_strategy(strategy, instance, real, validate=False).makespan

    lo, hi = 1.0 / a, a
    if makespan_at(lo) > target:
        return 0.0
    if makespan_at(hi) <= target:
        return hi
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if makespan_at(mid) <= target:
            lo = mid
        else:
            hi = mid
    return lo
