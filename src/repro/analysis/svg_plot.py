"""Dependency-free SVG chart rendering.

matplotlib is unavailable offline, so besides the terminal-friendly ASCII
plots the figure benches emit real vector graphics through this tiny SVG
backend: line/scatter charts with axes, ticks and a legend, and Gantt
charts of schedule traces.  The output is plain SVG 1.1 — viewable in any
browser and diff-able in git.

Only the features the reproduced figures need are implemented; this is a
chart *emitter*, not a plotting library.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path
from xml.sax.saxutils import escape

from repro.simulation.trace import ScheduleTrace

__all__ = ["SvgSeries", "render_svg_chart", "render_svg_gantt"]

# A colorblind-friendly qualitative palette (Okabe-Ito).
_PALETTE = [
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#F0E442",
    "#56B4E9",
    "#E69F00",
    "#000000",
]


@dataclass
class SvgSeries:
    """One chart series: points, label, and how to draw it."""

    xs: Sequence[float]
    ys: Sequence[float]
    label: str = ""
    mode: str = "line+marker"  # "line", "marker", "line+marker"
    color: str = ""

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.label!r}: xs/ys lengths differ "
                f"({len(self.xs)} != {len(self.ys)})"
            )
        if not self.xs:
            raise ValueError(f"series {self.label!r} is empty")
        if self.mode not in ("line", "marker", "line+marker"):
            raise ValueError(f"unknown mode {self.mode!r}")


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        return [lo]
    raw = (hi - lo) / max(n - 1, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= raw:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-12 * step:
        ticks.append(round(t, 12))
        t += step
    return ticks or [lo]


def render_svg_chart(
    series: Sequence[SvgSeries],
    *,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    x_log: bool = False,
    width: int = 640,
    height: int = 420,
) -> str:
    """Render the series as a standalone SVG document string."""
    if not series:
        raise ValueError("nothing to plot")
    margin_l, margin_r, margin_t, margin_b = 64, 16, 40, 48
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    xs_all = [x for s in series for x in s.xs]
    ys_all = [y for s in series for y in s.ys]
    if x_log and min(xs_all) <= 0:
        raise ValueError("x_log requires strictly positive x values")

    def xt(x: float) -> float:
        if x_log:
            lo, hi, v = math.log10(min(xs_all)), math.log10(max(xs_all)), math.log10(x)
        else:
            lo, hi, v = min(xs_all), max(xs_all), x
        frac = 0.5 if hi == lo else (v - lo) / (hi - lo)
        return margin_l + frac * plot_w

    y_lo, y_hi = min(ys_all), max(ys_all)
    pad = 0.05 * (y_hi - y_lo or 1.0)
    y_lo, y_hi = y_lo - pad, y_hi + pad

    def yt(y: float) -> float:
        frac = 0.5 if y_hi == y_lo else (y - y_lo) / (y_hi - y_lo)
        return margin_t + (1.0 - frac) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{escape(title)}</text>'
        )
    # Frame.
    parts.append(
        f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#444"/>'
    )
    # Y ticks + gridlines.
    for tick in _nice_ticks(y_lo, y_hi):
        py = yt(tick)
        if not margin_t - 1 <= py <= margin_t + plot_h + 1:
            continue
        parts.append(
            f'<line x1="{margin_l}" y1="{py:.1f}" x2="{margin_l + plot_w}" '
            f'y2="{py:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{margin_l - 6}" y="{py + 4:.1f}" text-anchor="end">'
            f"{tick:g}</text>"
        )
    # X ticks.
    if x_log:
        lo_exp = math.floor(math.log10(min(xs_all)))
        hi_exp = math.ceil(math.log10(max(xs_all)))
        x_ticks = [10.0**e for e in range(lo_exp, hi_exp + 1)]
        x_ticks = [t for t in x_ticks if min(xs_all) <= t <= max(xs_all)] or [
            min(xs_all),
            max(xs_all),
        ]
    else:
        x_ticks = _nice_ticks(min(xs_all), max(xs_all))
    for tick in x_ticks:
        px = xt(tick)
        parts.append(
            f'<line x1="{px:.1f}" y1="{margin_t + plot_h}" x2="{px:.1f}" '
            f'y2="{margin_t + plot_h + 4}" stroke="#444"/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{margin_t + plot_h + 18}" text-anchor="middle">'
            f"{tick:g}</text>"
        )
    # Axis labels.
    parts.append(
        f'<text x="{margin_l + plot_w / 2}" y="{height - 8}" text-anchor="middle">'
        f"{escape(x_label)}{' (log)' if x_log else ''}</text>"
    )
    parts.append(
        f'<text x="16" y="{margin_t + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 16 {margin_t + plot_h / 2})">{escape(y_label)}</text>'
    )
    # Series.
    for idx, s in enumerate(series):
        color = s.color or _PALETTE[idx % len(_PALETTE)]
        pts = sorted(zip(s.xs, s.ys))
        coords = [(xt(x), yt(y)) for x, y in pts]
        if "line" in s.mode and len(coords) > 1:
            path = " ".join(f"{px:.1f},{py:.1f}" for px, py in coords)
            parts.append(
                f'<polyline points="{path}" fill="none" stroke="{color}" '
                f'stroke-width="2"/>'
            )
        if "marker" in s.mode:
            for px, py in coords:
                parts.append(f'<circle cx="{px:.1f}" cy="{py:.1f}" r="3.5" fill="{color}"/>')
    # Legend.
    ly = margin_t + 8
    for idx, s in enumerate(series):
        if not s.label:
            continue
        color = s.color or _PALETTE[idx % len(_PALETTE)]
        lx = margin_l + 10
        parts.append(
            f'<rect x="{lx}" y="{ly - 8}" width="10" height="10" fill="{color}"/>'
        )
        parts.append(f'<text x="{lx + 16}" y="{ly + 1}">{escape(s.label)}</text>')
        ly += 16
    parts.append("</svg>")
    return "\n".join(parts)


def render_svg_gantt(
    trace: ScheduleTrace,
    m: int,
    *,
    title: str = "",
    width: int = 720,
    row_height: int = 26,
) -> str:
    """Render a schedule trace (runs + aborted attempts) as an SVG Gantt."""
    margin_l, margin_r, margin_t, margin_b = 52, 16, 36, 30
    height = margin_t + m * row_height + margin_b
    plot_w = width - margin_l - margin_r
    makespan = trace.makespan

    def xt(t: float) -> float:
        return margin_l + (t / makespan) * plot_w

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="18" text-anchor="middle" font-size="13" '
            f'font-weight="bold">{escape(title)}</text>'
        )
    for i in range(m):
        y = margin_t + i * row_height
        parts.append(
            f'<text x="{margin_l - 6}" y="{y + row_height / 2 + 4}" '
            f'text-anchor="end">M{i}</text>'
        )
        parts.append(
            f'<line x1="{margin_l}" y1="{y + row_height}" '
            f'x2="{margin_l + plot_w}" y2="{y + row_height}" stroke="#eee"/>'
        )
    for run in trace.aborted:
        y = margin_t + run.machine * row_height + 3
        parts.append(
            f'<rect x="{xt(run.start):.1f}" y="{y}" '
            f'width="{max(xt(run.end) - xt(run.start), 1):.1f}" '
            f'height="{row_height - 6}" fill="#bbb" opacity="0.5"/>'
        )
    for run in trace.runs:
        color = _PALETTE[run.tid % len(_PALETTE)]
        y = margin_t + run.machine * row_height + 3
        w = max(xt(run.end) - xt(run.start), 1.0)
        parts.append(
            f'<rect x="{xt(run.start):.1f}" y="{y}" width="{w:.1f}" '
            f'height="{row_height - 6}" fill="{color}" opacity="0.85">'
            f"<title>task {run.tid}: [{run.start:.3g}, {run.end:.3g}] on M{run.machine}"
            f"</title></rect>"
        )
        if w > 18:
            parts.append(
                f'<text x="{xt(run.start) + w / 2:.1f}" '
                f'y="{y + row_height / 2 + 1}" text-anchor="middle" '
                f'fill="white">{run.tid}</text>'
            )
    parts.append(
        f'<text x="{margin_l}" y="{height - 8}">t=0</text>'
    )
    parts.append(
        f'<text x="{margin_l + plot_w}" y="{height - 8}" text-anchor="end">'
        f"t={makespan:.4g}</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)
