"""CSV output for reproduced figure/table data.

Every bench writes its numeric series to ``results/*.csv`` next to the
human-readable rendering, so the data behind each reproduced artifact can
be re-plotted with external tooling.  Standard-library ``csv`` only.
"""

from __future__ import annotations

import csv
from collections.abc import Mapping, Sequence
from pathlib import Path

__all__ = ["write_csv", "read_csv", "results_dir"]


def results_dir(base: str | Path | None = None) -> Path:
    """The directory bench outputs go to (created on demand).

    Defaults to ``<repo root>/results`` resolved from this file's location
    — stable no matter where pytest is invoked from.
    """
    if base is not None:
        d = Path(base)
    else:
        # parents: [0]=analysis, [1]=repro, [2]=src, [3]=repo root (editable
        # install).  For a site-packages install that ancestor is not a
        # writable project dir, so fall back to cwd.
        root = Path(__file__).resolve().parents[3]
        d = (root if (root / "pyproject.toml").exists() else Path.cwd()) / "results"
    d.mkdir(parents=True, exist_ok=True)
    return d


def write_csv(
    path: str | Path,
    rows: Sequence[Mapping[str, object]],
    *,
    headers: Sequence[str] | None = None,
) -> Path:
    """Write dict rows to CSV; returns the path written.

    Headers default to the union of keys across rows, in first-seen order.
    """
    if not rows:
        raise ValueError("refusing to write an empty CSV")
    if headers is None:
        seen: dict[str, None] = {}
        for r in rows:
            for k in r:
                seen.setdefault(k, None)
        headers = list(seen)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(headers), extrasaction="ignore")
        writer.writeheader()
        for r in rows:
            writer.writerow({k: r.get(k, "") for k in headers})
    return p


def read_csv(path: str | Path) -> list[dict[str, str]]:
    """Read a CSV back as dict rows (all values as strings)."""
    with Path(path).open(newline="") as fh:
        return list(csv.DictReader(fh))
