"""Batch fast path for the experiment grid (cell-level executor).

:mod:`repro.simulation.batch` turns one (strategy, instance) pair into a
vectorized completion sweep; this module lifts that to grid granularity:
:func:`batch_eligible` routes cells, and :func:`execute_pack` runs one
pack of same-(strategy, instance) cells — every realization model and
seed in a single ``(B, n)`` NumPy pass — and assembles the exact
:class:`~repro.analysis.records.ExperimentRecord` the per-cell path
produces:

* the makespan comes from the sweep (bit-identical to the event kernel —
  see the exactness contract in :mod:`repro.simulation.batch`);
* the optimum is :func:`repro.exact.optimal.optimal_makespan` on the same
  realization, memoized per (instance, model, seed) *group* so one value
  serves every strategy in the grid instead of being recomputed per cell;
* ratio / guarantee / ``within_guarantee`` replicate the
  :class:`~repro.analysis.ratios.RatioRecord` arithmetic field-for-field.

Observability: each pack opens a ``grid.batch`` span and emits one
``grid.batch_pack`` event; every cell served by the sweep bumps
``grid.cells_done`` (keeping the grid's aggregate counters identical in
meaning to the serial path) plus the batch-specific
``grid.cells_batched`` counter.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.analysis.parallel import CellOutcome, CellSpec, RetryPolicy
from repro.analysis.records import ExperimentRecord
from repro.exact.optimal import OptimalValue, optimal_makespan
from repro.simulation.batch import (
    BatchUnsupported,
    Plan,
    build_plan,
    sweep_makespans,
)
from repro.simulation.batch import supports_batch as _supports_batch
from repro.uncertainty.realization import Realization

__all__ = [
    "batch_eligible",
    "execute_pack",
    "group_packs",
    "run_pack_chunk",
    "try_plan",
]


def batch_eligible(spec: CellSpec) -> bool:
    """Whether this cell may take the batch fast path (capability gate).

    The structural preconditions are still verified per pack by
    :func:`repro.simulation.batch.build_plan`; a cell that passes here
    but fails there falls back to the event kernel.
    """
    return _supports_batch(spec.strategy)


def group_packs(cells: Sequence[CellSpec]) -> list[list[CellSpec]]:
    """Group eligible cells into (strategy, instance) packs, stable order.

    Identity (not equality) keys: the grid enumerates shared strategy and
    instance objects, so identity grouping is exact and cheap.
    """
    packs: dict[tuple[int, int], list[CellSpec]] = {}
    for spec in cells:
        packs.setdefault((id(spec.strategy), id(spec.instance)), []).append(spec)
    return list(packs.values())


def try_plan(spec: CellSpec) -> Plan | None:
    """Compile this cell's (strategy, instance) pair, or ``None``.

    ``None`` means "use the per-cell path": either the structure is
    unsupported (:class:`BatchUnsupported`) or Phase 1 itself refuses the
    instance (``ValueError``, e.g. a ``k`` that does not divide ``m``) —
    the per-cell path turns the latter into the canonical
    :class:`~repro.analysis.records.SkippedCell`, so the fallback must
    not duplicate that logic.
    """
    try:
        return build_plan(spec.strategy, spec.instance)
    except (BatchUnsupported, ValueError):
        return None


def execute_pack(
    pack: Sequence[CellSpec],
    realizations: dict[int, Realization],
    optima: dict[int, OptimalValue],
    tracer,
    *,
    plan: Plan | None = None,
) -> list[CellOutcome] | None:
    """Run one same-(strategy, instance) pack through the vectorized sweep.

    ``realizations`` and ``optima`` are grid-level memos keyed by
    ``spec.group`` — shared with the per-cell path and across packs, so a
    realization is sampled (and its optimum computed) once per (instance,
    model, seed) no matter how many strategies sweep it.  Pass a prebuilt
    ``plan`` (from :func:`try_plan`) to skip recompiling Phase 1.

    Returns ``None`` when the pack cannot be compiled — the caller then
    routes these cells through the per-cell path, which produces the
    identical records or skip entries it always has.
    """
    spec0 = pack[0]
    start = time.perf_counter()
    if plan is None:
        plan = try_plan(spec0)
        if plan is None:
            return None

    for spec in pack:
        if spec.group not in realizations:
            realizations[spec.group] = spec.realization()
    reals = [realizations[spec.group] for spec in pack]
    matrix = np.asarray([r.actuals for r in reals], dtype=np.float64)

    with tracer.span(
        "grid.batch",
        strategy=plan.strategy_name,
        instance=spec0.instance.name,
        cells=len(pack),
    ):
        makespans = [float(v) for v in sweep_makespans(plan, matrix)]
    tracer.count("grid.batch_packs")
    tracer.event(
        "grid.batch_pack",
        strategy=plan.strategy_name,
        instance=spec0.instance.name,
        cells=len(pack),
    )

    replication = plan.placement.max_replication()
    instance = spec0.instance
    outcomes: list[CellOutcome] = []
    duration_each = (time.perf_counter() - start) / len(pack)
    for spec, realization, makespan in zip(pack, reals, makespans):
        optimum = optima.get(spec.group)
        if optimum is None:
            optimum = optima[spec.group] = optimal_makespan(
                realization.actuals, instance.m, exact_limit=spec.exact_limit
            )
        ratio = makespan / optimum.value
        record = ExperimentRecord(
            strategy=plan.strategy_name,
            instance_name=instance.name,
            n=instance.n,
            m=instance.m,
            alpha=instance.alpha,
            # The serial path labels the trace "strategy/realization" and
            # keeps the last path component; replicate that exactly.
            realization=f"{plan.strategy_name}/{realization.label}".split("/")[-1],
            seed=spec.seed,
            replication=replication,
            makespan=makespan,
            optimum=optimum.value,
            optimum_exact=optimum.optimal,
            ratio=ratio,
            guarantee=plan.guarantee,
            within_guarantee=_within_guarantee(ratio, plan.guarantee, optimum.optimal),
        )
        tracer.count("grid.cells_done")
        tracer.count("grid.cells_batched")
        outcomes.append(
            CellOutcome(spec.index, record, None, duration_each, batched=True)
        )
    return outcomes


def run_pack_chunk(
    packs: Sequence[Sequence[CellSpec]], retry: RetryPolicy
) -> list[CellOutcome]:
    """Execute a chunk of packs in the current process (worker entry body).

    The pool counterpart of the grid's parent-side pack loop: realization
    and optimum memos are keyed by ``spec.group`` and shared across every
    pack in the chunk, so stacking same-instance packs into one chunk
    samples each (instance, model, seed) realization once.  A pack whose
    structure the compiler refuses — or whose Phase 1 rejects the
    instance — degrades to the resilient per-cell kernel path *here*,
    inside the same process, so an unsupported pack never poisons its
    chunk or bounces back to the parent.
    """
    from repro.analysis.parallel import _run_chunk_inline
    from repro.obs.tracer import get_tracer

    tracer = get_tracer()
    realizations: dict[int, Realization] = {}
    optima: dict[int, OptimalValue] = {}
    outcomes: list[CellOutcome] = []
    for pack in packs:
        served = execute_pack(pack, realizations, optima, tracer)
        if served is None:
            outcomes.extend(_run_chunk_inline(pack, retry))
        else:
            outcomes.extend(served)
    return outcomes


def _within_guarantee(
    ratio: float, guarantee: float | None, optimum_exact: bool
) -> bool | None:
    """Field-for-field replica of :attr:`RatioRecord.within_guarantee`."""
    if guarantee is None:
        return None
    tol = 1e-9 * max(1.0, guarantee)
    if ratio <= guarantee + tol:
        return True
    return False if optimum_exact else None
