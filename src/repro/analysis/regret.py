"""Scenario-based robust evaluation: min-max regret.

Serves the E13 min-max-regret artifact (``bench_e13_minmax_regret`` →
``results/e13_minmax_regret.*``).

The related-work section notes that "most of the work on robust
scheduling use scenarios to structure the variability of uncertain
parameters" (Daniels & Kouvelis et al.).  This module evaluates the
paper's strategies through that lens, so the replication approach can be
compared with the scenario literature on its own terms:

* a **scenario set** is a finite collection of realizations (e.g. the
  band's extreme corners, or samples from a stochastic model);
* a strategy's **absolute regret** in a scenario is
  ``C_max(strategy, s) − C*_max(s)``; its **relative regret** is the
  competitive ratio minus 1;
* the robust values are the maxima over the scenario set, and the
  min-max-regret strategy is the one minimizing that maximum.

``evaluate_scenarios`` computes per-strategy regret tables over a shared
scenario set; ``minmax_regret_choice`` picks the winner.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.ratios import run_strategy
from repro.core.model import Instance
from repro.core.strategy import TwoPhaseStrategy
from repro.exact.optimal import optimal_makespan
from repro.uncertainty.realization import Realization
from repro.uncertainty.stochastic import sample_realization

__all__ = ["ScenarioEvaluation", "build_scenarios", "evaluate_scenarios", "minmax_regret_choice"]


@dataclass(frozen=True)
class ScenarioEvaluation:
    """One strategy's robust statistics over a scenario set."""

    strategy: str
    scenarios: int
    max_abs_regret: float
    max_rel_regret: float
    mean_rel_regret: float
    worst_scenario: str
    all_optima_exact: bool


def build_scenarios(
    instance: Instance,
    *,
    models: Sequence[str] = ("bimodal_extreme", "log_uniform", "uniform"),
    seeds: Sequence[int] = (0, 1, 2),
    include_truthful: bool = True,
) -> list[Realization]:
    """A standard scenario set: stochastic draws plus the truthful corner."""
    scenarios: list[Realization] = []
    if include_truthful:
        from repro.uncertainty.realization import truthful_realization

        scenarios.append(truthful_realization(instance))
    for model in models:
        for seed in seeds:
            scenarios.append(sample_realization(instance, model, seed))
    return scenarios


def _scenario_makespans(
    strategy: TwoPhaseStrategy,
    instance: Instance,
    scenarios: Sequence[Realization],
) -> list[float]:
    """One strategy's makespan in every scenario, batched when possible.

    The inner loop of the min-max-regret table is a same-(strategy,
    instance) pack by construction, so it compiles to one ``(S, n)``
    vectorized sweep for every ``supports_batch`` strategy — the outer
    argmin over strategies stays scalar.  The sweep is bit-identical to
    the event kernel (the exactness contract of
    :mod:`repro.simulation.batch`), so the regret table and the min-max
    winner cannot shift when a family gains the capability; anything the
    compiler refuses falls back to the per-scenario kernel loop.
    """
    from repro.simulation.batch import (
        BatchUnsupported,
        build_plan,
        supports_batch,
        sweep_makespans,
    )

    if supports_batch(strategy):
        try:
            plan = build_plan(strategy, instance)
        except (BatchUnsupported, ValueError):
            pass
        else:
            import numpy as np

            matrix = np.asarray([s.actuals for s in scenarios], dtype=np.float64)
            return [float(v) for v in sweep_makespans(plan, matrix)]
    return [
        run_strategy(strategy, instance, s, validate=False).makespan
        for s in scenarios
    ]


def evaluate_scenarios(
    strategies: Sequence[TwoPhaseStrategy],
    instance: Instance,
    scenarios: Sequence[Realization],
    *,
    exact_limit: int = 22,
) -> list[ScenarioEvaluation]:
    """Regret table for every strategy over a shared scenario set.

    The clairvoyant optimum of each scenario is computed once and shared
    across strategies (it does not depend on them).  Per strategy, the
    scenario makespans come from one vectorized batch sweep whenever the
    strategy compiles (see :func:`_scenario_makespans`).
    """
    if not scenarios:
        raise ValueError("scenario set must be non-empty")
    optima = [
        optimal_makespan(s.actuals, instance.m, exact_limit=exact_limit)
        for s in scenarios
    ]
    out: list[ScenarioEvaluation] = []
    for strategy in strategies:
        makespans = _scenario_makespans(strategy, instance, scenarios)
        abs_regrets: list[float] = []
        rel_regrets: list[float] = []
        worst_idx = 0
        for idx, (c_max, opt) in enumerate(zip(makespans, optima)):
            abs_regrets.append(c_max - opt.value)
            rel_regrets.append(c_max / opt.value - 1.0)
            if rel_regrets[idx] > rel_regrets[worst_idx]:
                worst_idx = idx
        out.append(
            ScenarioEvaluation(
                strategy=strategy.name,
                scenarios=len(scenarios),
                max_abs_regret=max(abs_regrets),
                max_rel_regret=max(rel_regrets),
                mean_rel_regret=sum(rel_regrets) / len(rel_regrets),
                worst_scenario=scenarios[worst_idx].label or f"scenario[{worst_idx}]",
                all_optima_exact=all(o.optimal for o in optima),
            )
        )
    return out


def minmax_regret_choice(
    evaluations: Sequence[ScenarioEvaluation],
    *,
    relative: bool = True,
) -> ScenarioEvaluation:
    """The min-max-regret strategy (ties by name for determinism)."""
    if not evaluations:
        raise ValueError("no evaluations to choose from")
    key = (
        (lambda e: (e.max_rel_regret, e.strategy))
        if relative
        else (lambda e: (e.max_abs_regret, e.strategy))
    )
    return min(evaluations, key=key)
