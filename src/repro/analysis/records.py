"""Flat result records shared by the grid driver, workers, and the cache.

Serves the empirical campaign (benches E1–E16 and the figure sweeps):
an :class:`ExperimentRecord` is one grid cell flattened to scalars — the
row format every ``results/*.csv`` artifact is built from — and a
:class:`SkippedCell` is the structured note left behind when a strategy
cannot run on an instance (e.g. a group strategy whose ``k`` does not
divide ``m``).

Both types are leaf dataclasses of JSON scalars only: picklable (they
cross process boundaries in the parallel backend), losslessly
JSON-round-trippable (they live in the on-disk cell cache), and cheap to
construct in hot sweep loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, NamedTuple

from repro.analysis.ratios import RatioRecord

__all__ = ["ExperimentRecord", "SkippedCell"]


class SkippedCell(NamedTuple):
    """One grid cell that produced no record, with the reason attached.

    Two kinds exist:

    * ``"incompatible"`` — the strategy cannot run on the instance at all
      (e.g. a group strategy whose ``k`` does not divide ``m``); retrying
      would change nothing, so the cell is skipped on the first attempt.
    * ``"quarantined"`` — the cell kept *crashing or timing out* and
      exhausted its :class:`~repro.analysis.parallel.RetryPolicy`;
      ``attempts`` records how many tries were burned and ``error`` the
      last failure.  Quarantined skips are poison markers: the cache
      refuses to persist them, so a later run retries the cell.

    Benches filter these by field (``skip.strategy``, ``skip.instance``)
    instead of parsing preformatted strings; ``str(skip)`` still renders
    the historical one-line form for logs.
    """

    strategy: str
    instance: str
    error: str
    kind: str = "incompatible"
    attempts: int = 1

    def __str__(self) -> str:
        note = f" [{self.kind}, {self.attempts} attempts]" if self.kind != "incompatible" else ""
        return f"{self.strategy} on {self.instance}: {self.error}{note}"

    def as_dict(self) -> dict[str, object]:
        return {
            "strategy": self.strategy,
            "instance": self.instance,
            "error": self.error,
            "kind": self.kind,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class ExperimentRecord:
    """One cell of the grid, flattened for CSV output."""

    strategy: str
    instance_name: str
    n: int
    m: int
    alpha: float
    realization: str
    seed: int
    replication: int
    makespan: float
    optimum: float
    optimum_exact: bool
    ratio: float
    guarantee: float | None
    within_guarantee: bool | None

    @staticmethod
    def from_ratio(record: RatioRecord, seed: int) -> "ExperimentRecord":
        out = record.outcome
        inst = out.placement.instance
        return ExperimentRecord(
            strategy=out.strategy_name,
            instance_name=inst.name,
            n=inst.n,
            m=inst.m,
            alpha=inst.alpha,
            realization=out.trace.label.split("/")[-1],
            seed=seed,
            replication=out.replication,
            makespan=out.makespan,
            optimum=record.optimum.value,
            optimum_exact=record.optimum.optimal,
            ratio=record.ratio,
            guarantee=record.guarantee,
            within_guarantee=record.within_guarantee,
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "strategy": self.strategy,
            "instance": self.instance_name,
            "n": self.n,
            "m": self.m,
            "alpha": self.alpha,
            "realization": self.realization,
            "seed": self.seed,
            "replication": self.replication,
            "makespan": self.makespan,
            "optimum": self.optimum,
            "optimum_exact": self.optimum_exact,
            "ratio": self.ratio,
            "guarantee": "" if self.guarantee is None else self.guarantee,
            "within_guarantee": "" if self.within_guarantee is None else self.within_guarantee,
        }

    def to_cache_dict(self) -> dict[str, Any]:
        """Lossless JSON form (unlike :meth:`as_dict`, ``None`` survives)."""
        return {
            "strategy": self.strategy,
            "instance_name": self.instance_name,
            "n": self.n,
            "m": self.m,
            "alpha": self.alpha,
            "realization": self.realization,
            "seed": self.seed,
            "replication": self.replication,
            "makespan": self.makespan,
            "optimum": self.optimum,
            "optimum_exact": self.optimum_exact,
            "ratio": self.ratio,
            "guarantee": self.guarantee,
            "within_guarantee": self.within_guarantee,
        }

    @staticmethod
    def from_cache_dict(data: dict[str, Any]) -> "ExperimentRecord":
        """Inverse of :meth:`to_cache_dict`; raises on missing fields."""
        return ExperimentRecord(
            strategy=data["strategy"],
            instance_name=data["instance_name"],
            n=data["n"],
            m=data["m"],
            alpha=data["alpha"],
            realization=data["realization"],
            seed=data["seed"],
            replication=data["replication"],
            makespan=data["makespan"],
            optimum=data["optimum"],
            optimum_exact=data["optimum_exact"],
            ratio=data["ratio"],
            guarantee=data["guarantee"],
            within_guarantee=data["within_guarantee"],
        )
