"""Plain-text and markdown table rendering.

The benches print their reproduced tables both as aligned ASCII (for the
terminal / bench_output.txt) and as GitHub markdown (pasted into
EXPERIMENTS.md).  One renderer, two dialects, zero dependencies.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "format_markdown_table", "format_value"]


def format_value(v: object, *, digits: int = 4) -> str:
    """Uniform cell formatting: floats get ``digits`` significant digits."""
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        return f"{v:.{digits}g}"
    return str(v)


def _normalize(
    rows: Sequence[Mapping[str, object]] | Sequence[Sequence[object]],
    headers: Sequence[str] | None,
    digits: int,
) -> tuple[list[str], list[list[str]]]:
    if not rows:
        raise ValueError("cannot format an empty table")
    first = rows[0]
    if isinstance(first, Mapping):
        cols = list(headers) if headers is not None else list(first.keys())
        body = [[format_value(r.get(c, ""), digits=digits) for c in cols] for r in rows]  # type: ignore[union-attr]
    else:
        if headers is None:
            raise ValueError("headers are required for sequence rows")
        cols = list(headers)
        body = []
        for r in rows:
            r = list(r)  # type: ignore[arg-type]
            if len(r) != len(cols):
                raise ValueError(f"row has {len(r)} cells, expected {len(cols)}")
            body.append([format_value(c, digits=digits) for c in r])
    return cols, body


def format_table(
    rows: Sequence[Mapping[str, object]] | Sequence[Sequence[object]],
    *,
    headers: Sequence[str] | None = None,
    digits: int = 4,
    title: str | None = None,
) -> str:
    """Aligned ASCII table.

    ``rows`` may be dicts (headers default to the first row's keys) or
    sequences (headers required).
    """
    cols, body = _normalize(rows, headers, digits)
    widths = [len(c) for c in cols]
    for r in body:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append(sep)
    for r in body:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Mapping[str, object]] | Sequence[Sequence[object]],
    *,
    headers: Sequence[str] | None = None,
    digits: int = 4,
) -> str:
    """GitHub-flavored markdown table."""
    cols, body = _normalize(rows, headers, digits)
    lines = ["| " + " | ".join(cols) + " |", "|" + "|".join("---" for _ in cols) + "|"]
    for r in body:
        lines.append("| " + " | ".join(r) + " |")
    return "\n".join(lines)
